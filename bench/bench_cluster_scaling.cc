/**
 * @file
 * Cluster scaling bench: the far heap striped over N remote memory
 * shards, each behind its own link (src/cluster). Sweeps shard count
 * and replication factor over a bandwidth-bound streaming scan and
 * reports aggregate fetch bandwidth, per-shard byte skew, and the
 * degraded-mode slowdown after an injected mid-run shard failure.
 *
 * The workload is sized so deep prefetch windows (256 objects, 64 per
 * coalesced message) keep every link serialization-bound: with one
 * shard the single link is the bottleneck, with N shards each link
 * carries 1/N of the stripes concurrently, so aggregate bandwidth
 * scales until the app-side per-object costs dominate. Replication
 * factor k multiplies writeback traffic (write-all) but not fetch
 * traffic (read-one). Run with --trace=<file> to see the failover as
 * per-shard trace tracks (shardN-in/out/remote) going quiet.
 */

#include <cstdio>
#include <cstring>

#include "bench_util.hh"
#include "cluster/sharded_cluster.hh"
#include "runtime/far_mem_runtime.hh"

using namespace tfm;

namespace
{

constexpr std::uint64_t arrayBytes = 32ull << 20; // 8192 objects
constexpr std::uint32_t objectSize = 4096;
constexpr std::uint64_t objects = arrayBytes / objectSize;
constexpr std::uint64_t passes = 2;

struct RunResult
{
    std::uint64_t startCycle = 0;  ///< clock at measurement start
    std::uint64_t cycles = 0;      ///< measured scan cycles
    std::uint64_t checksum = 0;
    std::uint64_t bytesFetched = 0;
    std::uint64_t bytesWrittenBack = 0;
    double skew = 1.0;             ///< max/mean per-shard fetch bytes
    std::uint64_t degradedReads = 0;
    std::uint64_t reReplicatedBytes = 0;
    std::uint64_t shardFailures = 0;

    double
    fetchBandwidth() const
    {
        return static_cast<double>(bytesFetched) /
               static_cast<double>(cycles);
    }
};

RunResult
runScan(std::uint32_t shards, std::uint32_t repl, std::uint64_t failShard,
        std::uint64_t failCycle, const CostParams &costs)
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 64ull << 20;
    cfg.localMemBytes = arrayBytes / 4; // 25% local memory
    cfg.objectSizeBytes = objectSize;
    cfg.prefetchEnabled = true;
    cfg.prefetchDepth = 256; // deep windows: links serialization-bound
    cfg.batchingEnabled = true;
    cfg.fetchBatchMax = 64;
    cfg.writebackBatchMax = 32;
    cfg.cluster.shardCount = shards;
    cfg.cluster.replicationFactor = repl;
    if (failCycle)
        cfg.cluster.failures.killShard(
            static_cast<std::uint32_t>(failShard), failCycle);

    FarMemRuntime rt(cfg, costs);
    const std::uint64_t base = rt.allocate(arrayBytes);
    for (std::uint64_t i = 0; i < objects; i++)
        rt.rawWrite(base + i * objectSize, &i, sizeof(i));

    RunResult r;
    r.startCycle = rt.clock().now();
    // Read-modify-write scan, one u64 per object: fetch-dominated, but
    // every object comes back dirty so write-all replication shows up
    // on the outbound links.
    for (std::uint64_t pass = 0; pass < passes; pass++) {
        for (std::uint64_t i = 0; i < objects; i++) {
            auto *p = rt.localize(base + i * objectSize, true);
            std::uint64_t v = 0;
            std::memcpy(&v, p, sizeof(v));
            r.checksum += v;
            v++;
            std::memcpy(p, &v, sizeof(v));
        }
    }
    rt.flushWritebacks();
    r.cycles = rt.clock().now() - r.startCycle;

    const NetStats net = rt.backend().netStats();
    r.bytesFetched = net.bytesFetched;
    r.bytesWrittenBack = net.bytesWrittenBack;
    // Per-shard and cluster stats come through the RemoteBackend
    // interface (never a downcast), so they answer correctly behind
    // the recording decorator and under --replay.
    if (rt.backend().shardCount() >= 2) {
        std::uint64_t max = 0, total = 0;
        for (std::uint32_t s = 0; s < shards; s++) {
            const std::uint64_t b =
                rt.backend().shardNetStats(s).bytesFetched;
            max = max > b ? max : b;
            total += b;
        }
        if (total)
            r.skew = static_cast<double>(max) * shards /
                     static_cast<double>(total);
        const ClusterStats cstats = rt.backend().clusterStats();
        r.degradedReads = cstats.degradedReads;
        r.reReplicatedBytes = cstats.reReplicatedBytes;
        r.shardFailures = cstats.shardFailures;
    }
    return r;
}

void
report(std::uint32_t shards, std::uint32_t repl, const RunResult &r,
       const CostParams &costs)
{
    std::printf("%6u %5u %12.3f %10.3f %8.2f %14llu %14llu\n", shards,
                repl, bench::seconds(r.cycles, costs) * 1e3,
                r.fetchBandwidth(), r.skew,
                static_cast<unsigned long long>(r.bytesFetched),
                static_cast<unsigned long long>(r.bytesWrittenBack));
    bench::JsonLine json("cluster_scaling");
    json.field("shards", static_cast<std::uint64_t>(shards))
        .field("replication", static_cast<std::uint64_t>(repl))
        .field("cycles", r.cycles)
        .field("fetch_bandwidth", r.fetchBandwidth())
        .field("shard_skew", r.skew)
        .field("bytes_fetched", r.bytesFetched)
        .field("bytes_written_back", r.bytesWrittenBack);
    json.emit();
}

} // anonymous namespace

int
main()
{
    const CostParams costs;
    bench::banner(
        "Cluster scaling - sharded remote tier with replication",
        "striping the far heap over N independent links scales "
        "aggregate fetch bandwidth; k-way replication costs only "
        "outbound write-all traffic; an injected shard failure degrades "
        "throughput but not correctness",
        "32 MB x 2-pass RMW scan, 25% local memory, depth-256 prefetch, "
        "64-object coalesced messages");

    bench::section("shard/replication sweep (shards | repl | sim ms | "
                   "fetch B/cyc | skew | fetch B | writeback B)");
    const std::uint32_t shardSweep[] = {1, 2, 4, 8};
    const std::uint32_t replSweep[] = {1, 2};
    double bw1 = 0.0, bw4 = 0.0;
    std::uint64_t checksum1 = 0;
    for (const std::uint32_t repl : replSweep) {
        for (const std::uint32_t shards : shardSweep) {
            if (repl > shards)
                continue;
            const RunResult r = runScan(shards, repl, 0, 0, costs);
            report(shards, repl, r, costs);
            if (repl == 1 && shards == 1) {
                bw1 = r.fetchBandwidth();
                checksum1 = r.checksum;
            }
            if (repl == 1 && shards == 4)
                bw4 = r.fetchBandwidth();
        }
    }

    bench::section("failure injection (4 shards, repl 2, shard 1 dies "
                   "mid-scan)");
    const RunResult healthy = runScan(4, 2, 0, 0, costs);
    const std::uint64_t failAt = healthy.startCycle + healthy.cycles / 2;
    const RunResult degraded = runScan(4, 2, 1, failAt, costs);
    const double slowdown = static_cast<double>(degraded.cycles) /
                            static_cast<double>(healthy.cycles);
    const bool correct = degraded.checksum == healthy.checksum &&
                         degraded.checksum == checksum1;
    std::printf("healthy run:        %.3f sim ms\n",
                bench::seconds(healthy.cycles, costs) * 1e3);
    std::printf("degraded run:       %.3f sim ms (%.2fx slowdown)\n",
                bench::seconds(degraded.cycles, costs) * 1e3, slowdown);
    std::printf("shard failures:     %llu (degraded reads %llu, "
                "re-replicated %llu bytes)\n",
                static_cast<unsigned long long>(degraded.shardFailures),
                static_cast<unsigned long long>(degraded.degradedReads),
                static_cast<unsigned long long>(
                    degraded.reReplicatedBytes));
    std::printf("checksum unchanged: %s\n", correct ? "yes" : "NO");

    bench::section("summary");
    const double scaling = bw4 / bw1;
    std::printf("fetch bandwidth, 1 shard:   %.3f bytes/cycle\n", bw1);
    std::printf("fetch bandwidth, 4 shards:  %.3f bytes/cycle "
                "(%.2fx)\n",
                bw4, scaling);
    bench::JsonLine json("cluster_scaling_summary");
    json.field("scaling_4_shards", scaling)
        .field("degraded_slowdown", slowdown)
        .field("degraded_correct",
               static_cast<std::uint64_t>(correct ? 1 : 0))
        .field("degraded_reads", degraded.degradedReads)
        .field("re_replicated_bytes", degraded.reReplicatedBytes);
    json.emit();
    return scaling >= 2.5 && correct ? 0 : 1;
}
