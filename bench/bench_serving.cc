/**
 * @file
 * Serving SLO curve: open-loop multi-tenant traffic against
 * far-memory-backed workers, sweeping offered load to find the
 * load-to-collapse knee (beyond the paper — the DRackSim/Atlas-style
 * serving evaluation the ROADMAP's production north star asks for).
 *
 * A fixed three-tenant mix (memcached, hashmap probe, analytics point
 * query — shares 2/1/1) is calibrated once for its unloaded mean
 * service time; the sweep then offers poisson (or MMPP) arrivals at
 * fractions of the resulting capacity and reports p50/p99/p99.9
 * sojourn, goodput, and queue depth per point. Queueing delay is
 * tracked separately from service time, so the collapse shows up as
 * queue growth at flat service cost.
 *
 * Flags (all optional, defaults in parentheses):
 *   --seed=N       run seed, printed in the header (42)
 *   --requests=N   arrivals simulated per sweep point (20000)
 *   --loads=a,b,c  offered-load fractions of capacity (8-point sweep)
 *   --workers=N    serving cores (2)
 *   --slo=N        sojourn SLO in cycles (20x unloaded mean service)
 *   --arrivals=poisson|mmpp  arrival process shape (poisson)
 *   --stats        dump the full serve.* StatSet per sweep point
 * Composes with --trace/--record/--replay like every bench.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "bench_util.hh"
#include "serve/scheduler.hh"
#include "sim/stats.hh"

using namespace tfm;

namespace
{

/** The standard tenant mix: one hot KV tenant, two colder ones. */
std::vector<TenantConfig>
tenantMix()
{
    TenantConfig kv;
    kv.workload = TenantWorkloadKind::Memcached;
    kv.numKeys = 20000;
    kv.share = 2.0;
    kv.farHeapBytes = 16ull << 20;
    kv.localMemBytes = 512ull << 10;

    TenantConfig probe;
    probe.workload = TenantWorkloadKind::Hashmap;
    probe.numKeys = 8000;
    probe.share = 1.0;
    probe.farHeapBytes = 8ull << 20;
    probe.localMemBytes = 256ull << 10;

    TenantConfig scan;
    scan.workload = TenantWorkloadKind::Analytics;
    scan.numKeys = 16000;
    scan.share = 1.0;
    scan.farHeapBytes = 8ull << 20;
    scan.localMemBytes = 256ull << 10;

    return {kv, probe, scan};
}

std::vector<double>
parseLoads(const std::string &arg)
{
    std::vector<double> loads;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const double value = std::strtod(item.c_str(), nullptr);
        if (value > 0.0)
            loads.push_back(value);
    }
    return loads;
}

std::uint64_t
numFlag(const char *name, std::uint64_t fallback)
{
    const std::string value = bench::cmdlineArg(name);
    return value.empty() ? fallback
                         : std::strtoull(value.c_str(), nullptr, 10);
}

} // anonymous namespace

int
main()
{
    const CostParams costs;
    const std::uint64_t seed = bench::runSeed(42);
    const std::uint64_t requests = numFlag("requests", 20000);
    const std::uint32_t workers =
        static_cast<std::uint32_t>(numFlag("workers", 2));
    const bool dump_stats = !bench::cmdlineArg("stats").empty() ||
                            std::getenv("TFM_SERVE_STATS") != nullptr;
    const bool mmpp = bench::cmdlineArg("arrivals") == "mmpp";
    std::vector<double> loads = parseLoads(bench::cmdlineArg("loads"));
    if (loads.empty())
        loads = {0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.25};

    bench::banner(
        "Serving SLO curve - offered load vs tail latency (beyond the "
        "paper)",
        "open-loop poisson arrivals collapse at the knee where offered "
        "load crosses calibrated capacity; queueing delay, not service "
        "time, drives the p99.9 blow-up",
        "3-tenant mix (memcached/hashmap/analytics, shares 2/1/1) on "
        "far-memory backends");
    std::printf("seed: %llu%s\n",
                static_cast<unsigned long long>(seed),
                bench::seedPinned() ? " (pinned via --seed/TFM_SEED)"
                                    : "");

    // Calibrate: unloaded mean service per tenant -> aggregate
    // capacity. The calibration probes run on throwaway backends so the
    // sweep's tenants start cold, identically, at every load point.
    const std::vector<TenantConfig> mix = tenantMix();
    bench::section("calibration (unloaded mean service, cycles)");
    double share_sum = 0.0;
    for (const TenantConfig &t : mix)
        share_sum += t.share;
    double mean_service = 0.0;
    for (std::size_t i = 0; i < mix.size(); i++) {
        const double s = meanServiceCycles(mix[i], costs, seed);
        std::printf("  tenant%zu-%-10s %10.1f  (share %.0f)\n", i,
                    tenantWorkloadName(mix[i].workload), s,
                    mix[i].share);
        mean_service += s * mix[i].share / share_sum;
    }
    const double capacity =
        static_cast<double>(workers) / mean_service;
    std::uint64_t slo = numFlag("slo", 0);
    if (slo == 0)
        slo = static_cast<std::uint64_t>(20.0 * mean_service);
    std::printf("  weighted mean service: %.1f cycles; capacity with "
                "%u worker(s): %.3f req/Kcycle\n",
                mean_service, workers, capacity * 1e3);
    std::printf("  sojourn SLO: %llu cycles; arrivals: %s; %llu "
                "requests/point\n",
                static_cast<unsigned long long>(slo),
                mmpp ? "MMPP (8x bursts)" : "poisson",
                static_cast<unsigned long long>(requests));

    bench::section("SLO curve (latencies in cycles)");
    std::printf("%6s %9s %9s %8s %8s %8s %8s %8s %7s\n", "load",
                "offered", "goodput", "p50", "p99", "p99.9", "qdly99",
                "svc99", "qdepth");

    struct Point
    {
        double load = 0.0;
        std::uint64_t p99 = 0;
        double goodput = 0.0;
    };
    std::vector<Point> curve;

    for (const double load : loads) {
        ServeConfig sc;
        sc.tenants = mix;
        sc.arrivals.kind =
            mmpp ? ArrivalKind::Mmpp : ArrivalKind::Poisson;
        sc.arrivals.ratePerCycle = load * capacity;
        sc.workers = workers;
        sc.totalRequests = requests;
        sc.sloCycles = slo;
        sc.seed = seed;
        Scheduler sched(sc, costs);
        const ServeReport report = sched.run();
        const TenantReport &agg = report.aggregate;

        curve.push_back({load, agg.sojourn.percentile(99),
                         report.goodputPerMcycle()});
        std::printf(
            "%6.2f %9.3f %9.3f %8llu %8llu %8llu %8llu %8llu %7llu\n",
            load, load * capacity * 1e3,
            report.goodputPerMcycle() / 1e3,
            static_cast<unsigned long long>(agg.sojourn.percentile(50)),
            static_cast<unsigned long long>(agg.sojourn.percentile(99)),
            static_cast<unsigned long long>(
                agg.sojourn.percentile(99.9)),
            static_cast<unsigned long long>(
                agg.queueDelay.percentile(99)),
            static_cast<unsigned long long>(
                agg.serviceTime.percentile(99)),
            static_cast<unsigned long long>(agg.maxQueueDepth));

        if (dump_stats) {
            StatSet set;
            report.exportStats(set);
            char prefix[32];
            std::snprintf(prefix, sizeof prefix, "  [%.2f] ", load);
            std::ostringstream os;
            set.dump(os, prefix);
            std::fputs(os.str().c_str(), stdout);
        }
    }

    // Knee: the first sweep point whose p99 sojourn exceeds 5x the
    // lowest-load baseline — past it, queueing dominates and the curve
    // is vertical for practical purposes.
    const std::uint64_t baseline_p99 = curve.front().p99;
    const Point *knee = nullptr;
    for (const Point &p : curve) {
        if (p.p99 > 5 * baseline_p99) {
            knee = &p;
            break;
        }
    }
    if (knee != nullptr)
        std::printf("\nload-to-collapse knee: offered load %.2f "
                    "(p99 %llu cycles, %.1fx the %.2f-load baseline)\n",
                    knee->load,
                    static_cast<unsigned long long>(knee->p99),
                    static_cast<double>(knee->p99) /
                        static_cast<double>(baseline_p99),
                    curve.front().load);
    else
        std::printf("\nload-to-collapse knee: not reached in this "
                    "sweep (max p99 %.1fx baseline)\n",
                    static_cast<double>(curve.back().p99) /
                        static_cast<double>(baseline_p99));

    bench::JsonLine json("serving");
    json.field("seed", seed)
        .field("workers", static_cast<std::uint64_t>(workers))
        .field("requests", requests)
        .field("mean_service_cycles", mean_service)
        .field("slo_cycles", slo)
        .field("p99_first", curve.front().p99)
        .field("p99_last", curve.back().p99)
        .field("goodput_first", curve.front().goodput)
        .field("goodput_last", curve.back().goodput)
        .field("knee_load", knee ? knee->load : 0.0);
    json.emit();
    return 0;
}
