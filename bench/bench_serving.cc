/**
 * @file
 * Serving SLO curve: open-loop multi-tenant traffic against
 * far-memory-backed workers, sweeping offered load to find the
 * load-to-collapse knee (beyond the paper — the DRackSim/Atlas-style
 * serving evaluation the ROADMAP's production north star asks for).
 *
 * A fixed three-tenant mix (memcached, hashmap probe, analytics point
 * query — shares 2/1/1) is calibrated once for its unloaded mean
 * service time; the sweep then offers poisson (or MMPP) arrivals at
 * fractions of the resulting capacity and reports p50/p99/p99.9
 * sojourn, goodput, and queue depth per point. Queueing delay is
 * tracked separately from service time, so the collapse shows up as
 * queue growth at flat service cost.
 *
 * With a comma list of worker counts (--workers=1,2,4) the bench runs
 * one SLO curve per count on a common load axis (fractions of the
 * 1-worker capacity), prints each curve's knee plus a worker-scaling
 * summary at --cal-load, and emits goodput_cal_w<N>/knee_w<N>/scaling
 * JSON fields — the knee moving right and goodput scaling with the
 * worker count is the end-to-end evidence for the concurrent runtime
 * (DESIGN.md §4k).
 *
 * Flags (all optional, defaults in parentheses):
 *   --seed=N       run seed, printed in the header (42)
 *   --requests=N   arrivals simulated per sweep point (20000)
 *   --loads=a,b,c  offered-load fractions of capacity (8-point sweep)
 *   --workers=N[,M...]  serving cores; a list sweeps counts (2)
 *   --concurrent   real std::thread workers on one shared TrackFM
 *                  runtime instead of simulated cores (off)
 *   --shards=N     frame-cache shards for --concurrent (auto)
 *   --cal-load=X   load for the worker-scaling comparison (2.0)
 *   --slo=N        sojourn SLO in cycles (20x unloaded mean service)
 *   --arrivals=poisson|mmpp  arrival process shape (poisson)
 *   --stats        dump the full serve.* StatSet per sweep point
 * Composes with --trace/--record/--replay like every bench — except
 * under --concurrent, which is wall-clock threaded and rejects the
 * flight recorder (record/replay needs the deterministic single-
 * thread mode). --trace still works there: worker threads only emit
 * through the serialized network path, and the scheduler samples the
 * per-worker serve.w<i>.* counters tfm-stat's breakdown table reads.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "serve/scheduler.hh"
#include "sim/stats.hh"

using namespace tfm;

namespace
{

/** The standard tenant mix: one hot KV tenant, two colder ones. */
std::vector<TenantConfig>
tenantMix()
{
    TenantConfig kv;
    kv.workload = TenantWorkloadKind::Memcached;
    kv.numKeys = 20000;
    kv.share = 2.0;
    kv.farHeapBytes = 16ull << 20;
    kv.localMemBytes = 512ull << 10;

    TenantConfig probe;
    probe.workload = TenantWorkloadKind::Hashmap;
    probe.numKeys = 8000;
    probe.share = 1.0;
    probe.farHeapBytes = 8ull << 20;
    probe.localMemBytes = 256ull << 10;

    TenantConfig scan;
    scan.workload = TenantWorkloadKind::Analytics;
    scan.numKeys = 16000;
    scan.share = 1.0;
    scan.farHeapBytes = 8ull << 20;
    scan.localMemBytes = 256ull << 10;

    return {kv, probe, scan};
}

std::vector<double>
parseLoads(const std::string &arg)
{
    std::vector<double> loads;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const double value = std::strtod(item.c_str(), nullptr);
        if (value > 0.0)
            loads.push_back(value);
    }
    return loads;
}

std::vector<std::uint32_t>
parseWorkerCounts(const std::string &arg)
{
    std::vector<std::uint32_t> counts;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const unsigned long v = std::strtoul(item.c_str(), nullptr, 10);
        if (v > 0)
            counts.push_back(static_cast<std::uint32_t>(v));
    }
    if (counts.empty())
        counts.push_back(2);
    return counts;
}

std::uint64_t
numFlag(const char *name, std::uint64_t fallback)
{
    const std::string value = bench::cmdlineArg(name);
    return value.empty() ? fallback
                         : std::strtoull(value.c_str(), nullptr, 10);
}

/** One sweep point's headline numbers. */
struct Point
{
    double load = 0.0;
    std::uint64_t p99 = 0;
    double goodput = 0.0;
};

/** One worker count's curve plus its knee and scaling point. */
struct Curve
{
    std::uint32_t workers = 0;
    std::vector<Point> points;
    double kneeLoad = 0.0; ///< 0 = not reached in this sweep
    std::uint64_t kneeP99 = 0;
    double calGoodput = 0.0; ///< goodput at the --cal-load point
};

} // anonymous namespace

int
main()
{
    const CostParams costs;
    const std::uint64_t seed = bench::runSeed(42);
    const std::uint64_t requests = numFlag("requests", 20000);
    const std::vector<std::uint32_t> worker_counts =
        parseWorkerCounts(bench::cmdlineArg("workers"));
    const bool multi = worker_counts.size() > 1;
    const bool concurrent = bench::flagPresent("concurrent");
    const std::uint32_t shards =
        static_cast<std::uint32_t>(numFlag("shards", 0));
    const std::string cal_arg = bench::cmdlineArg("cal-load");
    const double cal_load =
        cal_arg.empty() ? 2.0 : std::strtod(cal_arg.c_str(), nullptr);
    const bool dump_stats = bench::flagPresent("stats") ||
                            std::getenv("TFM_SERVE_STATS") != nullptr;
    const bool mmpp = bench::cmdlineArg("arrivals") == "mmpp";
    std::vector<double> loads = parseLoads(bench::cmdlineArg("loads"));
    if (loads.empty())
        loads = {0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.25};

    if (concurrent && (!bench::cmdlineArg("record").empty() ||
                       !bench::cmdlineArg("replay").empty())) {
        std::fprintf(stderr,
                     "bench_serving: --concurrent runs wall-clock "
                     "threads and does not compose with the flight "
                     "recorder; use the deterministic mode (no "
                     "--concurrent) for record/replay\n");
        return 2;
    }

    bench::banner(
        "Serving SLO curve - offered load vs tail latency (beyond the "
        "paper)",
        "open-loop poisson arrivals collapse at the knee where offered "
        "load crosses calibrated capacity; queueing delay, not service "
        "time, drives the p99.9 blow-up",
        "3-tenant mix (memcached/hashmap/analytics, shares 2/1/1) on "
        "far-memory backends");
    std::printf("seed: %llu%s\n",
                static_cast<unsigned long long>(seed),
                bench::seedPinned() ? " (pinned via --seed/TFM_SEED)"
                                    : "");
    if (concurrent)
        std::printf("mode: concurrent (std::thread workers, one "
                    "shared TrackFM runtime%s)\n",
                    shards ? ", --shards override" : ", auto shards");

    // Calibrate: unloaded mean service per tenant -> aggregate
    // capacity. The calibration probes run on throwaway backends so the
    // sweep's tenants start cold, identically, at every load point.
    const std::vector<TenantConfig> mix = tenantMix();
    bench::section("calibration (unloaded mean service, cycles)");
    double share_sum = 0.0;
    for (const TenantConfig &t : mix)
        share_sum += t.share;
    double mean_service = 0.0;
    for (std::size_t i = 0; i < mix.size(); i++) {
        const double s = meanServiceCycles(mix[i], costs, seed);
        std::printf("  tenant%zu-%-10s %10.1f  (share %.0f)\n", i,
                    tenantWorkloadName(mix[i].workload), s,
                    mix[i].share);
        mean_service += s * mix[i].share / share_sum;
    }
    // Multi-count sweeps share one load axis (fractions of the
    // 1-worker capacity) so the knees of different counts are
    // comparable and "moves right with workers" is meaningful.
    const std::uint32_t ref_workers = multi ? 1u : worker_counts[0];
    const double capacity =
        static_cast<double>(ref_workers) / mean_service;
    std::uint64_t slo = numFlag("slo", 0);
    if (slo == 0)
        slo = static_cast<std::uint64_t>(20.0 * mean_service);
    std::printf("  weighted mean service: %.1f cycles; capacity with "
                "%u worker(s): %.3f req/Kcycle\n",
                mean_service, ref_workers, capacity * 1e3);
    std::printf("  sojourn SLO: %llu cycles; arrivals: %s; %llu "
                "requests/point\n",
                static_cast<unsigned long long>(slo),
                mmpp ? "MMPP (8x bursts)" : "poisson",
                static_cast<unsigned long long>(requests));

    std::vector<Curve> curves;

    for (const std::uint32_t nworkers : worker_counts) {
        if (multi) {
            const std::string title =
                "SLO curve, workers=" + std::to_string(nworkers) +
                " (load axis: x 1-worker capacity)";
            bench::section(title.c_str());
        } else {
            bench::section("SLO curve (latencies in cycles)");
        }
        std::printf("%6s %9s %9s %8s %8s %8s %8s %8s %7s\n", "load",
                    "offered", "goodput", "p50", "p99", "p99.9",
                    "qdly99", "svc99", "qdepth");

        Curve curve;
        curve.workers = nworkers;

        const auto runPoint = [&](double load, bool print) {
            ServeConfig sc;
            sc.tenants = mix;
            sc.arrivals.kind =
                mmpp ? ArrivalKind::Mmpp : ArrivalKind::Poisson;
            sc.arrivals.ratePerCycle = load * capacity;
            sc.workers = nworkers;
            sc.totalRequests = requests;
            sc.sloCycles = slo;
            sc.seed = seed;
            sc.concurrent = concurrent;
            sc.cacheShards = shards;
            Scheduler sched(sc, costs);
            const ServeReport report = sched.run();
            const TenantReport &agg = report.aggregate;

            if (print) {
                std::printf("%6.2f %9.3f %9.3f %8llu %8llu %8llu "
                            "%8llu %8llu %7llu\n",
                            load, load * capacity * 1e3,
                            report.goodputPerMcycle() / 1e3,
                            static_cast<unsigned long long>(
                                agg.sojourn.percentile(50)),
                            static_cast<unsigned long long>(
                                agg.sojourn.percentile(99)),
                            static_cast<unsigned long long>(
                                agg.sojourn.percentile(99.9)),
                            static_cast<unsigned long long>(
                                agg.queueDelay.percentile(99)),
                            static_cast<unsigned long long>(
                                agg.serviceTime.percentile(99)),
                            static_cast<unsigned long long>(
                                agg.maxQueueDepth));
                if (dump_stats) {
                    StatSet set;
                    report.exportStats(set);
                    char prefix[32];
                    std::snprintf(prefix, sizeof prefix, "  [%.2f] ",
                                  load);
                    std::ostringstream os;
                    set.dump(os, prefix);
                    std::fputs(os.str().c_str(), stdout);
                }
            }
            Point p;
            p.load = load;
            p.p99 = agg.sojourn.percentile(99);
            p.goodput = report.goodputPerMcycle();
            return p;
        };

        for (const double load : loads)
            curve.points.push_back(runPoint(load, true));

        // Knee: the first sweep point whose p99 sojourn exceeds 5x the
        // lowest-load baseline — past it, queueing dominates and the
        // curve is vertical for practical purposes.
        const std::uint64_t baseline_p99 = curve.points.front().p99;
        const Point *knee = nullptr;
        for (const Point &p : curve.points) {
            if (p.p99 > 5 * baseline_p99) {
                knee = &p;
                break;
            }
        }
        if (knee != nullptr) {
            curve.kneeLoad = knee->load;
            curve.kneeP99 = knee->p99;
        }
        if (multi) {
            if (knee != nullptr)
                std::printf("\nworkers=%u knee: offered load %.2f "
                            "(p99 %llu cycles, %.1fx the %.2f-load "
                            "baseline)\n",
                            nworkers, knee->load,
                            static_cast<unsigned long long>(knee->p99),
                            static_cast<double>(knee->p99) /
                                static_cast<double>(baseline_p99),
                            curve.points.front().load);
            else
                std::printf("\nworkers=%u knee: not reached in this "
                            "sweep (max p99 %.1fx baseline)\n",
                            nworkers,
                            static_cast<double>(
                                curve.points.back().p99) /
                                static_cast<double>(baseline_p99));
            const Point cal = runPoint(cal_load, false);
            curve.calGoodput = cal.goodput;
            std::printf("workers=%u scaling point @ load %.2f: "
                        "goodput %.3f req/Mcycle\n",
                        nworkers, cal_load, cal.goodput);
        } else if (knee != nullptr) {
            std::printf("\nload-to-collapse knee: offered load %.2f "
                        "(p99 %llu cycles, %.1fx the %.2f-load "
                        "baseline)\n",
                        knee->load,
                        static_cast<unsigned long long>(knee->p99),
                        static_cast<double>(knee->p99) /
                            static_cast<double>(baseline_p99),
                        curve.points.front().load);
        } else {
            std::printf("\nload-to-collapse knee: not reached in this "
                        "sweep (max p99 %.1fx baseline)\n",
                        static_cast<double>(curve.points.back().p99) /
                            static_cast<double>(baseline_p99));
        }
        curves.push_back(curve);
    }

    if (multi) {
        std::printf("\nworker scaling at load %.2f (x 1-worker "
                    "capacity):\n",
                    cal_load);
        for (const Curve &c : curves) {
            if (c.kneeLoad > 0.0)
                std::printf("  workers=%-2u goodput %9.3f req/Mcycle  "
                            "knee %.2f\n",
                            c.workers, c.calGoodput, c.kneeLoad);
            else
                std::printf("  workers=%-2u goodput %9.3f req/Mcycle  "
                            "knee not reached\n",
                            c.workers, c.calGoodput);
        }
        if (curves.front().calGoodput > 0.0)
            std::printf("  scaling w%u/w%u: %.2fx\n",
                        curves.back().workers, curves.front().workers,
                        curves.back().calGoodput /
                            curves.front().calGoodput);
    }

    const Curve &first = curves.front();
    bench::JsonLine json("serving");
    json.field("seed", seed)
        .field("workers",
               static_cast<std::uint64_t>(worker_counts[0]))
        .field("requests", requests)
        .field("mean_service_cycles", mean_service)
        .field("slo_cycles", slo)
        .field("p99_first", first.points.front().p99)
        .field("p99_last", first.points.back().p99)
        .field("goodput_first", first.points.front().goodput)
        .field("goodput_last", first.points.back().goodput)
        .field("knee_load", first.kneeLoad);
    if (multi || concurrent)
        json.field("concurrent",
                   static_cast<std::uint64_t>(concurrent ? 1 : 0));
    if (multi) {
        for (const Curve &c : curves) {
            const std::string g =
                "goodput_cal_w" + std::to_string(c.workers);
            json.field(g.c_str(), c.calGoodput);
            const std::string k =
                "knee_w" + std::to_string(c.workers);
            json.field(k.c_str(), c.kneeLoad);
        }
        json.field("scaling",
                   curves.front().calGoodput > 0.0
                       ? curves.back().calGoodput /
                             curves.front().calGoodput
                       : 0.0);
    }
    json.emit();
    return 0;
}
