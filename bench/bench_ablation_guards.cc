/**
 * @file
 * Ablation: reduce guard COSTS vs reduce guard COUNTS.
 *
 * Section 4.2 names the two paths to making compiler-based far memory
 * feasible; section 5's "Lessons" reports that eliminating guards
 * (chunking) was the more fruitful path than making each guard cheaper.
 * This ablation sweeps the fast-path guard cost for the naive
 * transformation and compares each point against chunking at the
 * paper's real 21-cycle guard.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/stream.hh"

using namespace tfm;

namespace
{

std::uint64_t
runSum(ChunkPolicy policy, std::uint64_t fast_path_cycles)
{
    CostParams costs;
    costs.fastPathReadCycles = fast_path_cycles;
    costs.fastPathWriteCycles = fast_path_cycles;

    BackendConfig cfg;
    cfg.kind = SystemKind::TrackFm;
    cfg.farHeapBytes = 32 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.chunkPolicy = policy;
    cfg.localMemBytes = 8 << 20; // everything local: guards dominate
    auto backend = makeBackend(cfg, costs);
    StreamWorkload stream(*backend, 1u << 20, 2, 4);
    stream.runSum(); // warm
    return stream.runSum().delta.cycles;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Ablation - cheaper guards vs fewer guards (section 5 lesson)",
        "even a hypothetical 4-cycle fast path cannot match eliminating "
        "the guards via loop chunking",
        "4 MB STREAM sum, fully local (guard-bound regime)");

    const std::uint64_t chunked = runSum(ChunkPolicy::All, 21);
    std::printf("chunked transformation (real 21-cycle guards): "
                "%llu cycles\n\n",
                static_cast<unsigned long long>(chunked));
    std::printf("%18s %14s %18s\n", "fast-path cycles", "naive cyc",
                "chunked speedup");
    for (const std::uint64_t cost : {80ull, 40ull, 21ull, 10ull, 4ull}) {
        const std::uint64_t naive = runSum(ChunkPolicy::None, cost);
        std::printf("%18llu %14llu %17.2fx\n",
                    static_cast<unsigned long long>(cost),
                    static_cast<unsigned long long>(naive),
                    static_cast<double>(naive) /
                        static_cast<double>(chunked));
    }
    std::printf(
        "\nAt the real 21-cycle fast path, chunking wins 1.8x. Matching "
        "it by cheapening\nguards would need them under ~5 cycles total "
        "-- less than the custody check alone\n(4 cycles) before the "
        "state-table load even happens. Eliminating guards is the\n"
        "fruitful path, as section 5's Lessons report.\n");
    return 0;
}
