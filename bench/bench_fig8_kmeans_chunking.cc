/**
 * @file
 * Figure 8: selective loop chunking on k-means. Applying the chunking
 * transformation to every loop (including the low-density nested
 * feature loops) is a large slowdown; filtering through the section 3.4
 * cost model recovers a speedup.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/kmeans.hh"

using namespace tfm;

namespace
{

std::uint64_t
runKmeans(ChunkPolicy policy, double local_fraction)
{
    KMeansParams params;
    params.seed = bench::runSeed(params.seed);
    params.numPoints = 30000; // 30M in the paper, scaled 1000x
    params.dims = 8;
    params.iterations = 1;

    BackendConfig cfg;
    cfg.kind = SystemKind::TrackFm;
    cfg.farHeapBytes = 32 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = true;
    cfg.chunkPolicy = policy;
    const std::uint64_t working_set =
        params.numPoints * (params.dims * 4 + params.dims * 4 + 4);
    cfg.localMemBytes =
        bench::localBytesFor(local_fraction, working_set, 4096);

    auto backend = makeBackend(cfg, CostParams{});
    KMeansWorkload workload(*backend, params);
    return workload.run().delta.cycles;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Figure 8 - selective loop chunking on k-means",
        "chunking all loops gives ~4x slowdown; the cost model filter "
        "yields up to ~2.5x speedup over the baseline",
        "30K points standing in for the paper's 30M (1 GB working set)");

    std::printf("%10s %12s %16s\n", "local mem", "all loops",
                "high-density only");
    std::printf("%10s %12s %16s\n", "", "(speedup)", "(speedup)");
    for (int i = 0; i < bench::localMemSweepPoints; i++) {
        const double fraction = bench::localMemSweep[i];
        const std::uint64_t baseline =
            runKmeans(ChunkPolicy::None, fraction);
        const std::uint64_t all_loops =
            runKmeans(ChunkPolicy::All, fraction);
        const std::uint64_t selective =
            runKmeans(ChunkPolicy::CostModel, fraction);
        std::printf("%10s %11.2fx %15.2fx\n",
                    bench::pct(fraction).c_str(),
                    static_cast<double>(baseline) /
                        static_cast<double>(all_loops),
                    static_cast<double>(baseline) /
                        static_cast<double>(selective));
    }
    std::printf("\nPaper reference: 'all loops' well below 1.0 "
                "(mean ~0.25x); 'high-density only' above 1.0 "
                "(up to ~2.5x).\n");
    return 0;
}
