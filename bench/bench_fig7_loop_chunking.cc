/**
 * @file
 * Figure 7: speedup of the loop-chunking transformation over the naive
 * guard-per-element transformation on STREAM Sum and Copy, sweeping
 * the local memory fraction.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/stream.hh"

using namespace tfm;

namespace
{

constexpr std::uint64_t elementsPerArray = 1u << 20; // 4 MB per array
constexpr std::uint32_t elemBytes = 4;               // density 1024

std::uint64_t
runKernel(ChunkPolicy policy, double local_fraction, bool copy)
{
    BackendConfig cfg;
    cfg.kind = SystemKind::TrackFm;
    cfg.farHeapBytes = 32 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = true;
    cfg.chunkPolicy = policy;
    const std::uint64_t working_set = 2 * elementsPerArray * elemBytes;
    cfg.localMemBytes =
        bench::localBytesFor(local_fraction, working_set, 4096);
    auto backend = makeBackend(cfg, CostParams{});
    StreamWorkload stream(*backend, elementsPerArray, 2, elemBytes);
    // Warm-up pass: STREAM reports steady-state sweeps, so the local
    // tier holds whatever fits before measurement starts.
    if (copy)
        stream.runCopy();
    else
        stream.runSum();
    const StreamResult result =
        copy ? stream.runCopy() : stream.runSum();
    return result.delta.cycles;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Figure 7 - loop chunking speedup on STREAM (Sum, Copy)",
        "chunking speeds STREAM up 1.5-2x; benefit grows to the right "
        "(less network-bound) and with more accesses per loop",
        "working set 8 MB standing in for the paper's 12 GB; sweep is "
        "over fractions so shapes are preserved");

    for (const bool copy : {false, true}) {
        bench::section(copy ? "Copy (two accesses per iteration)"
                            : "Sum (one access per iteration)");
        std::printf("%10s %14s %14s %10s\n", "local mem", "naive cyc",
                    "chunked cyc", "speedup");
        for (int i = 0; i < bench::localMemSweepPoints; i++) {
            const double fraction = bench::localMemSweep[i];
            const std::uint64_t naive =
                runKernel(ChunkPolicy::None, fraction, copy);
            const std::uint64_t chunked =
                runKernel(ChunkPolicy::All, fraction, copy);
            std::printf("%10s %14llu %14llu %9.2fx\n",
                        bench::pct(fraction).c_str(),
                        static_cast<unsigned long long>(naive),
                        static_cast<unsigned long long>(chunked),
                        static_cast<double>(naive) /
                            static_cast<double>(chunked));
        }
    }
    std::printf("\nPaper reference: speedups between ~1.5x and ~2x, "
                "rising toward full local memory.\n");
    return 0;
}
