/**
 * @file
 * Figure 17: NAS kernels at 25% local memory — (a) TrackFM vs Fastswap
 * slowdowns normalized to local-only; (b) FT and SP with the O1
 * pre-optimization pipeline (redundant loads eliminated before guard
 * insertion).
 */

#include <cmath>
#include <string>
#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/nas.hh"

using namespace tfm;

namespace
{

struct KernelRun
{
    std::uint64_t cycles;
    std::uint64_t guards;
};

KernelRun
runOne(const char *name, SystemKind kind, bool pre_optimized)
{
    NasParams params;
    params.seed = bench::runSeed(params.seed);
    // Scales chosen so per-line working sets fit 25% local memory, as
    // they do at the paper's class C/D sizes (SP's penta-diagonal line
    // state is the largest).
    params.scale = (std::string(name) == "sp") ? 48 : 32;
    params.iterations = 1;
    params.preOptimized = pre_optimized;

    BackendConfig cfg;
    cfg.kind = kind;
    cfg.farHeapBytes = 64 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = true;
    cfg.chunkPolicy = ChunkPolicy::CostModel;

    auto probe = makeBackend(cfg, CostParams{});
    const std::uint64_t working_set =
        makeNasKernel(name, *probe, params)->workingSetBytes();

    cfg.localMemBytes = bench::localBytesFor(
        kind == SystemKind::Local ? 1.0 : 0.25, working_set, 4096);
    auto backend = makeBackend(cfg, CostParams{});
    auto kernel = makeNasKernel(name, *backend, params);
    const NasResult result = kernel->run();
    return {result.delta.cycles, result.delta.guardEvents};
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Figure 17 - NAS kernels, 25% local memory",
        "TrackFM beats Fastswap on most kernels; FT is the outlier "
        "until the O1 pipeline trims its guard count",
        "scale-16 kernels (MBs) standing in for NAS classes C/D (GBs)");

    const char *kernels[] = {"cg", "ft", "is", "mg", "sp"};

    bench::section("(a) slowdown vs local-only");
    std::printf("%6s %12s %12s\n", "bench", "Fastswap", "TrackFM");
    double geo_fsw = 1.0, geo_tfm = 1.0;
    for (const char *name : kernels) {
        const KernelRun local_run =
            runOne(name, SystemKind::Local, false);
        const KernelRun fsw = runOne(name, SystemKind::Fastswap, false);
        const KernelRun tfm_run =
            runOne(name, SystemKind::TrackFm, false);
        const double fsw_slow = static_cast<double>(fsw.cycles) /
                                static_cast<double>(local_run.cycles);
        const double tfm_slow =
            static_cast<double>(tfm_run.cycles) /
            static_cast<double>(local_run.cycles);
        geo_fsw *= fsw_slow;
        geo_tfm *= tfm_slow;
        std::printf("%6s %11.2fx %11.2fx\n", name, fsw_slow, tfm_slow);
    }
    std::printf("%6s %11.2fx %11.2fx\n", "GeoM.",
                std::pow(geo_fsw, 1.0 / 5.0),
                std::pow(geo_tfm, 1.0 / 5.0));

    bench::section("(b) FT and SP with the O1 pipeline (TFM/O1)");
    std::printf("%6s %10s %10s %10s %14s\n", "bench", "FSwap", "TFM",
                "TFM/O1", "guard cut");
    for (const char *name : {"ft", "sp"}) {
        const KernelRun local_run =
            runOne(name, SystemKind::Local, false);
        const KernelRun fsw = runOne(name, SystemKind::Fastswap, false);
        const KernelRun tfm_naive =
            runOne(name, SystemKind::TrackFm, false);
        const KernelRun tfm_o1 =
            runOne(name, SystemKind::TrackFm, true);
        std::printf("%6s %9.2fx %9.2fx %9.2fx %13.1fx\n", name,
                    static_cast<double>(fsw.cycles) / local_run.cycles,
                    static_cast<double>(tfm_naive.cycles) /
                        local_run.cycles,
                    static_cast<double>(tfm_o1.cycles) /
                        local_run.cycles,
                    static_cast<double>(tfm_naive.guards) /
                        static_cast<double>(tfm_o1.guards));
    }
    std::printf("\nPaper reference: O1 cuts FT memory instructions ~6x "
                "and SP ~4x, dramatically reducing guard overheads.\n");
    return 0;
}
