/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses.
 *
 * Every bench binary regenerates one table or figure from the paper's
 * evaluation: it prints the experiment banner (paper reference, scale
 * factors, cost constants), runs the sweep, and emits one row per data
 * point in a fixed-width table that can be compared against the paper
 * (and trivially re-plotted).
 */

#ifndef TRACKFM_BENCH_BENCH_UTIL_HH
#define TRACKFM_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "obs/flight_recorder.hh"
#include "obs/obs.hh"
#include "sim/cost_params.hh"
#include "sim/logging.hh"

namespace tfm::bench
{

/**
 * Process-wide tracing session behind the uniform `--trace=<file>`
 * flag.
 *
 * Bench binaries have argument-less main() functions, so the flag is
 * recovered from /proc/self/cmdline (with a TFM_TRACE=<file>
 * environment fallback for non-procfs platforms). When present, an
 * Observability sink is installed as the process-wide default before
 * main() runs; every runtime the bench constructs then attaches to it
 * through obs::defaultSink(), and the Chrome trace_event JSON file is
 * written when the process exits. TFM_TRACE_EPOCH overrides the
 * time-series epoch (simulated cycles).
 */
class TraceSession
{
  public:
    TraceSession()
    {
        path = traceArg();
        if (path.empty()) {
            if (const char *env = std::getenv("TFM_TRACE"))
                path = env;
        }
        if (path.empty())
            return;
        ObsConfig config;
        config.trace = true;
        config.epochCycles = 100000;
        if (const char *epoch = std::getenv("TFM_TRACE_EPOCH"))
            config.epochCycles = std::strtoull(epoch, nullptr, 10);
        sink = new Observability(config);
        obs::setDefaultSink(sink);
    }

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    ~TraceSession()
    {
        if (!sink)
            return;
        obs::setDefaultSink(nullptr);
        std::ofstream os(path);
        if (os) {
            sink->writeTrace(os);
            std::fprintf(stderr, "trace written to %s (%zu events)\n",
                         path.c_str(), sink->trace().size());
        } else {
            TFM_WARN("cannot open trace file %s", path.c_str());
        }
        delete sink;
    }

  private:
    static std::string traceArg();

    std::string path;
    Observability *sink = nullptr;
};

/**
 * The value of `--<name>=<value>` on this process's command line, or ""
 * when absent. Bench binaries have argument-less main() functions, so
 * flags are recovered from /proc/self/cmdline.
 */
inline std::string
cmdlineArg(const char *name)
{
    std::ifstream cmdline("/proc/self/cmdline", std::ios::binary);
    const std::string all((std::istreambuf_iterator<char>(cmdline)),
                          std::istreambuf_iterator<char>());
    const std::string prefix = std::string("--") + name + "=";
    std::size_t start = 0;
    while (start < all.size()) {
        std::size_t end = all.find('\0', start);
        if (end == std::string::npos)
            end = all.size();
        if (all.compare(start, prefix.size(), prefix) == 0)
            return all.substr(start + prefix.size(),
                              end - start - prefix.size());
        start = end + 1;
    }
    return "";
}

/**
 * True when `--<name>` appears on this process's command line, bare or
 * with a value. Boolean flags (--stats, --concurrent) come through
 * here; cmdlineArg() only sees the `--<name>=<value>` spelling.
 */
inline bool
flagPresent(const char *name)
{
    std::ifstream cmdline("/proc/self/cmdline", std::ios::binary);
    const std::string all((std::istreambuf_iterator<char>(cmdline)),
                          std::istreambuf_iterator<char>());
    const std::string bare = std::string("--") + name;
    std::size_t start = 0;
    while (start < all.size()) {
        std::size_t end = all.find('\0', start);
        if (end == std::string::npos)
            end = all.size();
        const std::size_t len = end - start;
        if (len == bare.size() &&
            all.compare(start, len, bare) == 0)
            return true;
        if (len > bare.size() &&
            all.compare(start, bare.size(), bare) == 0 &&
            all[start + bare.size()] == '=')
            return true;
        start = end + 1;
    }
    return false;
}

inline std::string
TraceSession::traceArg()
{
    return cmdlineArg("trace");
}

/**
 * First-class run seed behind the uniform `--seed=<n>` flag (TFM_SEED
 * for non-procfs platforms). Every bench that seeds a workload or a
 * generator passes its current default through this, so one knob
 * reseeds the whole binary instead of each bench growing its own
 * ad-hoc flag. With neither flag nor env set, @p fallback is returned
 * and output is unchanged — figure benches keep their published
 * numbers.
 */
inline std::uint64_t
runSeed(std::uint64_t fallback)
{
    std::string value = cmdlineArg("seed");
    if (value.empty()) {
        if (const char *env = std::getenv("TFM_SEED"))
            value = env;
    }
    if (value.empty())
        return fallback;
    return std::strtoull(value.c_str(), nullptr, 10);
}

/** Was the run seed explicitly pinned (--seed / TFM_SEED)? */
inline bool
seedPinned()
{
    return !cmdlineArg("seed").empty() ||
           std::getenv("TFM_SEED") != nullptr;
}

/**
 * Wall-clock measurement policy for dispatch-rate (host time) numbers:
 * `warmup` throwaway runs, then the minimum over `repeats` timed runs
 * — the standard way to get a stable rate out of a noisy shared host.
 * Overridable with --repeat=N / --warmup=N (TFM_REPEAT / TFM_WARMUP
 * for non-procfs platforms).
 */
struct RepeatConfig
{
    int repeats = 5;
    int warmup = 1;
};

inline RepeatConfig
repeatConfig()
{
    RepeatConfig config;
    auto read = [](const char *flag, const char *env, int fallback) {
        std::string value = cmdlineArg(flag);
        if (value.empty()) {
            if (const char *e = std::getenv(env))
                value = e;
        }
        if (value.empty())
            return fallback;
        const long parsed = std::strtol(value.c_str(), nullptr, 10);
        return parsed > 0 ? static_cast<int>(parsed) : fallback;
    };
    config.repeats = read("repeat", "TFM_REPEAT", config.repeats);
    config.warmup = read("warmup", "TFM_WARMUP", config.warmup);
    return config;
}

/** Minimum wall-clock seconds of @p fn over the configured repeats. */
template <typename Fn>
double
minWallSeconds(const RepeatConfig &config, Fn &&fn)
{
    for (int i = 0; i < config.warmup; i++)
        fn();
    double best = 0.0;
    for (int i = 0; i < config.repeats; i++) {
        const auto begin = std::chrono::steady_clock::now();
        fn();
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - begin)
                .count();
        if (i == 0 || elapsed < best)
            best = elapsed;
    }
    return best;
}

/// One session per bench process, live from static init to exit.
inline TraceSession traceSession;

/**
 * Process-wide record/replay session behind the uniform
 * `--record=<file>` / `--replay=<file>` flags (TFM_RECORD / TFM_REPLAY
 * for non-procfs platforms).
 *
 * Mirrors TraceSession: when a flag is present, a FlightRecorder is
 * installed as the process-wide default before main() runs, so every
 * runtime the bench constructs picks it up through
 * obs::defaultRecorder() — no per-bench changes. The log is saved (or
 * the replay verified) when the process exits. Composes with --trace:
 * the recorder's counters are exported into the trace sink before the
 * trace file is written (this object is declared after traceSession,
 * so it is destroyed first).
 */
class RecorderSession
{
  public:
    RecorderSession()
    {
        savePath = cmdlineArg("record");
        if (savePath.empty()) {
            if (const char *env = std::getenv("TFM_RECORD"))
                savePath = env;
        }
        std::string replayPath = cmdlineArg("replay");
        if (replayPath.empty()) {
            if (const char *env = std::getenv("TFM_REPLAY"))
                replayPath = env;
        }
        if (!replayPath.empty()) {
            std::string error;
            auto loaded =
                FlightRecorder::loadForReplay(replayPath, error);
            if (!loaded) {
                std::fprintf(stderr, "bench: --replay=%s: %s\n",
                             replayPath.c_str(), error.c_str());
                std::exit(1);
            }
            recorder = loaded.release();
        } else if (!savePath.empty()) {
            recorder = new FlightRecorder();
        } else {
            return;
        }
        // Divergence in a bench cannot usefully unwind through a
        // static destructor or a measurement loop: print the report
        // and die instead.
        recorder->setDivergencePolicy(
            FlightRecorder::DivergencePolicy::Abort);
        obs::setDefaultRecorder(recorder);
    }

    RecorderSession(const RecorderSession &) = delete;
    RecorderSession &operator=(const RecorderSession &) = delete;

    ~RecorderSession()
    {
        if (!recorder)
            return;
        obs::setDefaultRecorder(nullptr);
        if (Observability *sink = obs::defaultSink())
            recorder->exportTrace(*sink, sink->registerStream("recorder"),
                                  0);
        if (recorder->replaying()) {
            recorder->finishReplay(); // aborts with a report on failure
            std::fprintf(stderr,
                         "replay verified (%llu events consumed)\n",
                         static_cast<unsigned long long>(
                             recorder->consumed()));
        } else {
            std::string error;
            if (recorder->save(savePath, error))
                std::fprintf(stderr,
                             "recording written to %s (%zu events)\n",
                             savePath.c_str(), recorder->size());
            else
                TFM_WARN("cannot save recording: %s", error.c_str());
        }
        delete recorder;
    }

  private:
    std::string savePath;
    FlightRecorder *recorder = nullptr;
};

/// Declared after traceSession so record/replay results reach the
/// trace sink before the trace file is written.
inline RecorderSession recorderSession;

/**
 * Machine-readable result emitter: accumulates key/value pairs and
 * prints one `BENCH_JSON {...}` line that trajectory tooling can grep
 * out of the human-readable report and append to a BENCH_*.json file.
 */
class JsonLine
{
  public:
    explicit JsonLine(const char *benchName)
    {
        buffer = "{\"bench\":\"";
        buffer += benchName;
        buffer += "\"";
    }

    JsonLine &
    field(const char *key, std::uint64_t value)
    {
        char tmp[32];
        std::snprintf(tmp, sizeof(tmp), "%llu",
                      static_cast<unsigned long long>(value));
        return raw(key, tmp);
    }

    JsonLine &
    field(const char *key, double value)
    {
        char tmp[32];
        std::snprintf(tmp, sizeof(tmp), "%.6g", value);
        return raw(key, tmp);
    }

    JsonLine &
    field(const char *key, const char *value)
    {
        std::string quoted = "\"";
        quoted += value;
        quoted += "\"";
        return raw(key, quoted.c_str());
    }

    /** Print the completed line to stdout. */
    void
    emit() const
    {
        std::printf("BENCH_JSON %s}\n", buffer.c_str());
    }

  private:
    JsonLine &
    raw(const char *key, const char *rendered)
    {
        buffer += ",\"";
        buffer += key;
        buffer += "\":";
        buffer += rendered;
        return *this;
    }

    std::string buffer;
};

/** Print the experiment banner. */
inline void
banner(const char *artifact, const char *claim, const char *scale_note)
{
    std::printf("==============================================================\n");
    std::printf("Reproducing: %s\n", artifact);
    std::printf("Claim:       %s\n", claim);
    std::printf("Scale:       %s\n", scale_note);
    std::printf("==============================================================\n");
}

/** Print a section header inside a bench. */
inline void
section(const char *title)
{
    std::printf("\n--- %s ---\n", title);
}

/** Simulated seconds for a cycle count at the model's frequency. */
inline double
seconds(std::uint64_t cycles, const CostParams &costs)
{
    return static_cast<double>(cycles) / (costs.cpuGhz * 1e9);
}

/** Fraction formatter ("25%"). */
inline std::string
pct(double fraction)
{
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%.0f%%", fraction * 100.0);
    return buffer;
}

/** The standard local-memory sweep used by most figures. */
inline const double localMemSweep[] = {0.10, 0.25, 0.40, 0.55,
                                       0.70, 0.85, 1.00};
inline constexpr int localMemSweepPoints = 7;

/** Choose a frame-count-safe local memory size for a fraction. */
inline std::uint64_t
localBytesFor(double fraction, std::uint64_t working_set,
              std::uint32_t object_size)
{
    auto bytes = static_cast<std::uint64_t>(fraction *
                                            static_cast<double>(
                                                working_set));
    const std::uint64_t floor_bytes = 8ull * object_size;
    return bytes < floor_bytes ? floor_bytes : bytes;
}

} // namespace tfm::bench

#endif // TRACKFM_BENCH_BENCH_UTIL_HH
