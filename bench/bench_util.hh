/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses.
 *
 * Every bench binary regenerates one table or figure from the paper's
 * evaluation: it prints the experiment banner (paper reference, scale
 * factors, cost constants), runs the sweep, and emits one row per data
 * point in a fixed-width table that can be compared against the paper
 * (and trivially re-plotted).
 */

#ifndef TRACKFM_BENCH_BENCH_UTIL_HH
#define TRACKFM_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "sim/cost_params.hh"

namespace tfm::bench
{

/**
 * Machine-readable result emitter: accumulates key/value pairs and
 * prints one `BENCH_JSON {...}` line that trajectory tooling can grep
 * out of the human-readable report and append to a BENCH_*.json file.
 */
class JsonLine
{
  public:
    explicit JsonLine(const char *benchName)
    {
        buffer = "{\"bench\":\"";
        buffer += benchName;
        buffer += "\"";
    }

    JsonLine &
    field(const char *key, std::uint64_t value)
    {
        char tmp[32];
        std::snprintf(tmp, sizeof(tmp), "%llu",
                      static_cast<unsigned long long>(value));
        return raw(key, tmp);
    }

    JsonLine &
    field(const char *key, double value)
    {
        char tmp[32];
        std::snprintf(tmp, sizeof(tmp), "%.6g", value);
        return raw(key, tmp);
    }

    JsonLine &
    field(const char *key, const char *value)
    {
        std::string quoted = "\"";
        quoted += value;
        quoted += "\"";
        return raw(key, quoted.c_str());
    }

    /** Print the completed line to stdout. */
    void
    emit() const
    {
        std::printf("BENCH_JSON %s}\n", buffer.c_str());
    }

  private:
    JsonLine &
    raw(const char *key, const char *rendered)
    {
        buffer += ",\"";
        buffer += key;
        buffer += "\":";
        buffer += rendered;
        return *this;
    }

    std::string buffer;
};

/** Print the experiment banner. */
inline void
banner(const char *artifact, const char *claim, const char *scale_note)
{
    std::printf("==============================================================\n");
    std::printf("Reproducing: %s\n", artifact);
    std::printf("Claim:       %s\n", claim);
    std::printf("Scale:       %s\n", scale_note);
    std::printf("==============================================================\n");
}

/** Print a section header inside a bench. */
inline void
section(const char *title)
{
    std::printf("\n--- %s ---\n", title);
}

/** Simulated seconds for a cycle count at the model's frequency. */
inline double
seconds(std::uint64_t cycles, const CostParams &costs)
{
    return static_cast<double>(cycles) / (costs.cpuGhz * 1e9);
}

/** Fraction formatter ("25%"). */
inline std::string
pct(double fraction)
{
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%.0f%%", fraction * 100.0);
    return buffer;
}

/** The standard local-memory sweep used by most figures. */
inline const double localMemSweep[] = {0.10, 0.25, 0.40, 0.55,
                                       0.70, 0.85, 1.00};
inline constexpr int localMemSweepPoints = 7;

/** Choose a frame-count-safe local memory size for a fraction. */
inline std::uint64_t
localBytesFor(double fraction, std::uint64_t working_set,
              std::uint32_t object_size)
{
    auto bytes = static_cast<std::uint64_t>(fraction *
                                            static_cast<double>(
                                                working_set));
    const std::uint64_t floor_bytes = 8ull * object_size;
    return bytes < floor_bytes ? floor_bytes : bytes;
}

} // namespace tfm::bench

#endif // TRACKFM_BENCH_BENCH_UTIL_HH
