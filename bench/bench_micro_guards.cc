/**
 * @file
 * Google-benchmark microbenchmarks for the hot primitives: guard fast
 * path, slow path, chunk cursor step, Fastswap resident access, AIFM
 * deref. Wall time measures the simulator's own overhead; the
 * `sim_cycles` counter reports the simulated cost per operation, which
 * is the number to compare against Tables 1-2.
 */

#include <benchmark/benchmark.h>

#include "aifmlib/aifm_runtime.hh"
#include "fastswap/fastswap_runtime.hh"
#include "tfm/chunk.hh"
#include "tfm/tfm_runtime.hh"

using namespace tfm;

namespace
{

RuntimeConfig
config()
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 8 << 20;
    cfg.localMemBytes = 4 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = false;
    return cfg;
}

void
BM_GuardFastPathRead(benchmark::State &state)
{
    TfmRuntime rt(config(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.load<std::uint64_t>(addr);
    std::uint64_t start = rt.clock().now();
    for (auto _ : state)
        benchmark::DoNotOptimize(rt.load<std::uint64_t>(addr));
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(rt.clock().now() - start),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_GuardFastPathRead);

void
BM_GuardFastPathWrite(benchmark::State &state)
{
    TfmRuntime rt(config(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.store<std::uint64_t>(addr, 1);
    std::uint64_t start = rt.clock().now();
    for (auto _ : state)
        rt.store<std::uint64_t>(addr, 2);
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(rt.clock().now() - start),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_GuardFastPathWrite);

void
BM_GuardRevalidateHit(benchmark::State &state)
{
    TfmRuntime rt(config(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.guardWrite(addr); // arm the epoch
    const std::uint64_t epoch = rt.runtime().evictionEpoch();
    std::uint64_t start = rt.clock().now();
    for (auto _ : state)
        benchmark::DoNotOptimize(rt.revalidate(addr, epoch));
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(rt.clock().now() - start),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_GuardRevalidateHit);

void
BM_GuardSlowPathRemote(benchmark::State &state)
{
    TfmRuntime rt(config(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4 << 20);
    std::uint64_t obj = 0;
    const std::uint64_t objects = (4ull << 20) / 4096;
    std::uint64_t start = rt.clock().now();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            rt.load<std::uint64_t>(addr + (obj % objects) * 4096));
        rt.runtime().evacuateAll();
        obj++;
    }
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(rt.clock().now() - start),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_GuardSlowPathRemote);

void
BM_CustodyReject(benchmark::State &state)
{
    TfmRuntime rt(config(), CostParams{});
    std::uint64_t host_value = 7;
    const auto addr = reinterpret_cast<std::uint64_t>(&host_value);
    std::uint64_t start = rt.clock().now();
    for (auto _ : state)
        benchmark::DoNotOptimize(rt.load<std::uint64_t>(addr));
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(rt.clock().now() - start),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CustodyReject);

void
BM_FastswapResidentAccess(benchmark::State &state)
{
    FastswapConfig cfg;
    cfg.farHeapBytes = 8 << 20;
    cfg.localMemBytes = 4 << 20;
    FastswapRuntime fs(cfg, CostParams{});
    const std::uint64_t heap = fs.allocate(4096);
    fs.load<std::uint64_t>(heap);
    std::uint64_t start = fs.clock().now();
    for (auto _ : state)
        benchmark::DoNotOptimize(fs.load<std::uint64_t>(heap));
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(fs.clock().now() - start),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FastswapResidentAccess);

void
BM_AifmDeref(benchmark::State &state)
{
    AifmRuntime rt(config(), CostParams{});
    const std::uint64_t offset = rt.runtime().allocate(4096);
    rt.deref(offset, false);
    std::uint64_t start = rt.clock().now();
    for (auto _ : state)
        benchmark::DoNotOptimize(rt.deref(offset, false));
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(rt.clock().now() - start),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_AifmDeref);

} // anonymous namespace

BENCHMARK_MAIN();
