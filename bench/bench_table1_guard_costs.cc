/**
 * @file
 * Table 1: TrackFM fast-path vs slow-path guard costs (cycles) when the
 * object is local, cached and uncached.
 *
 * Fast paths and local slow paths are measured by executing guards
 * against a runtime with the object resident over many trials; the
 * "uncached" column (object-state-table cache miss) comes from the
 * calibrated model constants, since per-access cache behaviour is not
 * simulated.
 */

#include <cstdio>
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "tfm/tfm_runtime.hh"

using namespace tfm;

namespace
{

RuntimeConfig
config()
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = false;
    // Table 1 measures the raw guard paths; the last-object inline
    // cache would serve these repeated single-object accesses instead.
    cfg.guardCacheEnabled = false;
    return cfg;
}

/** Median charged cycles over @p trials runs of @p op. */
template <typename Op>
std::uint64_t
medianCycles(TfmRuntime &rt, int trials, Op &&op)
{
    std::vector<std::uint64_t> samples;
    samples.reserve(static_cast<std::size_t>(trials));
    for (int i = 0; i < trials; i++) {
        const std::uint64_t before = rt.clock().now();
        op();
        samples.push_back(rt.clock().now() - before);
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // anonymous namespace

int
main()
{
    const CostParams costs;
    bench::banner(
        "Table 1 - TrackFM guard costs (median cycles over 1000 trials)",
        "fast path ~21 cycles; slow path with object local 144-159",
        "exact reproduction; no working-set scaling involved");

    TfmRuntime rt(config(), costs);
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.load<std::uint64_t>(addr); // localize once

    const std::uint64_t fast_read = medianCycles(
        rt, 1000, [&] { rt.load<std::uint64_t>(addr); });
    const std::uint64_t fast_write = medianCycles(
        rt, 1000, [&] { rt.store<std::uint64_t>(addr, 1); });

    // Slow path with the object local: a prefetched-but-unconsumed
    // object fails the fast-path safety test and calls the runtime,
    // which finds the payload already present (zero residual wait).
    auto &far = rt.runtime();
    const std::uint64_t slow_read = medianCycles(rt, 1000, [&] {
        far.stateTable()[0].setInflight();
        rt.load<std::uint64_t>(addr);
    });
    const std::uint64_t slow_write = medianCycles(rt, 1000, [&] {
        far.stateTable()[0].setInflight();
        rt.store<std::uint64_t>(addr, 2);
    });

    bench::section("Table 1 (object local)");
    std::printf("%-38s %10s %10s\n", "TrackFM Guard Type", "Cached",
                "Uncached");
    std::printf("%-38s %10llu %10llu\n", "TrackFM fast-path read guard",
                static_cast<unsigned long long>(fast_read),
                static_cast<unsigned long long>(
                    costs.fastPathUncachedReadCycles));
    std::printf("%-38s %10llu %10llu\n", "TrackFM fast-path write guard",
                static_cast<unsigned long long>(fast_write),
                static_cast<unsigned long long>(
                    costs.fastPathUncachedWriteCycles));
    std::printf("%-38s %10llu %10llu\n", "TrackFM slow-path read guard",
                static_cast<unsigned long long>(slow_read),
                static_cast<unsigned long long>(
                    costs.slowPathUncachedReadCycles));
    std::printf("%-38s %10llu %10llu\n", "TrackFM slow-path write guard",
                static_cast<unsigned long long>(slow_write),
                static_cast<unsigned long long>(
                    costs.slowPathUncachedWriteCycles));
    // Epoch revalidation (guard.reval): the fast path a hoisted guard
    // takes on every loop iteration instead of a full guard. One
    // epoch compare, no object-state-table lookup, so there is no
    // cached/uncached split.
    const std::uint64_t reval = medianCycles(rt, 1000, [&] {
        rt.revalidate(addr, far.evictionEpoch());
    });
    std::printf("%-38s %10llu %10s\n", "TrackFM hoisted-guard revalidate",
                static_cast<unsigned long long>(reval), "-");
    std::printf("\nPaper reference: 21/297, 21/309, 144/453, 159/432.\n");
    return 0;
}
