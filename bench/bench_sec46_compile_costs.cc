/**
 * @file
 * Section 4.6: compilation costs — generated-code growth (the paper
 * reports an average 2.4x over the original binary, proportional to
 * the number of memory instructions) and compile-time overhead of the
 * TrackFM pipeline relative to plain parsing (paper: under 6x).
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_util.hh"
#include "ir/parser.hh"
#include "passes/guard_opt.hh"
#include "passes/o1_passes.hh"
#include "passes/trackfm_passes.hh"

using namespace tfm;

namespace
{

/**
 * Synthesize a memory-dense program: @p loops sequential loops, each
 * loading and storing through a heap array.
 */
std::string
synthesizeProgram(int loops)
{
    std::ostringstream os;
    os << "func @main() -> i64 {\n";
    os << "entry:\n  %a = call ptr @malloc(80000)\n  br l0.head\n";
    for (int l = 0; l < loops; l++) {
        const std::string id = "l" + std::to_string(l);
        const std::string next =
            (l + 1 < loops) ? ("l" + std::to_string(l + 1) + ".head")
                            : "done";
        const std::string entry_pred =
            (l == 0) ? "entry" : ("l" + std::to_string(l - 1) + ".head");
        os << id << ".head:\n";
        os << "  %" << id << ".i = phi i64 [ 0, " << entry_pred
           << " ], [ %" << id << ".i2, " << id << ".head ]\n";
        os << "  %" << id << ".p = gep %a, %" << id << ".i, 8\n";
        os << "  %" << id << ".v = load i64, %" << id << ".p\n";
        os << "  %" << id << ".w = add %" << id << ".v, 1\n";
        // Realistic loop bodies carry arithmetic between the memory
        // operations (the paper's 2.4x average growth is over real
        // applications, proportional to their memory-instruction share).
        os << "  %" << id << ".t0 = mul %" << id << ".w, 3\n";
        os << "  %" << id << ".t1 = add %" << id << ".t0, 7\n";
        os << "  %" << id << ".t2 = xor %" << id << ".t1, %" << id
           << ".i\n";
        os << "  %" << id << ".t3 = shl %" << id << ".t2, 1\n";
        os << "  %" << id << ".t4 = lshr %" << id << ".t3, 2\n";
        os << "  %" << id << ".t5 = sub %" << id << ".t4, %" << id
           << ".w\n";
        os << "  %" << id << ".t6 = and %" << id << ".t5, 255\n";
        os << "  %" << id << ".t7 = or %" << id << ".t6, 1\n";
        os << "  %" << id << ".w2 = add %" << id << ".w, %" << id
           << ".t7\n";
        os << "  store %" << id << ".w2, %" << id << ".p\n";
        os << "  %" << id << ".i2 = add %" << id << ".i, 1\n";
        os << "  %" << id << ".c = icmp.slt %" << id << ".i2, 1000\n";
        os << "  condbr %" << id << ".c, " << id << ".head, " << next
           << "\n";
    }
    os << "done:\n  ret 0\n}\n";
    return os.str();
}

/**
 * Compile a fresh copy of @p text through O1 + TrackFM with the guard
 * optimizer toggled, and return the static guard counts of the result.
 */
StaticGuardCounts
staticGuardsAt(const std::string &text, bool optimize_guards)
{
    auto parsed = ir::parseModule(text);
    if (!parsed.ok())
        return {};
    PassManager manager;
    addO1Pipeline(manager);
    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::None;
    options.optimizeGuards = optimize_guards;
    addTrackFmPipeline(manager, options);
    if (!manager.run(*parsed.module).ok())
        return {};
    return countStaticGuards(*parsed.module);
}

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Section 4.6 - compilation costs",
        "code size grows ~2.4x on average (proportional to memory "
        "instructions); compile time stays under 6x of the baseline",
        "synthetic memory-dense modules of increasing size");

    std::printf("%8s %12s %12s %8s %12s %12s %8s %10s %10s\n", "loops",
                "size before", "size after", "growth", "parse ms",
                "pipeline ms", "ratio", "guards O0", "guards opt");

    for (const int loops : {4, 16, 64, 256}) {
        const std::string text = synthesizeProgram(loops);

        auto parse_start = std::chrono::steady_clock::now();
        auto parsed = ir::parseModule(text);
        const double parse_ms = millisSince(parse_start);
        if (!parsed.ok()) {
            std::printf("parse error: %s\n", parsed.error.c_str());
            return 1;
        }

        const std::uint64_t before =
            estimateLoweredInstructions(*parsed.module);

        auto pipeline_start = std::chrono::steady_clock::now();
        PassManager manager;
        addO1Pipeline(manager);
        TrackFmPassOptions options;
        options.chunkPolicy = ChunkPolicy::None; // pure guard expansion
        addTrackFmPipeline(manager, options);
        const PipelineReport report = manager.run(*parsed.module);
        const double pipeline_ms = millisSince(pipeline_start);
        if (!report.ok()) {
            std::printf("pipeline error: %s\n",
                        report.verifierError.c_str());
            return 1;
        }

        const std::uint64_t after =
            estimateLoweredInstructions(*parsed.module);
        // Static guard sites with and without the guard optimizer
        // (elimination + coalescing + hoisting): the optimized count
        // includes the preheader guard.reval armers.
        const StaticGuardCounts raw = staticGuardsAt(text, false);
        const StaticGuardCounts opt = staticGuardsAt(text, true);
        std::printf(
            "%8d %12llu %12llu %7.2fx %12.3f %12.3f %7.2fx %10llu %10llu\n",
            loops, static_cast<unsigned long long>(before),
            static_cast<unsigned long long>(after),
            static_cast<double>(after) / static_cast<double>(before),
            parse_ms, pipeline_ms,
            pipeline_ms / (parse_ms > 0.0001 ? parse_ms : 0.0001),
            static_cast<unsigned long long>(raw.guards),
            static_cast<unsigned long long>(opt.guards + opt.revals));
    }
    std::printf("\nPaper reference: average code growth 2.4x; compile "
                "time under 6x of standard LLVM.\n");
    std::printf("\"guards opt\" counts guard + guard.reval sites after "
                "redundant-guard elimination, coalescing, and "
                "loop-invariant hoisting.\n");
    return 0;
}
