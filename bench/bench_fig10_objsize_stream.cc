/**
 * @file
 * Figure 10: impact of object size on STREAM copy bandwidth (perfect
 * spatial locality): larger objects win.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/stream.hh"

using namespace tfm;

namespace
{

double
runStream(std::uint32_t object_size, double local_fraction,
          const CostParams &costs)
{
    BackendConfig cfg;
    cfg.kind = SystemKind::TrackFm;
    cfg.farHeapBytes = 32 << 20;
    cfg.objectSizeBytes = object_size;
    cfg.prefetchEnabled = true;
    cfg.chunkPolicy = ChunkPolicy::CostModel;
    const std::uint64_t elements = 1u << 20; // 4 MB per array
    const std::uint64_t working_set = 2 * elements * 4;
    cfg.localMemBytes =
        bench::localBytesFor(local_fraction, working_set, object_size);

    auto backend = makeBackend(cfg, costs);
    StreamWorkload stream(*backend, elements, 2, 4);
    stream.runCopy(); // steady-state warm-up
    return stream.runCopy().bandwidthMBps(costs.cpuGhz);
}

} // anonymous namespace

int
main()
{
    const CostParams costs;
    bench::banner(
        "Figure 10 - object size on STREAM copy (memory bandwidth)",
        "high spatial locality favours larger (4 KB) objects",
        "8 MB working set standing in for the paper's 9 GB");

    const std::uint32_t sizes[] = {4096, 2048, 1024, 512, 256};

    bench::section("(a) bandwidth (MB/s) vs local memory");
    std::printf("%10s", "local mem");
    for (const std::uint32_t size : sizes)
        std::printf(" %9uB", size);
    std::printf("\n");
    for (int i = 0; i < bench::localMemSweepPoints; i++) {
        const double fraction = bench::localMemSweep[i];
        std::printf("%10s", bench::pct(fraction).c_str());
        for (const std::uint32_t size : sizes)
            std::printf(" %10.1f", runStream(size, fraction, costs));
        std::printf("\n");
    }

    bench::section("(b) fixed 25% local memory");
    std::printf("%10s %14s\n", "obj size", "MB/s");
    for (const std::uint32_t size : sizes)
        std::printf("%9uB %14.1f\n", size, runStream(size, 0.25, costs));

    std::printf("\nPaper reference: bandwidth increases monotonically "
                "with object size; 4 KB is best.\n");
    return 0;
}
