/**
 * @file
 * Figure 16: memcached with USR key/value sizes — throughput, event
 * counts, and data transferred, sweeping the zipf skew parameter.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/memcached.hh"

using namespace tfm;

namespace
{

MemcachedResult
runOne(SystemKind kind, double skew, const CostParams &costs)
{
    MemcachedParams params;
    params.seed = bench::runSeed(params.seed);
    params.numKeys = 1000000; // 100M keys scaled 100x
    params.numGets = 300000;
    params.zipfSkew = skew;

    BackendConfig cfg;
    cfg.kind = kind;
    cfg.farHeapBytes = 256 << 20;
    // TrackFM / AIFM use small objects for tiny KV pairs; Fastswap is
    // stuck at the architected page size.
    cfg.objectSizeBytes = 64;
    cfg.prefetchEnabled = true;
    cfg.chunkPolicy = ChunkPolicy::CostModel;
    // Paper: 12 GB WS, 1 GB local (1/12). Items are ~64 B each here.
    const std::uint64_t working_set = params.numKeys * 96;
    cfg.localMemBytes = working_set / 12;
    if (kind == SystemKind::Local)
        cfg.localMemBytes = cfg.farHeapBytes;

    auto backend = makeBackend(cfg, costs);
    MemcachedWorkload workload(*backend, params);
    workload.run(); // warm-up: exclude the one-time cold fill
    return workload.run();
}

} // anonymous namespace

int
main()
{
    const CostParams costs;
    bench::banner(
        "Figure 16 - memcached (USR sizes), sweeping zipf skew",
        "TrackFM ~1.7x over Fastswap at low skew (I/O amplification); "
        "Fastswap converges as skew rises and faults amortize",
        "1M keys / 300K gets standing in for 100M keys; local memory "
        "1/12 of the working set as in the paper");

    const double skews[] = {1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3};

    bench::section("(a) throughput (KOps/s)");
    std::printf("%6s %12s %12s %12s %10s\n", "skew", "TrackFM",
                "Fastswap", "All local", "TFM/FSW");
    for (const double skew : skews) {
        const MemcachedResult tfm_result =
            runOne(SystemKind::TrackFm, skew, costs);
        const MemcachedResult fsw_result =
            runOne(SystemKind::Fastswap, skew, costs);
        const MemcachedResult local_result =
            runOne(SystemKind::Local, skew, costs);
        std::printf("%6.2f %12.1f %12.1f %12.1f %9.2fx\n", skew,
                    tfm_result.throughputKopsPerSec(costs.cpuGhz),
                    fsw_result.throughputKopsPerSec(costs.cpuGhz),
                    local_result.throughputKopsPerSec(costs.cpuGhz),
                    tfm_result.throughputKopsPerSec(costs.cpuGhz) /
                        fsw_result.throughputKopsPerSec(costs.cpuGhz));
    }

    bench::section("(b) far-memory events per 1K gets");
    std::printf("%6s %16s %16s\n", "skew", "TrackFM guards",
                "Fastswap faults");
    for (const double skew : skews) {
        const MemcachedResult tfm_result =
            runOne(SystemKind::TrackFm, skew, costs);
        const MemcachedResult fsw_result =
            runOne(SystemKind::Fastswap, skew, costs);
        std::printf("%6.2f %16.1f %16.1f\n", skew,
                    1000.0 * static_cast<double>(
                                 tfm_result.delta.farEvents) /
                        static_cast<double>(tfm_result.hits),
                    1000.0 * static_cast<double>(
                                 fsw_result.delta.farEvents) /
                        static_cast<double>(fsw_result.hits));
    }

    bench::section("(c) data transferred (x working set)");
    std::printf("%6s %12s %12s\n", "skew", "TrackFM", "Fastswap");
    for (const double skew : skews) {
        const MemcachedResult tfm_result =
            runOne(SystemKind::TrackFm, skew, costs);
        const MemcachedResult fsw_result =
            runOne(SystemKind::Fastswap, skew, costs);
        const double working_set = 1000000.0 * 96.0;
        std::printf("%6.2f %11.1fx %11.1fx\n", skew,
                    static_cast<double>(
                        tfm_result.delta.bytesTransferred) /
                        working_set,
                    static_cast<double>(
                        fsw_result.delta.bytesTransferred) /
                        working_set);
    }
    std::printf("\nPaper reference: Fastswap transfers ~66x the WS, "
                "TrackFM ~15x; throughput gap shrinks with skew.\n");
    return 0;
}
