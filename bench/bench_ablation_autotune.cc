/**
 * @file
 * Ablation: the object-size autotuner (the section 3.2 extension).
 * Runs the exhaustive recompile-and-measure search on a sequential and
 * a scattered program and shows it lands on the sizes Figures 9 and 10
 * identify by hand.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/autotuner.hh"

using namespace tfm;

namespace
{

const char *const sequentialProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(1048576)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %p = gep %a, %i, 4
  %i32 = trunc %i to i32
  store %i32, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 262144
  condbr %c, loop, exit
exit:
  ret 0
}
)";

const char *const scatteredProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(1048576)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %idx = mul %i, 5003
  %wrapped = srem %idx, 131072
  %p = gep %a, %wrapped, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 4000
  condbr %c, loop, exit
exit:
  ret 0
}
)";

void
tune(const char *label, const char *program)
{
    AutotuneConfig config;
    config.system.runtime.farHeapBytes = 4 << 20;
    config.system.runtime.localMemBytes = 128 << 10;
    const AutotuneResult result = autotuneObjectSize(program, config);

    bench::section(label);
    std::printf("%10s %14s %14s\n", "obj size", "cycles", "MB fetched");
    for (const AutotuneTrial &trial : result.trials) {
        std::printf("%9uB %14llu %14.2f%s\n", trial.objectSizeBytes,
                    static_cast<unsigned long long>(trial.cycles),
                    static_cast<double>(trial.bytesFetched) / 1e6,
                    trial.objectSizeBytes == result.bestObjectSizeBytes
                        ? "   <-- chosen"
                        : "");
    }
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Ablation - object-size autotuning (section 3.2 extension)",
        "an exhaustive search over the 7 power-of-two sizes picks large "
        "objects for sequential programs and small ones for scattered "
        "programs, automatically",
        "1 MB heaps, 128 KB local; each trial recompiles and runs the "
        "program");

    tune("sequential sweep (Fig. 10's regime)", sequentialProgram);
    tune("scattered stores (Fig. 9's regime)", scatteredProgram);
    return 0;
}
