/**
 * @file
 * Batched data plane micro-benchmark: messages, bytes, and cycles for a
 * guarded read-modify-write stream over a far array, with the batched
 * remote I/O pipeline (fetch coalescing + writeback batching) and the
 * guard last-object cache toggled independently.
 *
 * The paper's TCP backend amortizes per-message software cost by
 * aggregating object transfers (sections 3.3/4.3); this harness shows
 * the same lever in the simulated data plane: equal bytes moved, far
 * fewer messages, measurably fewer end-to-end cycles. Results are also
 * emitted as BENCH_JSON lines for trajectory tracking.
 */

#include <cstdio>

#include "bench_util.hh"
#include "tfm/tfm_runtime.hh"

using namespace tfm;

namespace
{

constexpr std::uint64_t arrayBytes = 16ull << 20; // 16 MB stream
constexpr std::uint32_t objectSize = 4096;

struct ModeResult
{
    const char *name;
    std::uint64_t cycles = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    double coalescing = 1.0;
    double wbCoalescing = 1.0;
    std::uint64_t cacheHits = 0;
};

ModeResult
runStream(const char *name, bool batching, bool guard_cache,
          const CostParams &costs)
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 64ull << 20;
    cfg.localMemBytes = arrayBytes / 4; // 25% local memory
    cfg.objectSizeBytes = objectSize;
    cfg.prefetchEnabled = true;
    cfg.prefetchDepth = 16;
    cfg.batchingEnabled = batching;
    cfg.fetchBatchMax = 16;
    cfg.writebackBatchMax = 8;
    cfg.guardCacheEnabled = guard_cache;

    TfmRuntime rt(cfg, costs);
    const std::uint64_t addr = rt.tfmMalloc(arrayBytes);
    const std::uint64_t elems = arrayBytes / sizeof(std::uint64_t);

    const std::uint64_t start = rt.clock().now();
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < elems; i++) {
        const std::uint64_t at = addr + i * sizeof(std::uint64_t);
        const std::uint64_t value = rt.load<std::uint64_t>(at);
        sum += value;
        rt.store<std::uint64_t>(at, value + 1);
    }
    // Drain the coalescing buffer so every mode accounts for the same
    // payload bytes on the wire.
    rt.runtime().flushWritebacks();

    ModeResult r;
    r.name = name;
    r.cycles = rt.clock().now() - start;
    const NetStats &net = rt.runtime().net().stats();
    r.messages = net.totalMessages();
    r.bytes = net.totalBytes();
    r.coalescing = net.fetchCoalescing();
    r.wbCoalescing = net.writebackCoalescing();
    r.cacheHits = rt.guardStats().cacheHitReads +
                  rt.guardStats().cacheHitWrites;
    if (sum == ~0ull) // defeat dead-code elimination of the stream
        std::printf("impossible\n");
    return r;
}

void
report(const ModeResult &r, const CostParams &costs)
{
    std::printf("%-18s %10llu %12llu %10.3f %9.2f %9.2f %12llu\n",
                r.name, static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytes),
                bench::seconds(r.cycles, costs) * 1e3, r.coalescing,
                r.wbCoalescing,
                static_cast<unsigned long long>(r.cacheHits));
    bench::JsonLine json("batching");
    json.field("mode", r.name)
        .field("messages", r.messages)
        .field("bytes", r.bytes)
        .field("cycles", r.cycles)
        .field("fetch_coalescing", r.coalescing)
        .field("writeback_coalescing", r.wbCoalescing)
        .field("guard_cache_hits", r.cacheHits);
    json.emit();
}

} // anonymous namespace

int
main()
{
    const CostParams costs;
    bench::banner(
        "Batched data plane - coalesced fetch/writeback + guard cache",
        "one per-message charge covers a whole coalesced window, so "
        "batching moves the same bytes in >=4x fewer messages and "
        "fewer end-to-end cycles",
        "16 MB guarded read-modify-write stream, 25% local memory");

    bench::section("streaming modes (messages | bytes | sim ms | "
                   "fetch coalescing | wb coalescing | guard cache hits)");
    const ModeResult unbatched =
        runStream("unbatched", false, false, costs);
    const ModeResult batched = runStream("batched", true, false, costs);
    const ModeResult batched_cache =
        runStream("batched+cache", true, true, costs);
    report(unbatched, costs);
    report(batched, costs);
    report(batched_cache, costs);

    bench::section("summary");
    const double msg_ratio = static_cast<double>(unbatched.messages) /
                             static_cast<double>(batched.messages);
    const double cycle_gain =
        static_cast<double>(unbatched.cycles) /
        static_cast<double>(batched_cache.cycles);
    std::printf("message reduction (batched vs unbatched):  %.2fx\n",
                msg_ratio);
    std::printf("equal bytes on the wire:                   %s (%llu vs "
                "%llu)\n",
                unbatched.bytes == batched.bytes ? "yes" : "NO",
                static_cast<unsigned long long>(unbatched.bytes),
                static_cast<unsigned long long>(batched.bytes));
    std::printf("end-to-end speedup (batched+cache):        %.2fx\n",
                cycle_gain);
    bench::JsonLine json("batching_summary");
    json.field("message_reduction", msg_ratio)
        .field("cycle_speedup", cycle_gain)
        .field("equal_bytes",
               static_cast<std::uint64_t>(
                   unbatched.bytes == batched.bytes ? 1 : 0));
    json.emit();
    return 0;
}
