/**
 * @file
 * Figure 13: I/O amplification on the zipfian hashmap — execution time
 * and total data fetched, TrackFM with 64 B objects vs Fastswap's
 * architected 4 KB pages.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/hashmap.hh"

using namespace tfm;

namespace
{

struct Point
{
    double seconds;
    double fetchedGb;
    double amplification;
};

Point
runOne(SystemKind kind, double local_fraction, const CostParams &costs)
{
    HashmapParams params;
    params.seed = bench::runSeed(params.seed);
    params.numKeys = 60000;
    params.numOps = 200000;
    params.zipfSkew = 1.02;

    BackendConfig cfg;
    cfg.kind = kind;
    cfg.farHeapBytes = 32 << 20;
    cfg.objectSizeBytes = 64; // the paper's Fig. 13 choice for TrackFM
    cfg.prefetchEnabled = true;
    cfg.chunkPolicy = ChunkPolicy::CostModel;
    const std::uint64_t working_set =
        (131072ull * 16) + params.numOps * 4;
    cfg.localMemBytes =
        bench::localBytesFor(local_fraction, working_set, 4096);

    auto backend = makeBackend(cfg, costs);
    HashmapWorkload workload(*backend, params);
    workload.run(); // warm-up: exclude the one-time cold fill
    const HashmapResult r = workload.run();
    Point point;
    point.seconds = bench::seconds(r.delta.cycles, costs);
    point.fetchedGb =
        static_cast<double>(r.delta.bytesFetched) / 1e9;
    point.amplification = static_cast<double>(r.delta.bytesFetched) /
                          static_cast<double>(working_set);
    return point;
}

} // anonymous namespace

int
main()
{
    const CostParams costs;
    bench::banner(
        "Figure 13 - I/O amplification (zipf hashmap, 4 B pairs)",
        "Fastswap transfers ~43x the working set; TrackFM (64 B "
        "objects) only ~2.3x, for an average ~12x speedup",
        "60K keys / 200K lookups standing in for 2 GB WS / 50M lookups");

    bench::section("(a) execution time (simulated seconds)");
    std::printf("%10s %14s %14s %10s\n", "local mem", "TrackFM 64B",
                "Fastswap", "speedup");
    for (int i = 0; i < bench::localMemSweepPoints; i++) {
        const double fraction = bench::localMemSweep[i];
        const Point tfm_point =
            runOne(SystemKind::TrackFm, fraction, costs);
        const Point fsw_point =
            runOne(SystemKind::Fastswap, fraction, costs);
        std::printf("%10s %14.4f %14.4f %9.2fx\n",
                    bench::pct(fraction).c_str(), tfm_point.seconds,
                    fsw_point.seconds,
                    fsw_point.seconds / tfm_point.seconds);
    }

    bench::section("(b) total data fetched (x working set)");
    std::printf("%10s %14s %14s\n", "local mem", "TrackFM 64B",
                "Fastswap");
    for (int i = 0; i < bench::localMemSweepPoints; i++) {
        const double fraction = bench::localMemSweep[i];
        const Point tfm_point =
            runOne(SystemKind::TrackFm, fraction, costs);
        const Point fsw_point =
            runOne(SystemKind::Fastswap, fraction, costs);
        std::printf("%10s %13.1fx %13.1fx\n",
                    bench::pct(fraction).c_str(),
                    tfm_point.amplification, fsw_point.amplification);
    }
    std::printf("\nPaper reference: Fastswap ~43x WS transferred vs "
                "TrackFM ~2.3x; ~12x average speedup.\n");
    return 0;
}
