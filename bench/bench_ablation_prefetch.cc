/**
 * @file
 * Ablation: prefetch depth. The runtime's look-ahead is the knob that
 * trades local-memory pollution against fetch-latency hiding; the
 * paper fixes it implicitly inside AIFM. Swept here over STREAM under
 * heavy pressure.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/stream.hh"

using namespace tfm;

namespace
{

struct Point
{
    std::uint64_t cycles;
    std::uint64_t prefetchIssued;
    std::uint64_t bytesFetched;
};

Point
runSum(std::uint32_t depth)
{
    BackendConfig cfg;
    cfg.kind = SystemKind::TrackFm;
    cfg.farHeapBytes = 32 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.chunkPolicy = ChunkPolicy::All;
    cfg.prefetchEnabled = depth > 0;
    cfg.prefetchDepth = depth == 0 ? 1 : depth;
    cfg.localMemBytes = 1 << 20; // 12.5% of the working set
    auto backend = makeBackend(cfg, CostParams{});
    StreamWorkload stream(*backend, 1u << 20, 2, 4);
    const StreamResult result = stream.runSum();
    Point point;
    point.cycles = result.delta.cycles;
    point.prefetchIssued = backend->stats().get("runtime.prefetch_issued");
    point.bytesFetched = result.delta.bytesFetched;
    return point;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Ablation - prefetch depth under heavy memory pressure",
        "deeper look-ahead hides more fetch latency until the link "
        "saturates; returns diminish past the bandwidth-delay product",
        "8 MB STREAM sum, 12.5% local memory, cold start");

    std::printf("%8s %14s %10s %16s %14s\n", "depth", "cycles",
                "speedup", "prefetches", "MB fetched");
    std::uint64_t baseline = 0;
    for (const std::uint32_t depth : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
        const Point point = runSum(depth);
        if (depth == 0)
            baseline = point.cycles;
        std::printf("%8u %14llu %9.2fx %16llu %14.2f\n", depth,
                    static_cast<unsigned long long>(point.cycles),
                    static_cast<double>(baseline) /
                        static_cast<double>(point.cycles),
                    static_cast<unsigned long long>(
                        point.prefetchIssued),
                    static_cast<double>(point.bytesFetched) / 1e6);
    }
    return 0;
}
