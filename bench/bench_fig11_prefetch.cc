/**
 * @file
 * Figure 11: speedup of prefetching coupled with loop chunking versus
 * loop chunking alone, on STREAM Sum and Copy.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/stream.hh"

using namespace tfm;

namespace
{

std::uint64_t
runKernel(bool prefetch, double local_fraction, bool copy)
{
    BackendConfig cfg;
    cfg.kind = SystemKind::TrackFm;
    cfg.farHeapBytes = 32 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = prefetch;
    cfg.prefetchDepth = 16;
    cfg.chunkPolicy = ChunkPolicy::All;
    const std::uint64_t elements = 1u << 20;
    const std::uint64_t working_set = 2 * elements * 4;
    cfg.localMemBytes =
        bench::localBytesFor(local_fraction, working_set, 4096);
    auto backend = makeBackend(cfg, CostParams{});
    StreamWorkload stream(*backend, elements, 2, 4);
    // Warm-up pass: at high local fractions the arrays stay resident,
    // so prefetching has nothing left to hide (the paper's taper).
    if (copy)
        stream.runCopy();
    else
        stream.runSum();
    return (copy ? stream.runCopy() : stream.runSum()).delta.cycles;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Figure 11 - prefetching coupled with loop chunking on STREAM",
        "up to ~5x where remote costs dominate (left); benefit shrinks "
        "as more of the working set is local",
        "8 MB working set standing in for the paper's 12 GB");

    for (const bool copy : {false, true}) {
        bench::section(copy ? "Copy" : "Sum");
        std::printf("%10s %16s %16s %10s\n", "local mem",
                    "no-prefetch cyc", "prefetch cyc", "speedup");
        for (int i = 0; i < bench::localMemSweepPoints; i++) {
            const double fraction = bench::localMemSweep[i];
            const std::uint64_t off = runKernel(false, fraction, copy);
            const std::uint64_t on = runKernel(true, fraction, copy);
            std::printf("%10s %16llu %16llu %9.2fx\n",
                        bench::pct(fraction).c_str(),
                        static_cast<unsigned long long>(off),
                        static_cast<unsigned long long>(on),
                        static_cast<double>(off) /
                            static_cast<double>(on));
        }
    }
    std::printf("\nPaper reference: ~5x at the far-memory-dominated "
                "left edge, tapering toward 1x at full local memory.\n");
    return 0;
}
