/**
 * @file
 * Figure 14: the NYC-taxi analytics application on TrackFM, Fastswap,
 * and AIFM — slowdown vs a local-only run, plus the guard/fault event
 * counts that explain it.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/dataframe.hh"

using namespace tfm;

namespace
{

DataframeResult
runOne(SystemKind kind, double local_fraction)
{
    DataframeParams params;
    params.seed = bench::runSeed(params.seed);
    params.numRows = 300000; // 31 GB scaled to ~10 MB

    BackendConfig cfg;
    cfg.kind = kind;
    cfg.farHeapBytes = 64 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = true;
    cfg.prefetchDepth = 16;
    cfg.chunkPolicy = ChunkPolicy::CostModel;
    const std::uint64_t working_set = params.numRows * 44;
    cfg.localMemBytes =
        bench::localBytesFor(local_fraction, working_set, 4096);

    auto backend = makeBackend(cfg, CostParams{});
    DataframeWorkload workload(*backend, params);
    // Analytics sessions re-run query suites over the same columns;
    // two consecutive suites expose the reuse that local memory can
    // capture.
    const BackendSnapshot before = snapshot(*backend);
    DataframeResult result = workload.run();
    workload.run();
    result.delta = deltaSince(before, snapshot(*backend));
    return result;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Figure 14 - taxi analytics: TrackFM vs Fastswap vs AIFM",
        "TrackFM within ~10% of AIFM under memory pressure; Fastswap "
        "considerably slower until ~75% of the WS is local",
        "300K synthetic taxi rows standing in for the 31 GB dataset");

    bench::section("(a) slowdown vs local-only");
    std::printf("%10s %10s %10s %10s %14s\n", "local mem", "TrackFM",
                "Fastswap", "AIFM", "TFM vs AIFM");
    for (int i = 0; i < bench::localMemSweepPoints; i++) {
        const double fraction = bench::localMemSweep[i];
        const std::uint64_t local_cycles =
            runOne(SystemKind::Local, fraction).delta.cycles;
        const std::uint64_t tfm_cycles =
            runOne(SystemKind::TrackFm, fraction).delta.cycles;
        const std::uint64_t fsw_cycles =
            runOne(SystemKind::Fastswap, fraction).delta.cycles;
        const std::uint64_t aifm_cycles =
            runOne(SystemKind::Aifm, fraction).delta.cycles;
        std::printf("%10s %9.2fx %9.2fx %9.2fx %13.1f%%\n",
                    bench::pct(fraction).c_str(),
                    static_cast<double>(tfm_cycles) / local_cycles,
                    static_cast<double>(fsw_cycles) / local_cycles,
                    static_cast<double>(aifm_cycles) / local_cycles,
                    100.0 * (static_cast<double>(tfm_cycles) /
                                 static_cast<double>(aifm_cycles) -
                             1.0));
    }

    bench::section("(b) far-memory events (slow guards vs page faults)");
    std::printf("%10s %16s %16s\n", "local mem", "TrackFM guards",
                "Fastswap faults");
    for (int i = 0; i < bench::localMemSweepPoints; i++) {
        const double fraction = bench::localMemSweep[i];
        const std::uint64_t guards =
            runOne(SystemKind::TrackFm, fraction).delta.farEvents;
        const std::uint64_t faults =
            runOne(SystemKind::Fastswap, fraction).delta.farEvents;
        std::printf("%10s %16llu %16llu\n",
                    bench::pct(fraction).c_str(),
                    static_cast<unsigned long long>(guards),
                    static_cast<unsigned long long>(faults));
    }
    std::printf("\nPaper reference: TrackFM within 10%% of AIFM under "
                "pressure; event counts track performance.\n");
    return 0;
}
