/**
 * @file
 * Figure 15: loop-chunking variants on the analytics application. The
 * aggregation query iterates over many small row groups (low object
 * density); chunking them indiscriminately costs performance.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/dataframe.hh"

using namespace tfm;

namespace
{

std::uint64_t
runOne(SystemKind kind, ChunkPolicy policy, double local_fraction)
{
    DataframeParams params;
    params.seed = bench::runSeed(params.seed);
    params.numRows = 300000;

    BackendConfig cfg;
    cfg.kind = kind;
    cfg.farHeapBytes = 64 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = true;
    cfg.chunkPolicy = policy;
    const std::uint64_t working_set = params.numRows * 44;
    cfg.localMemBytes =
        bench::localBytesFor(local_fraction, working_set, 4096);

    auto backend = makeBackend(cfg, CostParams{});
    DataframeWorkload workload(*backend, params);
    const std::uint64_t before = backend->cycles();
    workload.run();
    workload.run();
    return backend->cycles() - before;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Figure 15 - loop-chunking variants on the analytics app",
        "chunking the low-density row-group loops hurts; the cost model "
        "keeps only the dense column scans chunked",
        "300K synthetic taxi rows standing in for the 31 GB dataset");

    std::printf("%10s %10s %10s %18s\n", "local mem", "baseline",
                "all loops", "high-density only");
    std::printf("%10s %30s\n", "", "(slowdown vs local-only)");
    for (int i = 0; i < bench::localMemSweepPoints; i++) {
        const double fraction = bench::localMemSweep[i];
        const std::uint64_t local_cycles =
            runOne(SystemKind::Local, ChunkPolicy::None, fraction);
        const std::uint64_t baseline = runOne(
            SystemKind::TrackFm, ChunkPolicy::None, fraction);
        const std::uint64_t all_loops =
            runOne(SystemKind::TrackFm, ChunkPolicy::All, fraction);
        const std::uint64_t selective = runOne(
            SystemKind::TrackFm, ChunkPolicy::CostModel, fraction);
        std::printf("%10s %9.2fx %9.2fx %17.2fx\n",
                    bench::pct(fraction).c_str(),
                    static_cast<double>(baseline) / local_cycles,
                    static_cast<double>(all_loops) / local_cycles,
                    static_cast<double>(selective) / local_cycles);
    }
    std::printf("\nPaper reference: 'all loops' sits above the "
                "baseline; 'high-density only' is the lowest curve.\n");
    return 0;
}
