/**
 * @file
 * Guard optimization suite A/B: dynamic guards executed with the
 * optimizer off vs on (redundant-guard elimination, same-object
 * coalescing, loop-invariant hoisting with epoch revalidation).
 *
 * The bar is the one the differential tests enforce: at least a 2x
 * reduction in executed full guards at byte-identical program output.
 * Revalidations are reported separately — they are the 3-cycle epoch
 * compares hoisted guards run instead of the full 21-cycle guard.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "core/system.hh"
#include "ir_test_programs.hh"

using namespace tfm;

namespace
{

struct AbResult
{
    std::uint64_t guards = 0;
    std::uint64_t revals = 0;
    std::uint64_t cycles = 0;
    std::int64_t returnValue = 0;
    bool ok = false;
};

SystemConfig
abConfig(bool optimize_guards)
{
    SystemConfig cfg;
    cfg.runtime.farHeapBytes = 8 << 20;
    cfg.runtime.localMemBytes = 1 << 20;
    cfg.runtime.objectSizeBytes = 4096;
    cfg.runtime.prefetchEnabled = false;
    cfg.passes.optimizeGuards = optimize_guards;
    return cfg;
}

AbResult
runOnce(const char *source, bool optimize_guards)
{
    AbResult out;
    System system(abConfig(optimize_guards));
    CompileResult compiled = system.compile(source);
    if (!compiled.ok()) {
        std::printf("compile error: %s\n", compiled.error.c_str());
        return out;
    }
    const RunResult run = system.run(*compiled.program);
    if (run.trapped) {
        std::printf("trap: %s\n", run.trapMessage.c_str());
        return out;
    }
    out.guards = system.runtime().guardStats().guardTotal();
    out.revals = system.runtime().guardStats().revalidations;
    out.cycles = system.cycles();
    out.returnValue = run.returnValue;
    out.ok = true;
    return out;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Guard optimization - dynamic guards, optimizer off vs on",
        "elimination + coalescing + hoisting cut executed full guards "
        ">= 2x on guard-bound loops at identical output",
        "small heap programs; reval column counts 3-cycle epoch checks");

    std::printf("%-22s %10s %10s %8s %8s %10s %8s\n", "program",
                "guards O0", "guards opt", "reduct", "revals",
                "cycles opt", "speedup");

    struct Entry
    {
        const char *name;
        const char *source;
    };
    const Entry entries[] = {
        {"invariant-accum", testprogs::invariantAccumulatorProgram},
        {"struct-fields", testprogs::structFieldsProgram},
        {"strided-sum", testprogs::sumProgram},
    };

    bool all_ok = true;
    for (const Entry &e : entries) {
        const AbResult base = runOnce(e.source, false);
        const AbResult opt = runOnce(e.source, true);
        if (!base.ok || !opt.ok ||
            base.returnValue != opt.returnValue) {
            std::printf("%-22s MISMATCH (outputs differ or run failed)\n",
                        e.name);
            all_ok = false;
            continue;
        }
        std::printf(
            "%-22s %10llu %10llu %7.2fx %8llu %10llu %7.2fx\n", e.name,
            static_cast<unsigned long long>(base.guards),
            static_cast<unsigned long long>(opt.guards),
            static_cast<double>(base.guards) /
                static_cast<double>(opt.guards ? opt.guards : 1),
            static_cast<unsigned long long>(opt.revals),
            static_cast<unsigned long long>(opt.cycles),
            static_cast<double>(base.cycles) /
                static_cast<double>(opt.cycles ? opt.cycles : 1));
    }

    std::printf(
        "\nEvery row verified output-identical across both builds. The "
        "invariant-accumulator\nloop shows the full effect: its "
        "per-iteration guards collapse to one hoisted guard\nplus a "
        "3-cycle revalidation per trip. The strided sum is left alone "
        "by design --\nits pointers are loop-variant, so only chunking "
        "(not hoisting) applies there.\n");
    return all_ok ? 0 : 1;
}
