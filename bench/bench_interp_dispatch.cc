/**
 * @file
 * Interpreter dispatch-rate benchmark: pre-decoded register bytecode
 * engine versus the tree-walking reference engine, on four instruction
 * mixes (host wall-clock instructions/second; the simulated cycle
 * clock is identical between engines by construction).
 *
 * Unlike the figure benches this measures the harness itself, not the
 * paper's system: the bytecode engine exists so the evaluation
 * workloads run at tolerable wall-clock speed. Doubles as a
 * regression gate: --min-speedup=<x> (TFM_MIN_SPEEDUP) exits non-zero
 * if the bytecode engine is below <x> times the reference engine on
 * the arith-loop or pointer-chase mix.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/system.hh"
#include "interp/interpreter.hh"

using namespace tfm;

namespace
{

/** ~200k iterations of straight-line integer arithmetic. */
const char *const kArithLoop = R"(
func @main() -> i64 {
entry:
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %acc = phi i64 [ 0, entry ], [ %acc4, loop ]
  %t1 = mul %i, 3
  %t2 = add %t1, 7
  %t3 = xor %t2, %i
  %t4 = and %t3, 1023
  %t5 = sub %t2, %t4
  %acc2 = add %acc, %t5
  %t6 = shl %i, 1
  %t7 = lshr %t6, 1
  %acc3 = add %acc2, %t7
  %acc4 = srem %acc3, 1000003
  %i2 = add %i, 1
  %c = icmp.slt %i2, 200000
  condbr %c, loop, exit
exit:
  ret %acc4
}
)";

/** Chase a permutation through a 8192-entry i64 array, 150k steps:
 *  every iteration is a guarded far-heap load at a data-dependent
 *  offset. */
const char *const kPointerChase = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(65536)
  br init
init:
  %i = phi i64 [ 0, entry ], [ %i2, init ]
  %n1 = add %i, 97
  %nv = srem %n1, 8192
  %p = gep %a, %i, 8
  store %nv, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 8192
  condbr %c, init, chase
chase:
  br loop
loop:
  %k = phi i64 [ 0, chase ], [ %k2, loop ]
  %cur = phi i64 [ 0, chase ], [ %next, loop ]
  %q = gep %a, %cur, 8
  %next = load i64, %q
  %k2 = add %k, 1
  %c2 = icmp.slt %k2, 150000
  condbr %c2, loop, exit
exit:
  ret %next
}
)";

/** Ten read-modify-write sweeps of a 16384-entry array: two guards
 *  per iteration, mostly last-object cache hits. */
const char *const kGuardDense = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(131072)
  br init
init:
  %i = phi i64 [ 0, entry ], [ %i2, init ]
  %p = gep %a, %i, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 16384
  condbr %c, init, sweep
sweep:
  br loop
loop:
  %k = phi i64 [ 0, sweep ], [ %k2, loop ]
  %acc = phi i64 [ 0, sweep ], [ %acc2, loop ]
  %j = srem %k, 16384
  %q = gep %a, %j, 8
  %v = load i64, %q
  %v2 = add %v, %k
  store %v2, %q
  %acc2 = add %acc, %v2
  %k2 = add %k, 1
  %c2 = icmp.slt %k2, 163840
  condbr %c2, loop, exit
exit:
  ret %acc2
}
)";

/** 150k calls to a small leaf function. */
const char *const kCallHeavy = R"(
func @leaf(%x: i64, %y: i64) -> i64 {
entry:
  %t = mul %x, 3
  %u = add %t, %y
  %v = and %u, 65535
  ret %v
}
func @main() -> i64 {
entry:
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %acc = phi i64 [ 0, entry ], [ %acc2, loop ]
  %r = call i64 @leaf(%i, %acc)
  %acc2 = add %acc, %r
  %i2 = add %i, 1
  %c = icmp.slt %i2, 150000
  condbr %c, loop, exit
exit:
  ret %acc2
}
)";

struct Mix
{
    const char *name;
    const char *source;
};

const Mix kMixes[] = {
    {"arith-loop", kArithLoop},
    {"pointer-chase", kPointerChase},
    {"guard-dense", kGuardDense},
    {"call-heavy", kCallHeavy},
};

struct EngineRate
{
    double rate = 0.0; ///< instructions per wall second (min-of-N)
    std::uint64_t instructions = 0;
    std::uint64_t guardFastHits = 0;
};

SystemConfig
benchConfig()
{
    SystemConfig config;
    // Local tier holds the whole working set: the bench measures the
    // engines' dispatch rate, not the simulated remote fetches (those
    // charge identical *simulated* cycles on both engines anyway).
    config.runtime.farHeapBytes = 64 << 20;
    config.runtime.localMemBytes = 16 << 20;
    config.runtime.objectSizeBytes = 4096;
    config.runtime.prefetchEnabled = false;
    return config;
}

EngineRate
measure(const CompiledProgram &program, const SystemConfig &config,
        InterpEngine engine, const bench::RepeatConfig &repeats)
{
    // One runtime + interpreter across all repeats, so the bytecode
    // engine's one-time compile is amortized exactly as in real use.
    TfmRuntime rt(config.runtime, config.costs);
    Interpreter interp(program.ir(), rt);
    interp.engine = engine;
    EngineRate out;
    const double wall = bench::minWallSeconds(repeats, [&] {
        const RunResult result = interp.run("main");
        if (result.trapped) {
            std::fprintf(stderr, "bench_interp_dispatch: trap: %s\n",
                         result.trapMessage.c_str());
            std::exit(1);
        }
        out.instructions = result.instructionsExecuted;
        out.guardFastHits = result.guardFastHits;
    });
    out.rate = wall > 0.0
                   ? static_cast<double>(out.instructions) / wall
                   : 0.0;
    return out;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Interpreter dispatch rate - bytecode vs reference engine",
        "pre-decoded register bytecode with an inlined guard fast path "
        "dispatches >= 3x the tree-walker's instructions/second",
        "four mixes, full TrackFM pipeline, working set local");

    const bench::RepeatConfig repeats = bench::repeatConfig();
    double gate = 0.0;
    {
        std::string value = bench::cmdlineArg("min-speedup");
        if (value.empty()) {
            if (const char *env = std::getenv("TFM_MIN_SPEEDUP"))
                value = env;
        }
        if (!value.empty())
            gate = std::strtod(value.c_str(), nullptr);
    }

    std::printf("(min of %d runs after %d warmup)\n\n", repeats.repeats,
                repeats.warmup);
    std::printf("%14s %12s %14s %14s %9s %12s\n", "mix", "steps",
                "ref inst/s", "bc inst/s", "speedup", "bc fasthits");

    const SystemConfig config = benchConfig();
    bool gate_failed = false;
    for (const Mix &mix : kMixes) {
        System system(config);
        CompileResult compiled = system.compile(mix.source);
        if (!compiled.ok()) {
            std::fprintf(stderr, "bench_interp_dispatch: %s: %s\n",
                         mix.name, compiled.error.c_str());
            return 1;
        }
        const EngineRate ref =
            measure(*compiled.program, config, InterpEngine::Reference,
                    repeats);
        const EngineRate bc =
            measure(*compiled.program, config, InterpEngine::Bytecode,
                    repeats);
        const double speedup = ref.rate > 0.0 ? bc.rate / ref.rate : 0.0;
        std::printf("%14s %12llu %14.3e %14.3e %8.2fx %12llu\n",
                    mix.name,
                    static_cast<unsigned long long>(bc.instructions),
                    ref.rate, bc.rate, speedup,
                    static_cast<unsigned long long>(bc.guardFastHits));
        bench::JsonLine("interp_dispatch")
            .field("mix", mix.name)
            .field("steps", bc.instructions)
            .field("refRate", ref.rate)
            .field("bcRate", bc.rate)
            .field("speedup", speedup)
            .field("guardFastHits", bc.guardFastHits)
            .emit();
        const bool gated = std::string(mix.name) == "arith-loop" ||
                           std::string(mix.name) == "pointer-chase";
        if (gate > 0.0 && gated && speedup < gate) {
            std::fprintf(stderr,
                         "bench_interp_dispatch: FAIL: %s speedup "
                         "%.2fx below the %.2fx floor\n",
                         mix.name, speedup, gate);
            gate_failed = true;
        }
    }
    return gate_failed ? 1 : 0;
}
