/**
 * @file
 * Hybrid guard/paging data plane A/B/C (DESIGN.md §4l): one program
 * with a dense streaming phase (16-byte-stride array scans — strided,
 * so per-element guards cannot be chunked away) and a pointer-chase
 * phase (node pool threaded by far-jumping next pointers), run three
 * ways:
 *
 *   guard  — ArbiterMode::Off, every site on the classic guard plane:
 *            the dense scans pay a guard per element;
 *   paged  — ArbiterMode::ForceAllPaged: the chase thrashes the page
 *            cache (each hop jumps ~84 pages; the pool working set
 *            exceeds the paged frame budget), paying kernel-style
 *            fault + reclaim costs per hop;
 *   hybrid — ArbiterMode::Auto: the access-pattern analysis routes the
 *            dense array to the paged plane (readahead amortizes the
 *            transfer) and the chase pool to the guard plane.
 *
 * The claim --check enforces: hybrid beats BOTH pure planes on total
 * simulated cycles, at identical program output.
 */

#include <cstdio>
#include <cstdlib>

#include "bench_util.hh"
#include "core/system.hh"

using namespace tfm;

namespace
{

/**
 * Dense phase: a[2*i] = i then two 16-byte-stride sum scans (32768
 * elements each). Chase phase: 16384 128-byte nodes, next[i] = node
 * (i + 2693) mod 16384 (a full 16384-cycle whose consecutive hops are
 * ~344 KB apart), walked for 20000 hops.
 * Expected: 2 * sum(0..32767) + 20000 = 1073729056.
 */
const char *const hybridProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(1048576)
  %pool = call ptr @malloc(2097152)
  br init
init:
  %i = phi i64 [ 0, entry ], [ %i2, init ]
  %d = mul %i, 2
  %p = gep %a, %d, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 32768
  condbr %c, init, build
build:
  br buildloop
buildloop:
  %b = phi i64 [ 0, build ], [ %b2, buildloop ]
  %t = add %b, 2693
  %n = srem %t, 16384
  %nx = gep %pool, %n, 128
  %nxi = ptrtoint %nx to i64
  %slot = gep %pool, %b, 128
  store %nxi, %slot
  %b2 = add %b, 1
  %cb = icmp.slt %b2, 16384
  condbr %cb, buildloop, scan1
scan1:
  br sum1
sum1:
  %j = phi i64 [ 0, scan1 ], [ %j2, sum1 ]
  %s = phi i64 [ 0, scan1 ], [ %s2, sum1 ]
  %e = mul %j, 2
  %q = gep %a, %e, 8
  %v = load i64, %q
  %s2 = add %s, %v
  %j2 = add %j, 1
  %cj = icmp.slt %j2, 32768
  condbr %cj, sum1, scan2
scan2:
  br sum2
sum2:
  %k = phi i64 [ 0, scan2 ], [ %k2, sum2 ]
  %u = phi i64 [ %s2, scan2 ], [ %u2, sum2 ]
  %f = mul %k, 2
  %r = gep %a, %f, 8
  %w = load i64, %r
  %u2 = add %u, %w
  %k2 = add %k, 1
  %ck = icmp.slt %k2, 32768
  condbr %ck, sum2, chase
chase:
  br hop
hop:
  %h = phi i64 [ 0, chase ], [ %h2, hop ]
  %ptr = phi ptr [ %pool, chase ], [ %next, hop ]
  %addr = load i64, %ptr
  %next = inttoptr %addr to ptr
  %h2 = add %h, 1
  %ch = icmp.slt %h2, 20000
  condbr %ch, hop, done
done:
  %total = add %u2, %h2
  ret %total
}
)";

constexpr std::int64_t kExpected = 1073729056;

struct PlaneResult
{
    std::uint64_t cycles = 0;
    std::uint64_t guards = 0;
    std::uint64_t majorFaults = 0;
    std::uint64_t reclaims = 0;
    std::uint64_t pagedSites = 0;
    std::int64_t returnValue = 0;
    bool ok = false;
};

PlaneResult
runPlane(ArbiterMode mode)
{
    SystemConfig cfg;
    cfg.runtime.farHeapBytes = 16 << 20;
    cfg.runtime.localMemBytes = 4 << 20;
    cfg.runtime.objectSizeBytes = 4096;
    // 320 four-KB frames: comfortably streams the 1 MB dense array
    // (256 pages) but cannot hold the 2 MB chase pool (512 pages).
    cfg.runtime.pagedLocalMemBytes = 320ull * 4096;
    cfg.passes.arbiterMode = mode;
    cfg.checkSafety = true;

    PlaneResult out;
    System system(cfg);
    CompileResult compiled = system.compile(hybridProgram);
    if (!compiled.ok()) {
        std::printf("compile error: %s\n", compiled.error.c_str());
        return out;
    }
    if (!system.safetyReport().clean()) {
        std::printf("safety checker flagged the compile\n");
        return out;
    }
    const RunResult run = system.run(*compiled.program);
    if (run.trapped) {
        std::printf("trap: %s\n", run.trapMessage.c_str());
        return out;
    }
    out.cycles = system.cycles();
    out.guards = system.runtime().guardStats().guardTotal();
    out.pagedSites = system.arbiterReport().pagedSites;
    const StatSet stats = system.stats();
    out.majorFaults = stats.get("paged.major_faults");
    out.reclaims = stats.get("paged.reclaims");
    out.returnValue = run.returnValue;
    out.ok = true;
    return out;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Hybrid data plane - guard vs paged vs per-site arbiter",
        "static access-pattern analysis routes dense sites to paging "
        "and chases to guards; the hybrid beats both pure planes",
        "1 MB strided scan + 2 MB pointer chase; paged budget 320 "
        "frames");

    const struct
    {
        const char *name;
        ArbiterMode mode;
    } configs[] = {
        {"guard", ArbiterMode::Off},
        {"paged", ArbiterMode::ForceAllPaged},
        {"hybrid", ArbiterMode::Auto},
    };

    PlaneResult results[3];
    std::printf("%-8s %6s %14s %12s %10s %10s %8s\n", "plane",
                "paged#", "cycles", "guards", "majflt", "reclaims",
                "result");
    for (int i = 0; i < 3; i++) {
        results[i] = runPlane(configs[i].mode);
        const PlaneResult &r = results[i];
        if (!r.ok)
            return 1;
        std::printf("%-8s %6llu %14llu %12llu %10llu %10llu %8s\n",
                    configs[i].name,
                    static_cast<unsigned long long>(r.pagedSites),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.guards),
                    static_cast<unsigned long long>(r.majorFaults),
                    static_cast<unsigned long long>(r.reclaims),
                    r.returnValue == kExpected ? "ok" : "WRONG");
    }

    const PlaneResult &guard = results[0];
    const PlaneResult &paged = results[1];
    const PlaneResult &hybrid = results[2];
    std::printf("\nhybrid vs guard: %.2fx   hybrid vs paged: %.2fx\n",
                static_cast<double>(guard.cycles) /
                    static_cast<double>(hybrid.cycles),
                static_cast<double>(paged.cycles) /
                    static_cast<double>(hybrid.cycles));

    bench::JsonLine("hybrid")
        .field("guard_cycles", guard.cycles)
        .field("paged_cycles", paged.cycles)
        .field("hybrid_cycles", hybrid.cycles)
        .field("hybrid_paged_sites", hybrid.pagedSites)
        .emit();

    const bool outputsOk = guard.returnValue == kExpected &&
                           paged.returnValue == kExpected &&
                           hybrid.returnValue == kExpected;
    const bool hybridWins = hybrid.cycles < guard.cycles &&
                            hybrid.cycles < paged.cycles;
    if (bench::flagPresent("check")) {
        if (!outputsOk) {
            std::printf("CHECK FAILED: wrong program output\n");
            return 1;
        }
        if (!hybridWins) {
            std::printf("CHECK FAILED: hybrid does not beat both "
                        "pure planes\n");
            return 1;
        }
        std::printf("CHECK PASSED: hybrid beats both pure planes\n");
    }
    return outputsOk && hybridWins ? 0 : 1;
}
