/**
 * @file
 * Table 2: primitive overheads — TrackFM slow-path guards vs Fastswap
 * page faults, with the data local vs remote.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "fastswap/fastswap_runtime.hh"
#include "tfm/tfm_runtime.hh"

using namespace tfm;

namespace
{

template <typename Clock, typename Op>
std::uint64_t
medianCycles(Clock &clock, int trials, Op &&op)
{
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < trials; i++) {
        const std::uint64_t before = clock.now();
        op();
        samples.push_back(clock.now() - before);
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // anonymous namespace

int
main()
{
    const CostParams costs;
    bench::banner(
        "Table 2 - primitive overheads, TrackFM vs Fastswap "
        "(median cycles over 1000 trials)",
        "local fault 1.3K vs slow guard ~450; remote ~34-35K for both",
        "exact reproduction; no working-set scaling involved");

    // --- Fastswap ---
    FastswapConfig fs_cfg;
    fs_cfg.farHeapBytes = 64 << 20;
    fs_cfg.localMemBytes = 8 << 20;
    fs_cfg.readaheadEnabled = true;

    // Local fault: page data arrived via readahead, PTE still unmapped.
    FastswapRuntime fs2(fs_cfg, costs);
    const std::uint64_t heap2 = fs2.allocate(32 << 20);
    fs2.load<std::uint64_t>(heap2); // major fault + readahead of 8 pages
    // Let the readahead payloads land before measuring the pure
    // PTE-fixup cost.
    fs2.clock().advance(1'000'000);
    std::uint64_t minor_page = 1;
    const std::uint64_t fs_minor = medianCycles(fs2.clock(), 7, [&] {
        fs2.load<std::uint64_t>(heap2 + minor_page * 4096);
        minor_page++;
    });

    FastswapConfig fs_cfg_nora = fs_cfg;
    fs_cfg_nora.readaheadEnabled = false;
    FastswapRuntime fs3(fs_cfg_nora, costs);
    const std::uint64_t heap3 = fs3.allocate(32 << 20);
    std::uint64_t major_page = 0;
    const std::uint64_t fs_major_read =
        medianCycles(fs3.clock(), 1000, [&] {
            fs3.load<std::uint64_t>(heap3 + major_page * 4096);
            major_page++;
        });
    std::uint64_t major_wpage = major_page;
    const std::uint64_t fs_major_write =
        medianCycles(fs3.clock(), 1000, [&] {
            fs3.store<std::uint64_t>(heap3 + major_wpage * 4096, 1);
            major_wpage++;
        });

    // --- TrackFM ---
    RuntimeConfig tfm_cfg;
    tfm_cfg.farHeapBytes = 64 << 20;
    tfm_cfg.localMemBytes = 8 << 20;
    tfm_cfg.objectSizeBytes = 4096;
    tfm_cfg.prefetchEnabled = false;
    TfmRuntime rt(tfm_cfg, costs);
    const std::uint64_t addr = rt.tfmMalloc(32 << 20);

    // Slow path, object local (uncached column of Table 1 is the
    // closest analogue of the "Local Cost" in Table 2).
    rt.load<std::uint64_t>(addr);
    const std::uint64_t tfm_slow_local =
        medianCycles(rt.clock(), 1000, [&] {
            rt.runtime().stateTable()[0].setInflight();
            rt.load<std::uint64_t>(addr);
        });

    // Slow path, object remote: one blocking 4 KB object fetch.
    std::uint64_t obj = 1;
    const std::uint64_t tfm_slow_remote_read =
        medianCycles(rt.clock(), 1000, [&] {
            rt.load<std::uint64_t>(addr + obj * 4096);
            obj++;
        });
    std::uint64_t wobj = obj;
    const std::uint64_t tfm_slow_remote_write =
        medianCycles(rt.clock(), 1000, [&] {
            rt.store<std::uint64_t>(addr + wobj * 4096, 1);
            wobj++;
        });

    bench::section("Table 2");
    std::printf("%-36s %12s %12s\n", "Runtime Event", "Local Cost",
                "Remote Cost");
    std::printf("%-36s %12llu %12llu\n", "Fastswap read fault",
                static_cast<unsigned long long>(fs_minor),
                static_cast<unsigned long long>(fs_major_read));
    std::printf("%-36s %12llu %12llu\n", "Fastswap write fault",
                static_cast<unsigned long long>(fs_minor),
                static_cast<unsigned long long>(fs_major_write));
    std::printf("%-36s %12llu %12llu\n", "TrackFM slow-path read guard",
                static_cast<unsigned long long>(tfm_slow_local),
                static_cast<unsigned long long>(tfm_slow_remote_read));
    std::printf("%-36s %12llu %12llu\n", "TrackFM slow-path write guard",
                static_cast<unsigned long long>(tfm_slow_local),
                static_cast<unsigned long long>(tfm_slow_remote_write));
    std::printf("\nPaper reference: Fastswap 1.3K/34-35K; "
                "TrackFM 432-453/35K.\n");
    return 0;
}
