/**
 * @file
 * Figure 12: TrackFM (chunking + prefetching) versus Fastswap on
 * STREAM Sum and Copy.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/stream.hh"

using namespace tfm;

namespace
{

std::uint64_t
runKernel(SystemKind kind, double local_fraction, bool copy)
{
    BackendConfig cfg;
    cfg.kind = kind;
    cfg.farHeapBytes = 32 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = true;
    cfg.prefetchDepth = 16;
    cfg.chunkPolicy = ChunkPolicy::All;
    const std::uint64_t elements = 1u << 20;
    const std::uint64_t working_set = 2 * elements * 4;
    cfg.localMemBytes =
        bench::localBytesFor(local_fraction, working_set, 4096);
    auto backend = makeBackend(cfg, CostParams{});
    StreamWorkload stream(*backend, elements, 2, 4);
    return (copy ? stream.runCopy() : stream.runSum()).delta.cycles;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Figure 12 - STREAM speedup over Fastswap "
        "(chunking + prefetching enabled)",
        "TrackFM ~2.7x (Sum) and ~2.9x (Copy) faster than Fastswap",
        "8 MB working set standing in for the paper's 12 GB");

    for (const bool copy : {false, true}) {
        bench::section(copy ? "Copy" : "Sum");
        std::printf("%10s %16s %16s %10s\n", "local mem",
                    "Fastswap cyc", "TrackFM cyc", "speedup");
        for (int i = 0; i < bench::localMemSweepPoints; i++) {
            const double fraction = bench::localMemSweep[i];
            const std::uint64_t fsw =
                runKernel(SystemKind::Fastswap, fraction, copy);
            const std::uint64_t tfm_cycles =
                runKernel(SystemKind::TrackFm, fraction, copy);
            std::printf("%10s %16llu %16llu %9.2fx\n",
                        bench::pct(fraction).c_str(),
                        static_cast<unsigned long long>(fsw),
                        static_cast<unsigned long long>(tfm_cycles),
                        static_cast<double>(fsw) /
                            static_cast<double>(tfm_cycles));
        }
    }
    std::printf("\nPaper reference: TrackFM wins by ~2-3x in the "
                "memory-pressured region.\n");
    return 0;
}
