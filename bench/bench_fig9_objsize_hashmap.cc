/**
 * @file
 * Figure 9: impact of the compiler's object-size choice on a zipfian
 * hashmap (fine-grained accesses, little spatial locality): smaller
 * objects win.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/backend_config.hh"
#include "workloads/hashmap.hh"

using namespace tfm;

namespace
{

HashmapResult
runHashmap(std::uint32_t object_size, double local_fraction,
           const CostParams &costs)
{
    HashmapParams params;
    params.seed = bench::runSeed(params.seed);
    params.numKeys = 60000;   // 2 GB working set scaled down
    params.numOps = 200000;   // 50M lookups scaled down
    params.zipfSkew = 1.02;

    BackendConfig cfg;
    cfg.kind = SystemKind::TrackFm;
    cfg.farHeapBytes = 32 << 20;
    cfg.objectSizeBytes = object_size;
    cfg.prefetchEnabled = true;
    cfg.chunkPolicy = ChunkPolicy::CostModel;
    // Working set: table (2x keys rounded, 16 B slots) + trace.
    const std::uint64_t working_set =
        (131072ull * 16) + params.numOps * 4;
    cfg.localMemBytes =
        bench::localBytesFor(local_fraction, working_set, object_size);

    auto backend = makeBackend(cfg, costs);
    HashmapWorkload workload(*backend, params);
    workload.run(); // warm-up: exclude the one-time cold fill
    return workload.run();
}

} // anonymous namespace

int
main()
{
    const CostParams costs;
    bench::banner(
        "Figure 9 - object size on a zipfian STL-style hashmap",
        "4 B key/value lookups benefit from small object sizes",
        "60K keys / 200K lookups standing in for 2 GB WS / 50M lookups");

    const std::uint32_t sizes[] = {4096, 2048, 1024, 512, 256};

    bench::section("(a) throughput (MOps/s) vs local memory");
    std::printf("%10s", "local mem");
    for (const std::uint32_t size : sizes)
        std::printf(" %9uB", size);
    std::printf("\n");
    for (int i = 0; i < bench::localMemSweepPoints; i++) {
        const double fraction = bench::localMemSweep[i];
        std::printf("%10s", bench::pct(fraction).c_str());
        for (const std::uint32_t size : sizes) {
            const HashmapResult r = runHashmap(size, fraction, costs);
            std::printf(" %10.3f",
                        r.throughputMopsPerSec(costs.cpuGhz));
        }
        std::printf("\n");
    }

    bench::section("(b) fixed 25% local memory");
    std::printf("%10s %14s\n", "obj size", "MOps/s");
    for (const std::uint32_t size : sizes) {
        const HashmapResult r = runHashmap(size, 0.25, costs);
        std::printf("%9uB %14.3f\n", size,
                    r.throughputMopsPerSec(costs.cpuGhz));
    }
    std::printf("\nPaper reference: throughput increases monotonically "
                "as object size shrinks toward 256 B.\n");
    return 0;
}
