/**
 * @file
 * Figure 6: the loop-chunking cost model. Sweeps object density
 * (elements per object), measuring empirical speedup of the chunked
 * transformation over the naive one on an all-local sequential sweep,
 * and prints the model's predicted break-even (~730 elements/object).
 */

#include <cstdio>

#include "bench_util.hh"
#include "tfm/cost_model.hh"
#include "workloads/backend_config.hh"
#include "workloads/stream.hh"

using namespace tfm;

namespace
{

/** Cycles for one sum pass with the given chunk policy, all local. */
std::uint64_t
sweepCycles(std::uint32_t object_size, std::uint32_t elem_bytes,
            ChunkPolicy policy)
{
    BackendConfig cfg;
    cfg.kind = SystemKind::TrackFm;
    cfg.farHeapBytes = 16 << 20;
    cfg.localMemBytes = 16 << 20; // everything fits: guards dominate
    cfg.objectSizeBytes = object_size;
    cfg.prefetchEnabled = false;
    cfg.chunkPolicy = policy;
    auto backend = makeBackend(cfg, CostParams{});
    const std::uint64_t elements = (4 << 20) / elem_bytes;
    StreamWorkload stream(*backend, elements, 2, elem_bytes);
    // Warm pass localizes everything; measured pass is all-fast-path.
    stream.runSum();
    return stream.runSum().delta.cycles;
}

} // anonymous namespace

int
main()
{
    const CostParams costs;
    const ChunkCostModel model;
    bench::banner(
        "Figure 6 - loop-chunking cost model crossover",
        "chunking wins once objects hold more than ~730 elements",
        "4 MB array, all-local; density swept via object size at fixed "
        "8 B elements");

    std::printf("predicted break-even density: %.0f elements/object\n\n",
                model.breakEvenDensity());
    std::printf("%10s %12s %12s %10s %10s\n", "elems/obj", "naive cyc",
                "chunked cyc", "speedup", "model");
    // Object sizes must be powers of two, so achievable densities at a
    // fixed element size are powers of two as well; the crossover falls
    // between the 512 and 1024 points, bracketing the predicted 730.
    const std::uint32_t elem_bytes = 8;
    for (const std::uint32_t density :
         {64u, 128u, 256u, 512u, 1024u, 2048u}) {
        const std::uint32_t object_size = density * elem_bytes;
        const std::uint64_t naive =
            sweepCycles(object_size, elem_bytes, ChunkPolicy::None);
        const std::uint64_t chunked =
            sweepCycles(object_size, elem_bytes, ChunkPolicy::All);
        const double speedup = static_cast<double>(naive) /
                               static_cast<double>(chunked);
        std::printf("%10u %12llu %12llu %9.2fx %10s\n", density,
                    static_cast<unsigned long long>(naive),
                    static_cast<unsigned long long>(chunked), speedup,
                    model.shouldChunk(density) ? "chunk" : "don't");
    }
    std::printf(
        "\nPaper reference: the model predicts ~730 elements/object and "
        "the paper's\nempirical crossing matches it. In this simulator "
        "the runtime charge for a\nlocality guard is mechanistic (~2K "
        "cycles, not the ~13K the fitted model\nconstants imply), so "
        "the empirical crossing lands near d~100; the published\n"
        "decision threshold is kept, making the compiler strictly "
        "conservative\n(it never chunks a loop our runtime would not "
        "profit from).\n");
    return 0;
}
