#!/usr/bin/env python3
"""Well-formedness checker for traces emitted by the observability layer.

Independent of the C++ trace reader on purpose: this is the second
opinion that an emitted file really is Chrome trace_event JSON that
Perfetto / chrome://tracing will load. Checks:

  * the file parses as JSON and has a traceEvents list;
  * every event has name/ph/pid/tid/ts fields of the right types;
  * ph is one of the phases the emitter produces (X B E i C M);
  * 'X' events carry a non-negative dur;
  * timestamps are non-decreasing per (pid, tid) track in buffer order
    (Perfetto requires sorted tracks for correct nesting);
  * 'B'/'E' events balance per (pid, tid), never closing an empty stack;
  * flight-recorder exports are well-formed: record.* / replay.*
    counters carry an integer value arg, and the
    flight_recorder_schema metadata event carries an integer version;
  * serving-subsystem exports are well-formed: serve.* counters carry a
    non-negative integer value, and a serving run emits the full epoch
    triple (serve.qdepth, serve.generated, serve.completed) with
    generated >= completed on every sample;
  * hybrid-data-plane exports are well-formed: arbiter.* and paged.*
    counters carry non-negative integer values, an arbiter decision
    sample emits the full triple (arbiter.paged_sites,
    arbiter.guard_sites, arbiter.pgo_tiebreaks), and the cumulative
    paged-plane counters (major_faults, minor_faults, reclaims) are
    monotone per track — paged.resident_pages is a gauge and may move
    both ways.

Exit status 0 when valid; 1 with a diagnostic on the first failure.
"""

import json
import sys

VALID_PHASES = {"X", "B", "E", "i", "C", "M"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: no traceEvents object")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")

    last_ts = {}  # (pid, tid) -> last timestamp seen in buffer order
    depth = {}  # (pid, tid) -> open 'B' span count
    serve_counters = {}  # serve.* name -> [(track, ts, value), ...]
    arbiter_counters = {}  # arbiter.* name -> [(track, ts, value), ...]
    paged_counters = {}  # paged.* name -> [(track, ts, value), ...]
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event {i}: not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in e:
                fail(f"event {i}: missing {field}")
        ph = e["ph"]
        if ph not in VALID_PHASES:
            fail(f"event {i}: unknown phase {ph!r}")
        if ph == "M":
            if e["name"] == "flight_recorder_schema":
                version = e.get("args", {}).get("version")
                if not isinstance(version, int) or version < 1:
                    fail(
                        f"event {i}: flight_recorder_schema metadata "
                        f"without positive integer version "
                        f"({version!r})"
                    )
            continue  # metadata carries no timestamp
        if "ts" not in e:
            fail(f"event {i}: missing ts")
        if not isinstance(e["ts"], int) or e["ts"] < 0:
            fail(f"event {i}: bad ts {e['ts']!r}")
        track = (e["pid"], e["tid"])
        if e["ts"] < last_ts.get(track, 0):
            fail(
                f"event {i} ({e['name']}): ts {e['ts']} goes backwards "
                f"on track pid={track[0]} tid={track[1]} "
                f"(last was {last_ts[track]})"
            )
        last_ts[track] = e["ts"]
        if ph == "X":
            if not isinstance(e.get("dur"), int) or e["dur"] < 0:
                fail(f"event {i}: 'X' without non-negative dur")
        elif ph == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            if depth.get(track, 0) == 0:
                fail(f"event {i}: 'E' with no open 'B' on {track}")
            depth[track] -= 1
        elif ph == "i":
            if e.get("s", "t") not in ("t", "p", "g"):
                fail(f"event {i}: bad instant scope {e.get('s')!r}")
        elif ph == "C":
            if e["name"].startswith(("record.", "replay.")):
                value = e.get("args", {}).get("value")
                if not isinstance(value, int) or value < 0:
                    fail(
                        f"event {i} ({e['name']}): flight-recorder "
                        f"counter without non-negative integer value "
                        f"({value!r})"
                    )
            elif e["name"].startswith("serve."):
                value = e.get("args", {}).get("value")
                if not isinstance(value, int) or value < 0:
                    fail(
                        f"event {i} ({e['name']}): serving counter "
                        f"without non-negative integer value "
                        f"({value!r})"
                    )
                serve_counters.setdefault(e["name"], []).append(
                    (track, e["ts"], value)
                )
            elif e["name"].startswith(("arbiter.", "paged.")):
                value = e.get("args", {}).get("value")
                if not isinstance(value, int) or value < 0:
                    fail(
                        f"event {i} ({e['name']}): hybrid data-plane "
                        f"counter without non-negative integer value "
                        f"({value!r})"
                    )
                bucket = (
                    arbiter_counters
                    if e["name"].startswith("arbiter.")
                    else paged_counters
                )
                bucket.setdefault(e["name"], []).append(
                    (track, e["ts"], value)
                )

    open_spans = {t: d for t, d in depth.items() if d}
    if open_spans:
        fail(f"unbalanced begin/end spans at EOF: {open_spans}")

    if serve_counters:
        # A serving run's epoch sample is the qdepth/generated/completed
        # triple; a missing member means the scheduler's counterSample
        # list regressed.
        for member in ("serve.qdepth", "serve.generated",
                       "serve.completed"):
            if member not in serve_counters:
                fail(
                    f"serving counters present but {member} missing "
                    f"(have: {sorted(serve_counters)})"
                )
        # generated/completed are cumulative: monotone per track, and
        # completed can never overtake generated at a shared timestamp.
        for name in ("serve.generated", "serve.completed"):
            by_track = {}
            for track, ts, value in serve_counters[name]:
                prev = by_track.get(track)
                if prev is not None and value < prev:
                    fail(
                        f"{name} went backwards on track {track} "
                        f"({prev} -> {value})"
                    )
                by_track[track] = value
        gen = {
            (track, ts): value
            for track, ts, value in serve_counters["serve.generated"]
        }
        for track, ts, value in serve_counters["serve.completed"]:
            if (track, ts) in gen and value > gen[(track, ts)]:
                fail(
                    f"serve.completed {value} exceeds serve.generated "
                    f"{gen[(track, ts)]} at ts {ts}"
                )

    if arbiter_counters:
        # The arbiter emits its decision totals as one sample triple
        # after the pass pipeline; a missing member means the
        # System-side export regressed.
        for member in ("arbiter.paged_sites", "arbiter.guard_sites",
                       "arbiter.pgo_tiebreaks"):
            if member not in arbiter_counters:
                fail(
                    f"arbiter counters present but {member} missing "
                    f"(have: {sorted(arbiter_counters)})"
                )

    # The paged plane's fault/reclaim counters are cumulative: monotone
    # per track. resident_pages is a gauge (reclaim shrinks it).
    for name in ("paged.major_faults", "paged.minor_faults",
                 "paged.reclaims"):
        by_track = {}
        for track, ts, value in paged_counters.get(name, []):
            prev = by_track.get(track)
            if prev is not None and value < prev:
                fail(
                    f"{name} went backwards on track {track} "
                    f"({prev} -> {value})"
                )
            by_track[track] = value

    n_timed = sum(1 for e in events if e.get("ph") != "M")
    n_recorder = sum(
        1
        for e in events
        if e.get("ph") == "C"
        and e.get("name", "").startswith(("record.", "replay."))
    )
    summary = (
        f"validate_trace: OK: {path}: {len(events)} events "
        f"({n_timed} timed, {len(last_ts)} tracks"
    )
    if n_recorder:
        summary += f", {n_recorder} recorder counters"
    n_serving = sum(len(v) for v in serve_counters.values())
    if n_serving:
        summary += f", {n_serving} serving counters"
    n_hybrid = sum(len(v) for v in arbiter_counters.values()) + sum(
        len(v) for v in paged_counters.values()
    )
    if n_hybrid:
        summary += f", {n_hybrid} hybrid counters"
    print(summary + ")")


def main():
    if len(sys.argv) != 2:
        print("usage: validate_trace.py <trace.json>", file=sys.stderr)
        sys.exit(2)
    validate(sys.argv[1])


if __name__ == "__main__":
    main()
