/**
 * @file
 * tfmc — the TrackFM compiler driver.
 *
 * The command-line face of the toolchain in Fig. 1: feed it an
 * unmodified program (textual IR standing in for LLVM bitcode) and it
 * compiles the program for far memory and, on request, runs it on the
 * simulated cluster and reports what the runtime did.
 *
 *     tfmc program.tir                      # compile, print IR
 *     tfmc --run program.tir                # compile and execute
 *     tfmc --run --stats program.tir        # ... with runtime stats
 *     tfmc --chunk=none --object-size=256 --local-mem=262144 ...
 *     tfmc --autotune program.tir           # pick the object size
 *     tfmc --no-transform --run program.tir # baseline (host heap)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/autotuner.hh"
#include "core/system.hh"

namespace
{

struct Options
{
    std::string inputPath;
    bool run = false;
    bool stats = false;
    bool emitIr = false;
    bool transform = true;
    bool autotune = false;
    bool prefetch = true;
    std::string chunk = "costmodel";
    std::uint32_t objectSize = 4096;
    std::uint64_t localMem = 16 << 20;
    std::uint64_t farHeap = 256 << 20;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: tfmc [options] <program.tir>\n"
        "  --run                 execute main() after compiling\n"
        "  --stats               print runtime statistics after --run\n"
        "  --emit-ir             print the transformed IR\n"
        "  --no-transform        parse only (baseline, host heap)\n"
        "  --no-prefetch         disable the stride prefetcher\n"
        "  --autotune            search object sizes, report the best\n"
        "  --chunk=<p>           none | all | costmodel (default)\n"
        "  --object-size=<n>     AIFM object size in bytes (default 4096)\n"
        "  --local-mem=<n>       local tier size in bytes (default 16M)\n"
        "  --far-heap=<n>        far heap size in bytes (default 256M)\n");
}

bool
parseArgs(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--run") {
            options.run = true;
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg == "--emit-ir") {
            options.emitIr = true;
        } else if (arg == "--no-transform") {
            options.transform = false;
        } else if (arg == "--no-prefetch") {
            options.prefetch = false;
        } else if (arg == "--autotune") {
            options.autotune = true;
        } else if (arg.rfind("--chunk=", 0) == 0) {
            options.chunk = arg.substr(8);
        } else if (arg.rfind("--object-size=", 0) == 0) {
            options.objectSize = static_cast<std::uint32_t>(
                std::strtoull(arg.c_str() + 14, nullptr, 10));
        } else if (arg.rfind("--local-mem=", 0) == 0) {
            options.localMem =
                std::strtoull(arg.c_str() + 12, nullptr, 10);
        } else if (arg.rfind("--far-heap=", 0) == 0) {
            options.farHeap =
                std::strtoull(arg.c_str() + 11, nullptr, 10);
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "tfmc: unknown option '%s'\n",
                         arg.c_str());
            return false;
        } else if (options.inputPath.empty()) {
            options.inputPath = arg;
        } else {
            std::fprintf(stderr, "tfmc: multiple input files\n");
            return false;
        }
    }
    return !options.inputPath.empty();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parseArgs(argc, argv, options)) {
        usage();
        return 2;
    }

    std::ifstream in(options.inputPath);
    if (!in) {
        std::fprintf(stderr, "tfmc: cannot open '%s'\n",
                     options.inputPath.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();

    tfm::SystemConfig config;
    config.runtime.farHeapBytes = options.farHeap;
    config.runtime.localMemBytes = options.localMem;
    config.runtime.objectSizeBytes = options.objectSize;
    config.runtime.prefetchEnabled = options.prefetch;
    if (options.chunk == "none")
        config.passes.chunkPolicy = tfm::ChunkPolicy::None;
    else if (options.chunk == "all")
        config.passes.chunkPolicy = tfm::ChunkPolicy::All;
    else if (options.chunk == "costmodel")
        config.passes.chunkPolicy = tfm::ChunkPolicy::CostModel;
    else {
        std::fprintf(stderr, "tfmc: bad --chunk value '%s'\n",
                     options.chunk.c_str());
        return 2;
    }

    if (options.autotune) {
        tfm::AutotuneConfig tune;
        tune.system = config;
        const tfm::AutotuneResult result =
            tfm::autotuneObjectSize(source, tune);
        if (!result.ok()) {
            std::fprintf(stderr, "tfmc: autotune failed (no candidate "
                                 "compiled and ran)\n");
            return 1;
        }
        std::printf("object-size  cycles\n");
        for (const tfm::AutotuneTrial &trial : result.trials) {
            std::printf("%10uB  %llu%s\n", trial.objectSizeBytes,
                        static_cast<unsigned long long>(trial.cycles),
                        trial.objectSizeBytes ==
                                result.bestObjectSizeBytes
                            ? "   <-- best"
                            : "");
        }
        return 0;
    }

    tfm::System system(config);
    tfm::CompileResult compiled = options.transform
                                      ? system.compile(source)
                                      : system.parseOnly(source);
    if (!compiled.ok()) {
        std::fprintf(stderr, "tfmc: %s\n", compiled.error.c_str());
        return 1;
    }

    if (options.emitIr || !options.run)
        std::fputs(compiled.program->disassemble().c_str(), stdout);

    if (!options.run)
        return 0;

    const tfm::RunResult result = system.run(*compiled.program);
    for (const std::int64_t value : result.output)
        std::printf("%lld\n", static_cast<long long>(value));
    if (result.trapped) {
        std::fprintf(stderr, "tfmc: trap: %s\n",
                     result.trapMessage.c_str());
        return 1;
    }
    std::printf("exit value: %lld\n",
                static_cast<long long>(result.returnValue));
    std::printf("simulated time: %.6f s (%llu cycles)\n",
                system.seconds(),
                static_cast<unsigned long long>(system.cycles()));

    if (options.stats) {
        std::printf("\nstatistics:\n");
        const tfm::StatSet stats = system.stats();
        for (const auto &[name, value] : stats.all())
            std::printf("  %-28s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    }
    return 0;
}
