/**
 * @file
 * tfmc — the TrackFM compiler driver.
 *
 * The command-line face of the toolchain in Fig. 1: feed it an
 * unmodified program (textual IR standing in for LLVM bitcode) and it
 * compiles the program for far memory and, on request, runs it on the
 * simulated cluster and reports what the runtime did.
 *
 *     tfmc program.tir                      # compile, print IR
 *     tfmc --run program.tir                # compile and execute
 *     tfmc --run --stats program.tir        # ... with runtime stats
 *     tfmc --chunk=none --object-size=256 --local-mem=262144 ...
 *     tfmc --autotune program.tir           # pick the object size
 *     tfmc --no-transform --run program.tir # baseline (host heap)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "core/autotuner.hh"
#include "core/system.hh"
#include "interp/interpreter.hh"
#include "ir/printer.hh"
#include "obs/flight_recorder.hh"
#include "obs/obs.hh"

namespace
{

struct Options
{
    std::string inputPath;
    bool run = false;
    bool stats = false;
    bool emitIr = false;
    bool transform = true;
    bool autotune = false;
    bool prefetch = true;
    bool guardOpt = true;
    bool guardReport = false;
    bool checkSafety = false;
    std::string hybrid;       ///< "", "auto", or "paged" (--hybrid)
    bool accessReport = false; ///< --print-access-report
    std::string profileIn;    ///< --profile=<file> (PGO tie-breaks)
    std::string profileOut;   ///< --emit-profile=<file>
    std::string engine = "bytecode"; ///< "bytecode" or "ref"
    std::string sanitize;   ///< "farmem", or empty = off
    std::string trace;      ///< trace output path; empty = off
    std::string printAfter; ///< pass name, or "all"; empty = off
    std::string chunk = "costmodel";
    std::uint32_t objectSize = 4096;
    std::uint64_t localMem = 16 << 20;
    std::uint64_t farHeap = 256 << 20;
    std::string record;     ///< full event-log output path; empty = off
    std::string replay;     ///< event-log to replay against; empty = off
    bool flightRecorder = false;
    std::uint64_t flightRecorderCap = 4096; ///< ring size in events
    std::uint32_t shards = 1;
    std::uint32_t replicate = 1;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> killShards;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: tfmc [options] <program.tir>\n"
        "  --run                 execute main() after compiling\n"
        "  --stats               print runtime statistics after --run\n"
        "  --emit-ir             print the transformed IR\n"
        "  --no-transform        parse only (baseline, host heap)\n"
        "  --no-prefetch         disable the stride prefetcher\n"
        "  --no-guard-opt        disable the guard optimization suite\n"
        "  --print-after=<pass>  dump IR after the named pass (or 'all')\n"
        "  --print-guard-report  per-allocation-site guard table\n"
        "  --hybrid[=auto|paged] hybrid data plane: run the static\n"
        "                        access-pattern analysis and route Dense\n"
        "                        allocation sites to the paged plane\n"
        "                        (auto, default) or force every site\n"
        "                        paged (paged; ablation baseline)\n"
        "  --print-access-report per-site access-pattern verdicts with\n"
        "                        stride/chase evidence, plus arbiter\n"
        "                        decisions under --hybrid\n"
        "  --profile=<file>      allocation-site profile for the\n"
        "                        arbiter's Mixed/Unknown PGO tie-break\n"
        "  --emit-profile=<file> write (merging into an existing file)\n"
        "                        the observed allocation-site profile\n"
        "                        after --run\n"
        "  --check-safety        run the static guard-safety checker on\n"
        "                        the IR after every pipeline pass; print\n"
        "                        diagnostics and exit non-zero on any\n"
        "  --engine=<e>          execution engine for --run: bytecode\n"
        "                        (pre-decoded register VM, default) or\n"
        "                        ref (tree-walking reference engine;\n"
        "                        --sanitize=farmem always uses ref)\n"
        "  --sanitize=farmem     dynamic far-memory checking under --run:\n"
        "                        trap stale translations, object-frame\n"
        "                        escapes, and out-of-bounds far accesses\n"
        "  --trace=<file>        write a Chrome trace_event JSON file\n"
        "                        (runtime spans/counters plus per-stage\n"
        "                        safety.* counters under --check-safety)\n"
        "  --record=<file>       log every nondeterminism source (network\n"
        "                        scheduling, backend completions, shard\n"
        "                        failures, eviction and prefetch decisions)\n"
        "                        to a binary event log for later --replay\n"
        "  --replay=<file>       re-run against a recorded log: backend\n"
        "                        timing is re-injected and every decision\n"
        "                        is verified; the first divergence is\n"
        "                        reported (stream, seq, expected/actual)\n"
        "                        and exits with status 3\n"
        "  --flight-recorder[=N] keep only the last N events (default\n"
        "                        4096) in a ring; on a trap the ring is\n"
        "                        dumped to <input>.flight.tfr\n"
        "  --shards=<n>          stripe the far heap over n remote shards\n"
        "  --replicate=<k>       keep k copies of every stripe\n"
        "  --kill-shard=<s>@<c>  schedule shard s to die at cycle c\n"
        "                        (repeatable)\n"
        "  --autotune            search object sizes, report the best\n"
        "  --chunk=<p>           none | all | costmodel (default)\n"
        "  --object-size=<n>     AIFM object size in bytes (default 4096)\n"
        "  --local-mem=<n>       local tier size in bytes (default 16M)\n"
        "  --far-heap=<n>        far heap size in bytes (default 256M)\n");
}

bool
parseArgs(int argc, char **argv, Options &options)
{
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--run") {
            options.run = true;
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg == "--emit-ir") {
            options.emitIr = true;
        } else if (arg == "--no-transform") {
            options.transform = false;
        } else if (arg == "--no-prefetch") {
            options.prefetch = false;
        } else if (arg == "--no-guard-opt") {
            options.guardOpt = false;
        } else if (arg == "--print-guard-report") {
            options.guardReport = true;
        } else if (arg == "--check-safety") {
            options.checkSafety = true;
        } else if (arg == "--hybrid") {
            options.hybrid = "auto";
        } else if (arg.rfind("--hybrid=", 0) == 0) {
            options.hybrid = arg.substr(9);
        } else if (arg == "--print-access-report") {
            options.accessReport = true;
        } else if (arg.rfind("--profile=", 0) == 0) {
            options.profileIn = arg.substr(10);
        } else if (arg.rfind("--emit-profile=", 0) == 0) {
            options.profileOut = arg.substr(15);
        } else if (arg.rfind("--engine=", 0) == 0) {
            options.engine = arg.substr(9);
        } else if (arg.rfind("--sanitize=", 0) == 0) {
            options.sanitize = arg.substr(11);
        } else if (arg.rfind("--trace=", 0) == 0) {
            options.trace = arg.substr(8);
        } else if (arg.rfind("--print-after=", 0) == 0) {
            options.printAfter = arg.substr(14);
        } else if (arg == "--autotune") {
            options.autotune = true;
        } else if (arg.rfind("--chunk=", 0) == 0) {
            options.chunk = arg.substr(8);
        } else if (arg.rfind("--object-size=", 0) == 0) {
            options.objectSize = static_cast<std::uint32_t>(
                std::strtoull(arg.c_str() + 14, nullptr, 10));
        } else if (arg.rfind("--local-mem=", 0) == 0) {
            options.localMem =
                std::strtoull(arg.c_str() + 12, nullptr, 10);
        } else if (arg.rfind("--far-heap=", 0) == 0) {
            options.farHeap =
                std::strtoull(arg.c_str() + 11, nullptr, 10);
        } else if (arg.rfind("--record=", 0) == 0) {
            options.record = arg.substr(9);
        } else if (arg.rfind("--replay=", 0) == 0) {
            options.replay = arg.substr(9);
        } else if (arg == "--flight-recorder") {
            options.flightRecorder = true;
        } else if (arg.rfind("--flight-recorder=", 0) == 0) {
            options.flightRecorder = true;
            options.flightRecorderCap =
                std::strtoull(arg.c_str() + 18, nullptr, 10);
            if (options.flightRecorderCap == 0) {
                std::fprintf(stderr,
                             "tfmc: --flight-recorder needs N > 0\n");
                return false;
            }
        } else if (arg.rfind("--shards=", 0) == 0) {
            options.shards = static_cast<std::uint32_t>(
                std::strtoull(arg.c_str() + 9, nullptr, 10));
        } else if (arg.rfind("--replicate=", 0) == 0) {
            options.replicate = static_cast<std::uint32_t>(
                std::strtoull(arg.c_str() + 12, nullptr, 10));
        } else if (arg.rfind("--kill-shard=", 0) == 0) {
            const char *spec = arg.c_str() + 13;
            char *at = nullptr;
            const std::uint32_t shard = static_cast<std::uint32_t>(
                std::strtoull(spec, &at, 10));
            if (!at || *at != '@') {
                std::fprintf(stderr,
                             "tfmc: --kill-shard wants <shard>@<cycle>, "
                             "got '%s'\n",
                             spec);
                return false;
            }
            const std::uint64_t cycle =
                std::strtoull(at + 1, nullptr, 10);
            options.killShards.emplace_back(shard, cycle);
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "tfmc: unknown option '%s'\n",
                         arg.c_str());
            return false;
        } else if (options.inputPath.empty()) {
            options.inputPath = arg;
        } else {
            std::fprintf(stderr, "tfmc: multiple input files\n");
            return false;
        }
    }
    return !options.inputPath.empty();
}

/**
 * The per-allocation-site guard table: what the compiler did to each
 * site's guards, joined (under --run) with the interpreter's dynamic
 * allocation-site profile.
 */
void
printGuardReport(const tfm::System &system,
                 const tfm::CompiledProgram &program,
                 const tfm::AllocSiteProfile *profile)
{
    const tfm::GuardSiteReport &report = system.guardSiteReport();
    const tfm::StaticGuardCounts counts =
        tfm::countStaticGuards(program.ir());
    std::printf("\nguard report:\n");
    std::printf("  static instructions: %llu guards, %llu revalidations, "
                "%llu chunk accesses\n",
                static_cast<unsigned long long>(counts.guards),
                static_cast<unsigned long long>(counts.revals),
                static_cast<unsigned long long>(counts.chunkAccesses));
    std::printf("  %-16s %5s %9s %5s %10s %8s", "function", "site",
                "inserted", "elim", "coalesced", "hoisted");
    if (profile)
        std::printf(" %8s %10s", "allocs", "accesses");
    std::printf("\n");

    auto printSite = [&](const tfm::GuardSiteReport::Site &site,
                         const char *label) {
        std::printf("  %-16s %5s %9llu %5llu %10llu %8llu", label,
                    site.function.empty()
                        ? "-"
                        : std::to_string(site.ordinal).c_str(),
                    static_cast<unsigned long long>(site.guardsInserted),
                    static_cast<unsigned long long>(
                        site.guardsEliminated),
                    static_cast<unsigned long long>(
                        site.guardsCoalesced),
                    static_cast<unsigned long long>(site.guardsHoisted));
        if (profile) {
            const tfm::AllocSiteProfile::Site *dynamic =
                site.function.empty()
                    ? nullptr
                    : profile->findByOrdinal(site.ordinal);
            std::printf(" %8llu %10llu",
                        static_cast<unsigned long long>(
                            dynamic ? dynamic->allocations : 0),
                        static_cast<unsigned long long>(
                            dynamic ? dynamic->guardedAccesses : 0));
        }
        std::printf("\n");
    };

    for (const tfm::GuardSiteReport::Site &site : report.sites)
        printSite(site, site.function.c_str());
    const tfm::GuardSiteReport::Site &rest = report.unattributed;
    if (rest.guardsInserted || rest.guardsEliminated ||
        rest.guardsCoalesced || rest.guardsHoisted) {
        tfm::GuardSiteReport::Site anonymous = rest;
        anonymous.function.clear();
        printSite(anonymous, "<unattributed>");
    }
    std::printf("  total: %llu inserted, %llu eliminated, "
                "%llu coalesced, %llu hoisted\n",
                static_cast<unsigned long long>(report.totalInserted()),
                static_cast<unsigned long long>(
                    report.totalEliminated()),
                static_cast<unsigned long long>(report.totalCoalesced()),
                static_cast<unsigned long long>(report.totalHoisted()));
}

/**
 * Print the guard-safety diagnostics in machine-readable form (one per
 * line, pass-stamped) plus a per-pass summary.
 * @return total diagnostic count.
 */
std::size_t
printSafetyReport(const tfm::SafetyReport &report)
{
    std::size_t total = 0;
    for (const tfm::SafetyReport::PassEntry &entry : report.perPass) {
        for (const tfm::SafetyDiagnostic &diag : entry.diagnostics) {
            std::printf("safety: after %s: %s\n", entry.pass.c_str(),
                        tfm::formatSafetyDiagnostic(diag).c_str());
            total++;
        }
    }
    std::printf("safety: %zu stage(s) checked, %zu diagnostic(s)\n",
                report.perPass.size(), total);
    for (const tfm::SafetyReport::PassEntry &entry : report.perPass) {
        std::printf("safety:   %-20s %zu\n", entry.pass.c_str(),
                    entry.diagnostics.size());
    }
    return total;
}

/**
 * Owns the --trace observability sink for the process and writes the
 * Chrome trace_event JSON file on destruction (i.e. on every exit path
 * out of main).
 */
struct TraceWriter
{
    explicit TraceWriter(const std::string &trace_path) : path(trace_path)
    {
        if (path.empty())
            return;
        tfm::ObsConfig obs_config;
        obs_config.trace = true;
        sink = std::make_unique<tfm::Observability>(obs_config);
    }

    ~TraceWriter()
    {
        if (!sink)
            return;
        std::ofstream os(path);
        if (os)
            sink->writeTrace(os);
        else
            std::fprintf(stderr, "tfmc: cannot open trace file '%s'\n",
                         path.c_str());
    }

    std::string path;
    std::unique_ptr<tfm::Observability> sink;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parseArgs(argc, argv, options)) {
        usage();
        return 2;
    }

    std::ifstream in(options.inputPath);
    if (!in) {
        std::fprintf(stderr, "tfmc: cannot open '%s'\n",
                     options.inputPath.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();

    tfm::SystemConfig config;
    config.runtime.farHeapBytes = options.farHeap;
    config.runtime.localMemBytes = options.localMem;
    config.runtime.objectSizeBytes = options.objectSize;
    config.runtime.prefetchEnabled = options.prefetch;
    config.runtime.cluster.shardCount = options.shards;
    config.runtime.cluster.replicationFactor = options.replicate;
    for (const auto &[shard, cycle] : options.killShards)
        config.runtime.cluster.failures.killShard(shard, cycle);

    // The recorder must exist before the System (and its runtime) is
    // constructed: replay swaps the remote backend at construction.
    std::unique_ptr<tfm::FlightRecorder> recorder;
    if (!options.replay.empty()) {
        if (!options.record.empty() || options.flightRecorder) {
            std::fprintf(stderr, "tfmc: --replay excludes --record and "
                                 "--flight-recorder\n");
            return 2;
        }
        std::string error;
        recorder =
            tfm::FlightRecorder::loadForReplay(options.replay, error);
        if (!recorder) {
            std::fprintf(stderr, "tfmc: --replay=%s: %s\n",
                         options.replay.c_str(), error.c_str());
            return 1;
        }
    } else if (!options.record.empty() || options.flightRecorder) {
        recorder = std::make_unique<tfm::FlightRecorder>(
            options.flightRecorder ? options.flightRecorderCap : 0);
    }
    if (recorder)
        config.runtime.recorder = recorder.get();
    config.passes.optimizeGuards = options.guardOpt;
    if (!options.printAfter.empty()) {
        const std::string wanted = options.printAfter;
        config.passObserver = [wanted](const std::string &pass,
                                       const tfm::ir::Module &module) {
            if (wanted != "all" && wanted != pass)
                return;
            std::printf("; IR after %s\n%s\n", pass.c_str(),
                        tfm::ir::moduleToString(module).c_str());
        };
    }
    if (options.chunk == "none")
        config.passes.chunkPolicy = tfm::ChunkPolicy::None;
    else if (options.chunk == "all")
        config.passes.chunkPolicy = tfm::ChunkPolicy::All;
    else if (options.chunk == "costmodel")
        config.passes.chunkPolicy = tfm::ChunkPolicy::CostModel;
    else {
        std::fprintf(stderr, "tfmc: bad --chunk value '%s'\n",
                     options.chunk.c_str());
        return 2;
    }
    if (!options.sanitize.empty() && options.sanitize != "farmem") {
        std::fprintf(stderr, "tfmc: bad --sanitize value '%s'\n",
                     options.sanitize.c_str());
        return 2;
    }
    if (options.engine != "bytecode" && options.engine != "ref") {
        std::fprintf(stderr, "tfmc: bad --engine value '%s'\n",
                     options.engine.c_str());
        return 2;
    }
    if (options.hybrid == "auto")
        config.passes.arbiterMode = tfm::ArbiterMode::Auto;
    else if (options.hybrid == "paged")
        config.passes.arbiterMode = tfm::ArbiterMode::ForceAllPaged;
    else if (!options.hybrid.empty()) {
        std::fprintf(stderr, "tfmc: bad --hybrid value '%s'\n",
                     options.hybrid.c_str());
        return 2;
    }
    tfm::AllocSiteProfile pgoProfile;
    if (!options.profileIn.empty()) {
        std::ifstream pin(options.profileIn);
        if (!pin) {
            std::fprintf(stderr, "tfmc: cannot open profile '%s'\n",
                         options.profileIn.c_str());
            return 1;
        }
        std::ostringstream ptext;
        ptext << pin.rdbuf();
        if (!tfm::AllocSiteProfile::parse(ptext.str(), pgoProfile)) {
            std::fprintf(stderr, "tfmc: malformed profile '%s'\n",
                         options.profileIn.c_str());
            return 1;
        }
        config.passes.arbiterProfile = &pgoProfile;
    }
    config.engine = options.engine == "ref"
                        ? tfm::InterpEngine::Reference
                        : tfm::InterpEngine::Bytecode;
    config.checkSafety = options.checkSafety;

    TraceWriter trace(options.trace);
    if (trace.sink)
        config.runtime.obs = trace.sink.get();

    if (options.autotune) {
        tfm::AutotuneConfig tune;
        tune.system = config;
        const tfm::AutotuneResult result =
            tfm::autotuneObjectSize(source, tune);
        if (!result.ok()) {
            std::fprintf(stderr, "tfmc: autotune failed (no candidate "
                                 "compiled and ran)\n");
            return 1;
        }
        std::printf("object-size  cycles\n");
        for (const tfm::AutotuneTrial &trial : result.trials) {
            std::printf("%10uB  %llu%s\n", trial.objectSizeBytes,
                        static_cast<unsigned long long>(trial.cycles),
                        trial.objectSizeBytes ==
                                result.bestObjectSizeBytes
                            ? "   <-- best"
                            : "");
        }
        return 0;
    }

    tfm::System system(config);
    tfm::CompileResult compiled = options.transform
                                      ? system.compile(source)
                                      : system.parseOnly(source);
    std::size_t safety_diags = 0;
    if (options.checkSafety) {
        // Report even when the pipeline failed: the observer runs
        // before the verifier, so the diagnostics that explain a
        // rejected module are already in the report.
        safety_diags = printSafetyReport(system.safetyReport());
    }
    if (!compiled.ok()) {
        std::fprintf(stderr, "tfmc: %s\n", compiled.error.c_str());
        return 1;
    }
    if (safety_diags > 0)
        return 1;

    if (options.accessReport) {
        if (config.passes.arbiterMode != tfm::ArbiterMode::Off) {
            const tfm::ArbiterReport &arb = system.arbiterReport();
            std::fputs(arb.accessReport.c_str(), stdout);
            for (const tfm::ArbiterDecision &d : arb.decisions) {
                std::printf("arbiter: site %u @%s verdict %s plane %s "
                            "reason %s\n",
                            d.ordinal, d.function.c_str(),
                            tfm::accessVerdictName(d.verdict),
                            d.paged ? "paged" : "guard",
                            d.reason.c_str());
            }
            std::printf("arbiter: %llu paged, %llu guard, %llu pgo "
                        "tie-break(s)\n",
                        static_cast<unsigned long long>(arb.pagedSites),
                        static_cast<unsigned long long>(arb.guardSites),
                        static_cast<unsigned long long>(
                            arb.pgoTieBreaks));
        } else {
            const tfm::AccessPatternAnalysis analysis(
                compiled.program->ir());
            std::fputs(analysis.report().c_str(), stdout);
        }
    }

    if (options.emitIr ||
        (!options.run && !options.checkSafety && !options.accessReport))
        std::fputs(compiled.program->disassemble().c_str(), stdout);

    if (!options.run) {
        if (options.guardReport)
            printGuardReport(system, *compiled.program, nullptr);
        return 0;
    }

    // Drive the interpreter directly (rather than System::run) when the
    // guard report wants the dynamic allocation-site profile joined in.
    tfm::Interpreter interpreter(compiled.program->ir(),
                                 system.runtime());
    interpreter.engine = config.engine;
    if (options.guardReport || !options.profileOut.empty())
        interpreter.enableAllocationProfiling();
    if (options.sanitize == "farmem")
        interpreter.enableSanitizer();
    tfm::RunResult result;
    try {
        result = interpreter.run("main");
    } catch (const tfm::ReplayDivergence &div) {
        std::fprintf(stderr, "tfmc: %s\n",
                     div.what());
        return 3;
    }
    for (const std::int64_t value : result.output)
        std::printf("%lld\n", static_cast<long long>(value));

    // The far-heap checksum is the bit-exactness witness: a replayed
    // run must print the identical value.
    if (recorder) {
        std::printf("far-heap checksum: %016llx\n",
                    static_cast<unsigned long long>(
                        system.runtime().runtime().heapChecksum()));
        if (trace.sink)
            recorder->exportTrace(
                *trace.sink, system.runtime().runtime().obsStream(),
                system.cycles());
    }

    // Persist the event log (stderr, so recorded stdout stays
    // byte-comparable across runs).
    auto saveRecording = [&]() -> bool {
        if (options.record.empty())
            return true;
        std::string error;
        if (!recorder->save(options.record, error)) {
            std::fprintf(stderr, "tfmc: --record=%s: %s\n",
                         options.record.c_str(), error.c_str());
            return false;
        }
        std::fprintf(stderr, "tfmc: recorded %zu events to '%s'\n",
                     recorder->size(), options.record.c_str());
        return true;
    };
    auto finishReplay = [&]() -> bool {
        try {
            recorder->finishReplay();
        } catch (const tfm::ReplayDivergence &div) {
            std::fprintf(stderr, "tfmc: %s\n",
                         div.what());
            return false;
        }
        std::fprintf(stderr,
                     "tfmc: replay verified: %llu events consumed\n",
                     static_cast<unsigned long long>(
                         recorder->consumed()));
        return true;
    };

    if (result.trapped) {
        std::fprintf(stderr, "tfmc: trap: %s\n",
                     result.trapMessage.c_str());
        if (recorder && !recorder->replaying()) {
            if (options.flightRecorder && options.record.empty()) {
                const std::string dump =
                    options.inputPath + ".flight.tfr";
                std::string error;
                if (recorder->save(dump, error))
                    std::fprintf(
                        stderr,
                        "tfmc: flight recorder: dumped last %zu events "
                        "(%llu dropped) to '%s'\n",
                        recorder->size(),
                        static_cast<unsigned long long>(
                            recorder->ringDropped()),
                        dump.c_str());
                else
                    std::fprintf(stderr,
                                 "tfmc: flight recorder: %s\n",
                                 error.c_str());
            } else {
                saveRecording();
            }
        } else if (recorder && recorder->replaying()) {
            if (!finishReplay())
                return 3;
        }
        return 1;
    }
    std::printf("exit value: %lld\n",
                static_cast<long long>(result.returnValue));
    std::printf("simulated time: %.6f s (%llu cycles)\n",
                system.seconds(),
                static_cast<unsigned long long>(system.cycles()));

    if (recorder) {
        if (recorder->replaying()) {
            if (!finishReplay())
                return 3;
        } else if (!saveRecording()) {
            return 1;
        }
    }

    if (options.guardReport) {
        const tfm::AllocSiteProfile profile =
            interpreter.allocationProfile();
        printGuardReport(system, *compiled.program, &profile);
    }

    if (!options.profileOut.empty()) {
        // Multi-epoch accumulation: fold any existing profile into the
        // fresh observation (matching ordinals sum, new sites insert
        // at their ordinal-sorted position).
        tfm::AllocSiteProfile merged = interpreter.allocationProfile();
        std::ifstream existing(options.profileOut);
        if (existing) {
            std::ostringstream old;
            old << existing.rdbuf();
            tfm::AllocSiteProfile previous;
            if (tfm::AllocSiteProfile::parse(old.str(), previous)) {
                previous.merge(merged);
                merged = std::move(previous);
            } else {
                std::fprintf(stderr,
                             "tfmc: --emit-profile=%s: existing file is "
                             "not a profile; overwriting\n",
                             options.profileOut.c_str());
            }
        }
        std::ofstream pout(options.profileOut);
        if (!pout) {
            std::fprintf(stderr, "tfmc: cannot write profile '%s'\n",
                         options.profileOut.c_str());
            return 1;
        }
        pout << merged.serialize();
        std::fprintf(stderr, "tfmc: wrote %zu profiled site(s) to '%s'\n",
                     merged.sites.size(), options.profileOut.c_str());
    }

    if (options.stats) {
        std::printf("\nstatistics:\n");
        const tfm::StatSet stats = system.stats();
        for (const auto &[name, value] : stats.all())
            std::printf("  %-28s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    }
    return 0;
}
