#!/usr/bin/env bash
# One-shot repo health check: configure, build (src/ warnings are
# errors), and run the full test suite. This is the command the CI (and
# any PR author) should run before merging.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "${BUILD_DIR}" -S . -DTFM_WERROR=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# Observability smoke test: run one bench with --trace, check that the
# emitted file is Perfetto-loadable JSON and that tfm-stat reads it.
TRACE_FILE="${BUILD_DIR}/smoke_trace.json"
"${BUILD_DIR}/bench/bench_fig11_prefetch" --trace="${TRACE_FILE}" \
    > /dev/null
if command -v python3 > /dev/null; then
    python3 tools/validate_trace.py "${TRACE_FILE}"
else
    echo "check_build: python3 not found; skipping trace validation"
fi
"${BUILD_DIR}/tools/tfm-stat" "${TRACE_FILE}" > /dev/null
echo "check_build: trace smoke test OK"

# Example programs: every .tir in examples/ must compile verifier-clean
# through the full pipeline (the verifier runs after every pass) and
# execute without trapping, both with and without the guard optimizer,
# under both execution engines (the bytecode default and the
# tree-walking reference engine).
for example in examples/*.tir; do
    for engine in bytecode ref; do
        "${BUILD_DIR}/tools/tfmc" --run --engine="${engine}" \
            "${example}" > /dev/null
        "${BUILD_DIR}/tools/tfmc" --run --engine="${engine}" \
            --no-guard-opt "${example}" > /dev/null
    done
done
echo "check_build: example programs OK (both engines)"

# Lint tier: clang-tidy with the checked-in .clang-tidy configs
# (bugprone-* and performance-* everywhere; src/serve and src/runtime
# additionally enable concurrency-mt-unsafe via InheritParentConfig)
# against the compile database the main configure exports. Findings
# fail the build. Skipped when clang-tidy is not installed.
if command -v clang-tidy > /dev/null; then
    mapfile -t LINT_SOURCES < <(find src -name '*.cc' | sort)
    clang-tidy -p "${BUILD_DIR}" --quiet "${LINT_SOURCES[@]}"
    echo "check_build: clang-tidy lint tier OK"
else
    echo "check_build: clang-tidy not found; skipping lint tier"
fi

# Hybrid data-plane gate (DESIGN.md §4l): every example must compile
# under --hybrid with a clean safety report — including the mixed-plane
# check — at both opt levels, and run bit-identically to the pure
# guard plane: same program output and same far-heap checksum (printed
# by --record); only the cycle count may differ, so only the
# "simulated time" line is stripped before comparing.
HYB_DIR="${BUILD_DIR}/hybrid_gate"
mkdir -p "${HYB_DIR}"
for example in examples/*.tir; do
    base="$(basename "${example}" .tir)"
    for optflag in "" "--no-guard-opt"; do
        tag="${base}${optflag:+_noopt}"
        "${BUILD_DIR}/tools/tfmc" --run --check-safety ${optflag} \
            --record="${HYB_DIR}/${tag}_guard.tfr" "${example}" \
            2> /dev/null \
            | grep -v "^simulated time" > "${HYB_DIR}/${tag}_guard.out"
        "${BUILD_DIR}/tools/tfmc" --run --check-safety --hybrid \
            ${optflag} --record="${HYB_DIR}/${tag}_hybrid.tfr" \
            "${example}" 2> /dev/null \
            | grep -v "^simulated time" > "${HYB_DIR}/${tag}_hybrid.out"
        cmp "${HYB_DIR}/${tag}_guard.out" "${HYB_DIR}/${tag}_hybrid.out"
    done
done
"${BUILD_DIR}/bench/bench_hybrid" --check > /dev/null
echo "check_build: hybrid data-plane gate OK"

# Guard-safety gate: the static checker must stay diagnostic-free on
# every example at both opt levels (tfmc exits non-zero on any
# finding), and the farmem sanitizer must execute every example without
# trapping — the differential corpus behind the mutation harness.
for example in examples/*.tir; do
    "${BUILD_DIR}/tools/tfmc" --check-safety "${example}" > /dev/null
    "${BUILD_DIR}/tools/tfmc" --check-safety --no-guard-opt \
        "${example}" > /dev/null
    "${BUILD_DIR}/tools/tfmc" --run --sanitize=farmem --engine=ref \
        "${example}" > /dev/null
done
echo "check_build: guard-safety checker and farmem sanitizer OK"

# Interpreter dispatch-rate floor: the bytecode engine must stay at
# least 2x the reference engine's instructions/second on the gated
# mixes (arith-loop, pointer-chase). The PR that added the engine
# measured >= 5x; 2x is the don't-regress-silently floor.
"${BUILD_DIR}/bench/bench_interp_dispatch" --repeat=3 \
    --min-speedup=2 > /dev/null
echo "check_build: bytecode engine dispatch-rate floor (2x) OK"

# Replay-determinism gate: recording must be reproducible, replay must
# be bit-exact, and a corrupted log must diverge loudly.
REC_DIR="${BUILD_DIR}/replay_gate"
mkdir -p "${REC_DIR}"
TFMC="${BUILD_DIR}/tools/tfmc"

# (a) Two recordings of the same run are byte-identical past the
# wall-clock stamp (bytes 16-23; everything before it is static magic
# and version, so `cmp -i 24` compares all deterministic bytes).
"${TFMC}" --run --record="${REC_DIR}/a.tfr" examples/sum_loop.tir \
    > "${REC_DIR}/a.out"
"${TFMC}" --run --record="${REC_DIR}/b.tfr" examples/sum_loop.tir \
    > /dev/null
cmp -i 24 "${REC_DIR}/a.tfr" "${REC_DIR}/b.tfr"

# (b) Replay is bit-exact (stdout includes the far-heap checksum, exit
# value, and cycle count) under both interpreter engines: the log
# captures runtime nondeterminism, not engine internals.
for engine in bytecode ref; do
    "${TFMC}" --run --engine="${engine}" --replay="${REC_DIR}/a.tfr" \
        examples/sum_loop.tir > "${REC_DIR}/replay.out"
    cmp "${REC_DIR}/a.out" "${REC_DIR}/replay.out"
done

# (c) Forced mid-loop evacuation: every iteration records an evac
# victim decision, and the replay must re-inject each one.
"${TFMC}" --run --record="${REC_DIR}/evac.tfr" \
    examples/evacuation_stress.tir > "${REC_DIR}/evac.out"
"${TFMC}" --run --replay="${REC_DIR}/evac.tfr" \
    examples/evacuation_stress.tir > "${REC_DIR}/evac_replay.out"
cmp "${REC_DIR}/evac.out" "${REC_DIR}/evac_replay.out"

# (d) Cluster-failure run: shard 1 of 4 (replication 2) dies mid-run
# (the evacuation-stress program runs ~3.5M cycles, so cycle 1M is
# mid-scan); the failover and re-replication replay checksum-identically.
"${TFMC}" --run --shards=4 --replicate=2 --kill-shard=1@1000000 \
    --record="${REC_DIR}/cluster.tfr" examples/evacuation_stress.tir \
    > "${REC_DIR}/cluster.out" 2> /dev/null
"${TFMC}" --run --replay="${REC_DIR}/cluster.tfr" \
    examples/evacuation_stress.tir > "${REC_DIR}/cluster_replay.out" \
    2> /dev/null
cmp "${REC_DIR}/cluster.out" "${REC_DIR}/cluster_replay.out"
"${BUILD_DIR}/tools/tfm-stat" replay "${REC_DIR}/cluster.tfr" \
    | grep -q "cluster.shard-fail"

# (e) A corrupted-but-loadable log must diverge at replay (exit 3,
# naming the first mismatching stream + seq), not replay silently.
if command -v python3 > /dev/null; then
    python3 tools/corrupt_replay_log.py "${REC_DIR}/a.tfr" \
        "${REC_DIR}/bad.tfr"
    if "${TFMC}" --run --replay="${REC_DIR}/bad.tfr" \
        examples/sum_loop.tir > /dev/null 2> "${REC_DIR}/bad.err"; then
        echo "check_build: corrupted log replayed without divergence" >&2
        exit 1
    fi
    grep -q "first mismatch on stream" "${REC_DIR}/bad.err"
fi

# (f) Bench composition: --record and --trace together; the exported
# trace must carry the recorder's schema metadata and record.* counters
# (validate_trace.py checks both), and the recording must replay.
"${BUILD_DIR}/bench/bench_fig11_prefetch" \
    --record="${REC_DIR}/bench.tfr" \
    --trace="${REC_DIR}/bench_trace.json" > "${REC_DIR}/bench.out"
"${BUILD_DIR}/bench/bench_fig11_prefetch" \
    --replay="${REC_DIR}/bench.tfr" > "${REC_DIR}/bench_replay.out"
cmp "${REC_DIR}/bench.out" "${REC_DIR}/bench_replay.out"
if command -v python3 > /dev/null; then
    python3 tools/validate_trace.py "${REC_DIR}/bench_trace.json" \
        | grep -q "recorder counters"
fi

# (g) Recording off must stay free: the guard fast paths never touch
# the recorder (only the cold choke points check the pointer), so the
# guard microbench runs with no recorder installed as always.
"${BUILD_DIR}/bench/bench_micro_guards" > /dev/null
echo "check_build: replay-determinism gate OK"

# Serving smoke gate: a short SLO sweep at low and near-collapse load
# must show monotone tail growth, emit well-formed serve.* epoch
# counters, run byte-identically under a pinned --seed, and
# record→replay bit-exactly. Finally the checked-in serving corpus —
# the first deterministic perf-regression trace — must still replay
# bit-exactly; if an intentional data-plane change diverges it,
# regenerate with the exact flags below (see EXPERIMENTS.md "Serving
# SLO curve").
SERVE_DIR="${BUILD_DIR}/serving_gate"
mkdir -p "${SERVE_DIR}"
SERVE="${BUILD_DIR}/bench/bench_serving"

# (a) p99 monotonicity across low -> near-collapse, with serve.*
# counters structurally checked in the emitted trace.
"${SERVE}" --requests=2000 --seed=7 --loads=0.3,1.25 \
    --trace="${SERVE_DIR}/serve_trace.json" > "${SERVE_DIR}/sweep.out"
if command -v python3 > /dev/null; then
    python3 tools/validate_trace.py "${SERVE_DIR}/serve_trace.json" \
        | grep -q "serving counters"
    python3 - "${SERVE_DIR}/sweep.out" <<'EOF'
import json, sys
for line in open(sys.argv[1]):
    if line.startswith("BENCH_JSON "):
        d = json.loads(line[len("BENCH_JSON "):])
        if d["p99_first"] >= d["p99_last"]:
            sys.exit(f"serving p99 not monotone across load: {d}")
        break
else:
    sys.exit("no BENCH_JSON line in bench_serving output")
EOF
fi
"${BUILD_DIR}/tools/tfm-stat" "${SERVE_DIR}/serve_trace.json" \
    | grep -q "serving"

# (b) Fixed seed => byte-identical output across runs.
"${SERVE}" --requests=1000 --seed=7 --loads=0.5,1.1 \
    > "${SERVE_DIR}/det_a.out"
"${SERVE}" --requests=1000 --seed=7 --loads=0.5,1.1 \
    > "${SERVE_DIR}/det_b.out"
cmp "${SERVE_DIR}/det_a.out" "${SERVE_DIR}/det_b.out"

# (c) Record -> replay bit-exactness: identical stdout including the
# full serve.* StatSet dump (latency histograms, goodput, tails).
"${SERVE}" --requests=1000 --seed=7 --loads=0.5,1.1 --stats \
    --record="${SERVE_DIR}/serve.tfr" > "${SERVE_DIR}/rec.out"
"${SERVE}" --requests=1000 --seed=7 --loads=0.5,1.1 --stats \
    --replay="${SERVE_DIR}/serve.tfr" > "${SERVE_DIR}/rep.out"
cmp "${SERVE_DIR}/rec.out" "${SERVE_DIR}/rep.out"

# (d) The checked-in corpus (recorded with exactly these flags) still
# replays: any divergence is a behavior change in the serving data
# plane and must be deliberate.
"${SERVE}" --requests=400 --loads=1.1 --seed=11 --stats \
    --replay=examples/serving_regression.tfr > /dev/null
echo "check_build: serving SLO gate OK"

# Worker-scaling gate (DESIGN.md §4k): real serving threads over the
# shared concurrent runtime must actually scale. At twice the 1-worker
# capacity, 4 workers must deliver at least 2x the goodput of 1 worker
# (the PR that added the concurrent runtime measured >100x — one
# worker has collapsed at that load — so 2x is the don't-regress
# floor), and the collapse knee must move to a strictly higher offered
# load. The record/replay gates above stay pinned to the deterministic
# single-thread mode; --concurrent composes with neither --record nor
# --replay by construction.
"${SERVE}" --concurrent --workers=1,2,4 --cal-load=2 --requests=1500 \
    --loads=0.5,1.5,3.0,6.0 > "${SERVE_DIR}/scaling.out"
if command -v python3 > /dev/null; then
    python3 - "${SERVE_DIR}/scaling.out" <<'EOF'
import json, math, sys
for line in open(sys.argv[1]):
    if line.startswith("BENCH_JSON "):
        d = json.loads(line[len("BENCH_JSON "):])
        g1, g4 = d["goodput_cal_w1"], d["goodput_cal_w4"]
        if g4 < 2.0 * g1:
            sys.exit(f"worker scaling below 2x: w1={g1} w4={g4}")
        # knee_load 0 means "not reached in this sweep": later than
        # every swept load, which also satisfies "moved right".
        k1 = d["knee_w1"] or math.inf
        k4 = d["knee_w4"] or math.inf
        if not k4 > k1:
            sys.exit(f"collapse knee did not move right: "
                     f"w1={k1} w4={k4}")
        break
else:
    sys.exit("no BENCH_JSON line in bench_serving scaling output")
EOF
else
    grep -q "scaling w4/w1" "${SERVE_DIR}/scaling.out"
fi
echo "check_build: worker-scaling gate OK"

# Sanitizer pass: rebuild in a separate directory with
# -fsanitize=${TFM_SANITIZE} (default address,undefined) and run the
# tier-1 suite under it. TFM_SANITIZE=off skips the pass.
TFM_SANITIZE="${TFM_SANITIZE:-address,undefined}"
if [ "${TFM_SANITIZE}" != "off" ]; then
    SAN_BUILD_DIR="${SAN_BUILD_DIR:-${BUILD_DIR}-asan}"
    cmake -B "${SAN_BUILD_DIR}" -S . -DTFM_SANITIZE="${TFM_SANITIZE}"
    cmake --build "${SAN_BUILD_DIR}" -j "$(nproc)"
    ctest --test-dir "${SAN_BUILD_DIR}" --output-on-failure \
        -j "$(nproc)"
    echo "check_build: sanitizer (${TFM_SANITIZE}) suite OK"
else
    echo "check_build: sanitizer pass skipped (TFM_SANITIZE=off)"
fi

# ThreadSanitizer pass: rebuild with -DTFM_TSAN=ON (thread does not
# compose with address/undefined, hence its own tree) and run the
# concurrent-runtime suite — the MT pointer-chase stress with eviction
# churn — plus a concurrent serving smoke. TFM_TSAN=off skips.
TFM_TSAN="${TFM_TSAN:-on}"
if [ "${TFM_TSAN}" != "off" ]; then
    TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-${BUILD_DIR}-tsan}"
    cmake -B "${TSAN_BUILD_DIR}" -S . -DTFM_TSAN=ON
    cmake --build "${TSAN_BUILD_DIR}" -j "$(nproc)" \
        --target test_concurrency bench_serving
    "${TSAN_BUILD_DIR}/tests/test_concurrency" > /dev/null
    "${TSAN_BUILD_DIR}/bench/bench_serving" --concurrent --workers=4 \
        --requests=400 --loads=0.5,2.0 > /dev/null
    echo "check_build: thread-sanitizer concurrency suite OK"
else
    echo "check_build: thread-sanitizer pass skipped (TFM_TSAN=off)"
fi

echo "check_build: OK"
