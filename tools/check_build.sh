#!/usr/bin/env bash
# One-shot repo health check: configure, build (src/ warnings are
# errors), and run the full test suite. This is the command the CI (and
# any PR author) should run before merging.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "${BUILD_DIR}" -S . -DTFM_WERROR=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# Observability smoke test: run one bench with --trace, check that the
# emitted file is Perfetto-loadable JSON and that tfm-stat reads it.
TRACE_FILE="${BUILD_DIR}/smoke_trace.json"
"${BUILD_DIR}/bench/bench_fig11_prefetch" --trace="${TRACE_FILE}" \
    > /dev/null
if command -v python3 > /dev/null; then
    python3 tools/validate_trace.py "${TRACE_FILE}"
else
    echo "check_build: python3 not found; skipping trace validation"
fi
"${BUILD_DIR}/tools/tfm-stat" "${TRACE_FILE}" > /dev/null
echo "check_build: trace smoke test OK"

echo "check_build: OK"
