#!/usr/bin/env bash
# One-shot repo health check: configure, build (src/ warnings are
# errors), and run the full test suite. This is the command the CI (and
# any PR author) should run before merging.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "${BUILD_DIR}" -S . -DTFM_WERROR=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "check_build: OK"
