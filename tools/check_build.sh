#!/usr/bin/env bash
# One-shot repo health check: configure, build (src/ warnings are
# errors), and run the full test suite. This is the command the CI (and
# any PR author) should run before merging.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "${BUILD_DIR}" -S . -DTFM_WERROR=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# Observability smoke test: run one bench with --trace, check that the
# emitted file is Perfetto-loadable JSON and that tfm-stat reads it.
TRACE_FILE="${BUILD_DIR}/smoke_trace.json"
"${BUILD_DIR}/bench/bench_fig11_prefetch" --trace="${TRACE_FILE}" \
    > /dev/null
if command -v python3 > /dev/null; then
    python3 tools/validate_trace.py "${TRACE_FILE}"
else
    echo "check_build: python3 not found; skipping trace validation"
fi
"${BUILD_DIR}/tools/tfm-stat" "${TRACE_FILE}" > /dev/null
echo "check_build: trace smoke test OK"

# Example programs: every .tir in examples/ must compile verifier-clean
# through the full pipeline (the verifier runs after every pass) and
# execute without trapping, both with and without the guard optimizer,
# under both execution engines (the bytecode default and the
# tree-walking reference engine).
for example in examples/*.tir; do
    for engine in bytecode ref; do
        "${BUILD_DIR}/tools/tfmc" --run --engine="${engine}" \
            "${example}" > /dev/null
        "${BUILD_DIR}/tools/tfmc" --run --engine="${engine}" \
            --no-guard-opt "${example}" > /dev/null
    done
done
echo "check_build: example programs OK (both engines)"

# Guard-safety gate: the static checker must stay diagnostic-free on
# every example at both opt levels (tfmc exits non-zero on any
# finding), and the farmem sanitizer must execute every example without
# trapping — the differential corpus behind the mutation harness.
for example in examples/*.tir; do
    "${BUILD_DIR}/tools/tfmc" --check-safety "${example}" > /dev/null
    "${BUILD_DIR}/tools/tfmc" --check-safety --no-guard-opt \
        "${example}" > /dev/null
    "${BUILD_DIR}/tools/tfmc" --run --sanitize=farmem --engine=ref \
        "${example}" > /dev/null
done
echo "check_build: guard-safety checker and farmem sanitizer OK"

# Interpreter dispatch-rate floor: the bytecode engine must stay at
# least 2x the reference engine's instructions/second on the gated
# mixes (arith-loop, pointer-chase). The PR that added the engine
# measured >= 5x; 2x is the don't-regress-silently floor.
"${BUILD_DIR}/bench/bench_interp_dispatch" --repeat=3 \
    --min-speedup=2 > /dev/null
echo "check_build: bytecode engine dispatch-rate floor (2x) OK"

# Sanitizer pass: rebuild in a separate directory with
# -fsanitize=${TFM_SANITIZE} (default address,undefined) and run the
# tier-1 suite under it. TFM_SANITIZE=off skips the pass.
TFM_SANITIZE="${TFM_SANITIZE:-address,undefined}"
if [ "${TFM_SANITIZE}" != "off" ]; then
    SAN_BUILD_DIR="${SAN_BUILD_DIR:-${BUILD_DIR}-asan}"
    cmake -B "${SAN_BUILD_DIR}" -S . -DTFM_SANITIZE="${TFM_SANITIZE}"
    cmake --build "${SAN_BUILD_DIR}" -j "$(nproc)"
    ctest --test-dir "${SAN_BUILD_DIR}" --output-on-failure \
        -j "$(nproc)"
    echo "check_build: sanitizer (${TFM_SANITIZE}) suite OK"
else
    echo "check_build: sanitizer pass skipped (TFM_SANITIZE=off)"
fi

echo "check_build: OK"
