/**
 * @file
 * tfm-stat: percentile/summary reports from a trace file.
 *
 * Loads a Chrome trace_event JSON file emitted by the observability
 * layer (any bench run with --trace=<file>) and prints, per event name:
 * span duration percentiles (p50/p90/p99/max), instant-event counts,
 * and counter-value ranges. The span table covers both completed 'X'
 * events and matched 'B'/'E' pairs, so "net.fetch" rows report the
 * fetch-latency distribution directly.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hh"
#include "obs/histogram.hh"
#include "obs/trace_reader.hh"

namespace
{

using tfm::Histogram;
using tfm::ParsedEvent;
using tfm::ParsedTrace;

/** Widest name in a map, for column alignment. */
template <typename Map>
std::size_t
nameWidth(const Map &map, std::size_t floor_width)
{
    std::size_t width = floor_width;
    for (const auto &[name, value] : map)
        width = std::max(width, name.size());
    return width;
}

void
printSpanTable(const std::map<std::string, Histogram> &spans)
{
    if (spans.empty())
        return;
    const int width = static_cast<int>(nameWidth(spans, 4));
    std::printf("%-*s %10s %10s %10s %10s %10s %12s\n", width, "span",
                "count", "p50", "p90", "p99", "max", "mean");
    for (const auto &[name, h] : spans) {
        std::printf("%-*s %10llu %10llu %10llu %10llu %10llu %12.1f\n",
                    width, name.c_str(),
                    static_cast<unsigned long long>(h.count()),
                    static_cast<unsigned long long>(h.percentile(50)),
                    static_cast<unsigned long long>(h.percentile(90)),
                    static_cast<unsigned long long>(h.percentile(99)),
                    static_cast<unsigned long long>(h.max()), h.mean());
    }
}

void
printInstantTable(const std::map<std::string, std::uint64_t> &instants)
{
    if (instants.empty())
        return;
    const int width = static_cast<int>(nameWidth(instants, 7));
    std::printf("\n%-*s %10s\n", width, "instant", "count");
    for (const auto &[name, count] : instants) {
        std::printf("%-*s %10llu\n", width, name.c_str(),
                    static_cast<unsigned long long>(count));
    }
}

/**
 * Guard-safety checker counters ("safety.<pass>", one sample per
 * checked pipeline stage): diagnostics per pass, kept out of the
 * generic counter table so a dirty compile is obvious at a glance.
 */
void
printSafetyTable(const std::map<std::string, Histogram> &safety)
{
    if (safety.empty())
        return;
    const int width = static_cast<int>(nameWidth(safety, 6));
    std::uint64_t total = 0;
    std::printf("\n%-*s %10s %12s\n", width, "safety", "checks",
                "diagnostics");
    for (const auto &[name, h] : safety) {
        std::printf("%-*s %10llu %12llu\n", width, name.c_str(),
                    static_cast<unsigned long long>(h.count()),
                    static_cast<unsigned long long>(h.sum()));
        total += h.sum();
    }
    std::printf("%-*s %10s %12llu%s\n", width, "total", "",
                static_cast<unsigned long long>(total),
                total ? "   <-- UNSAFE" : "");
}

/**
 * Interpreter engine counters ("interp.<metric>", one sample per
 * Interpreter::run): dispatch rate (instructions per wall second) and
 * guard-fast-path hits, kept out of the generic counter table so an
 * engine regression is obvious at a glance.
 */
void
printInterpTable(const std::map<std::string, Histogram> &interp)
{
    if (interp.empty())
        return;
    const int width = static_cast<int>(nameWidth(interp, 6));
    std::printf("\n%-*s %10s %12s %12s %14s\n", width, "interp", "runs",
                "min", "max", "mean");
    for (const auto &[name, h] : interp) {
        std::printf("%-*s %10llu %12llu %12llu %14.1f\n", width,
                    name.c_str(),
                    static_cast<unsigned long long>(h.count()),
                    static_cast<unsigned long long>(h.min()),
                    static_cast<unsigned long long>(h.max()), h.mean());
    }
}

/**
 * Serving-subsystem counters ("serve.<metric>", one epoch sample per
 * scheduler tick): queue depth and generated/completed request
 * progress, kept out of the generic counter table so load-induced
 * queue growth in a serving run is obvious at a glance. Latency
 * percentiles live in the bench's serve.* StatSet; the trace carries
 * the time-series view.
 */
void
printServingTable(const std::map<std::string, Histogram> &serving)
{
    if (serving.empty())
        return;
    const int width = static_cast<int>(nameWidth(serving, 7));
    std::printf("\n%-*s %10s %10s %10s %12s\n", width, "serving",
                "samples", "min", "max", "mean");
    for (const auto &[name, h] : serving) {
        std::printf("%-*s %10llu %10llu %10llu %12.1f\n", width,
                    name.c_str(),
                    static_cast<unsigned long long>(h.count()),
                    static_cast<unsigned long long>(h.min()),
                    static_cast<unsigned long long>(h.max()), h.mean());
    }
}

/**
 * Per-worker serving breakdown ("serve.w<i>.<metric>", one final
 * sample per worker thread of a concurrent serving run): completions,
 * busy share, and guard fast/slow attribution per thread, so a load
 * imbalance or one thread stuck on the slow path is obvious at a
 * glance. Consumes the matching rows from the serving-counter map.
 */
void
printWorkerTable(std::map<std::string, Histogram> &serving)
{
    struct Row
    {
        std::uint64_t completions = 0, busy = 0, end = 0;
        std::uint64_t guardFast = 0, guardSlow = 0;
    };
    std::map<unsigned, Row> rows;
    for (auto it = serving.begin(); it != serving.end();) {
        const std::string &name = it->first;
        std::size_t dot;
        if (name.size() < 3 || name[0] != 'w' ||
            (dot = name.find('.')) == std::string::npos ||
            name.find_first_not_of("0123456789", 1) != dot) {
            ++it;
            continue;
        }
        const unsigned w = std::stoul(name.substr(1, dot - 1));
        const std::string metric = name.substr(dot + 1);
        const std::uint64_t value = it->second.max();
        if (metric == "completions")
            rows[w].completions = value;
        else if (metric == "busy_cycles")
            rows[w].busy = value;
        else if (metric == "end_cycle")
            rows[w].end = value;
        else if (metric == "guard_fast")
            rows[w].guardFast = value;
        else if (metric == "guard_slow")
            rows[w].guardSlow = value;
        it = serving.erase(it);
    }
    if (rows.empty())
        return;
    std::printf("\n%-8s %12s %14s %6s %12s %12s\n", "worker",
                "completions", "busy_cycles", "busy%", "guard_fast",
                "guard_slow");
    for (const auto &[w, r] : rows) {
        std::printf("w%-7u %12llu %14llu %5.1f%% %12llu %12llu\n", w,
                    static_cast<unsigned long long>(r.completions),
                    static_cast<unsigned long long>(r.busy),
                    r.end ? 100.0 * static_cast<double>(r.busy) /
                                static_cast<double>(r.end)
                          : 0.0,
                    static_cast<unsigned long long>(r.guardFast),
                    static_cast<unsigned long long>(r.guardSlow));
    }
}

void
printCounterTable(const std::map<std::string, Histogram> &counters)
{
    if (counters.empty())
        return;
    const int width = static_cast<int>(nameWidth(counters, 7));
    std::printf("\n%-*s %10s %10s %10s %12s\n", width, "counter",
                "samples", "min", "max", "mean");
    for (const auto &[name, h] : counters) {
        std::printf("%-*s %10llu %10llu %10llu %12.1f\n", width,
                    name.c_str(),
                    static_cast<unsigned long long>(h.count()),
                    static_cast<unsigned long long>(h.min()),
                    static_cast<unsigned long long>(h.max()), h.mean());
    }
}

/**
 * Hybrid data-plane counters ("paged.<metric>" residency/fault
 * counters and "arbiter.<metric>" compile-time routing counts), kept
 * out of the generic counter table so a hybrid run's plane behaviour
 * is obvious at a glance.
 */
void
printHybridTable(const std::map<std::string, Histogram> &paged,
                 const std::map<std::string, Histogram> &arbiter)
{
    if (paged.empty() && arbiter.empty())
        return;
    std::map<std::string, Histogram> merged;
    for (const auto &[name, h] : arbiter)
        merged["arbiter." + name] = h;
    for (const auto &[name, h] : paged)
        merged["paged." + name] = h;
    const int width = static_cast<int>(nameWidth(merged, 6));
    std::printf("\n%-*s %10s %10s %10s\n", width, "hybrid", "samples",
                "first", "last");
    for (const auto &[name, h] : merged) {
        std::printf("%-*s %10llu %10llu %10llu\n", width, name.c_str(),
                    static_cast<unsigned long long>(h.count()),
                    static_cast<unsigned long long>(h.min()),
                    static_cast<unsigned long long>(h.max()));
    }
}

/**
 * `tfm-stat access <report.txt>`: per-allocation-site table from a
 * `tfmc --print-access-report` dump — static verdict, stride/chase
 * evidence, and the plane the arbiter chose.
 */
int
printAccessTable(const char *path)
{
    std::FILE *in = std::fopen(path, "r");
    if (!in) {
        std::fprintf(stderr, "tfm-stat: cannot open '%s'\n", path);
        return 1;
    }
    struct SiteRow
    {
        std::string function, verdict, chaseScore;
        std::string plane = "-", reason = "-";
        std::vector<long long> strideBytes;
        unsigned chases = 0;
        int escapes = 0, aliases = 0;
    };
    std::map<unsigned, SiteRow> rows;
    bool sawHeader = false;
    char line[512];
    unsigned current = ~0u;
    while (std::fgets(line, sizeof line, in)) {
        unsigned ord;
        char func[128], verdict[32], callee[64], score[32];
        char plane[16], reason[64];
        long long bytes;
        int escapes, aliases;
        if (std::sscanf(line, "access-report v%u", &ord) == 1) {
            sawHeader = true;
        } else if (std::sscanf(line,
                               "site %u @%127s callee %63s line %*d "
                               "verdict %31s dense %*u sparse %*u "
                               "chase-score %31s escapes %d aliases %d",
                               &ord, func, callee, verdict, score,
                               &escapes, &aliases) == 7) {
            SiteRow &row = rows[ord];
            row.function = func;
            row.verdict = verdict;
            row.chaseScore = score;
            row.escapes = escapes;
            row.aliases = aliases;
            current = ord;
        } else if (std::sscanf(line, "  stride @%*s bytes %lld",
                               &bytes) == 1) {
            if (current != ~0u)
                rows[current].strideBytes.push_back(bytes);
        } else if (std::sscanf(line, "  chase @%127s", func) == 1) {
            if (current != ~0u)
                rows[current].chases++;
        } else if (std::sscanf(line,
                               "arbiter: site %u @%*s verdict %*s "
                               "plane %15s reason %63s",
                               &ord, plane, reason) == 3) {
            rows[ord].plane = plane;
            rows[ord].reason = reason;
        }
    }
    std::fclose(in);
    if (!sawHeader && rows.empty()) {
        std::fprintf(stderr,
                     "tfm-stat: '%s' is not an access report (expected "
                     "tfmc --print-access-report output)\n",
                     path);
        return 1;
    }

    std::size_t width = 8;
    for (const auto &[ord, row] : rows)
        width = std::max(width, row.function.size());
    std::printf("%4s %-*s %-8s %-22s %6s %11s %3s %3s %-6s %s\n",
                "site", static_cast<int>(width), "function", "verdict",
                "strides(bytes)", "chase", "chase-score", "esc", "ali",
                "plane", "reason");
    for (const auto &[ord, row] : rows) {
        std::string strides;
        for (std::size_t i = 0;
             i < row.strideBytes.size() && i < 3; i++) {
            if (!strides.empty())
                strides += ",";
            strides += std::to_string(row.strideBytes[i]);
        }
        if (row.strideBytes.size() > 3)
            strides += ",...";
        if (strides.empty())
            strides = "-";
        std::printf("%4u %-*s %-8s %-22s %6u %11s %3d %3d %-6s %s\n",
                    ord, static_cast<int>(width), row.function.c_str(),
                    row.verdict.c_str(), strides.c_str(), row.chases,
                    row.chaseScore.c_str(), row.escapes, row.aliases,
                    row.plane.c_str(), row.reason.c_str());
    }
    return 0;
}

/**
 * `tfm-stat replay <file.tfr>`: summarize a flight-recorder event log —
 * header metadata plus a per-stream table (event count, sequence and
 * cycle ranges, per-kind breakdown).
 */
int
printReplayLog(const char *path)
{
    tfm::FrLog log;
    std::string error;
    if (!tfm::loadFrLog(path, log, error)) {
        std::fprintf(stderr, "tfm-stat: %s: %s\n", path, error.c_str());
        return 1;
    }
    std::printf("%s: schema v%u, %zu events%s\n", path, log.version,
                log.events.size(),
                (log.flags & 1u) ? " (flight-recorder ring dump)" : "");
    if (log.ringCapacity)
        std::printf("ring capacity: %llu events\n",
                    static_cast<unsigned long long>(log.ringCapacity));
    std::printf("recorded at: %llu (unix seconds)\n\n",
                static_cast<unsigned long long>(log.wallTime));

    struct StreamSummary
    {
        std::uint64_t count = 0;
        std::uint32_t seqLo = 0, seqHi = 0;
        std::uint64_t cycleLo = 0, cycleHi = 0;
        std::map<std::uint16_t, std::uint64_t> kinds;
    };
    std::map<std::uint16_t, StreamSummary> streams;
    for (const tfm::FrEvent &e : log.events) {
        StreamSummary &s = streams[e.stream];
        if (s.count == 0) {
            s.seqLo = s.seqHi = e.seq;
            s.cycleLo = s.cycleHi = e.cycle;
        } else {
            s.seqLo = std::min(s.seqLo, e.seq);
            s.seqHi = std::max(s.seqHi, e.seq);
            s.cycleLo = std::min(s.cycleLo, e.cycle);
            s.cycleHi = std::max(s.cycleHi, e.cycle);
        }
        s.count++;
        s.kinds[e.kind]++;
    }

    std::size_t width = 6;
    for (const auto &[id, s] : streams)
        width = std::max(width, tfm::frStreamName(id).size());
    std::printf("%-*s %8s %15s %23s  %s\n", static_cast<int>(width),
                "stream", "events", "seq", "cycles", "kinds");
    for (const auto &[id, s] : streams) {
        std::string kinds;
        for (const auto &[kind, count] : s.kinds) {
            if (!kinds.empty())
                kinds += ", ";
            kinds += tfm::frKindName(kind);
            kinds += "×" + std::to_string(count);
        }
        char seq[32], cycles[48];
        std::snprintf(seq, sizeof seq, "%u..%u", s.seqLo, s.seqHi);
        std::snprintf(cycles, sizeof cycles, "%llu..%llu",
                      static_cast<unsigned long long>(s.cycleLo),
                      static_cast<unsigned long long>(s.cycleHi));
        std::printf("%-*s %8llu %15s %23s  %s\n",
                    static_cast<int>(width),
                    tfm::frStreamName(id).c_str(),
                    static_cast<unsigned long long>(s.count), seq,
                    cycles, kinds.c_str());
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::string(argv[1]) == "replay")
        return printReplayLog(argv[2]);
    if (argc == 3 && std::string(argv[1]) == "access")
        return printAccessTable(argv[2]);
    if (argc != 2) {
        std::fprintf(stderr, "usage: tfm-stat <trace.json>\n"
                             "       tfm-stat replay <file.tfr>\n"
                             "       tfm-stat access <report.txt>\n");
        return 2;
    }
    ParsedTrace trace;
    std::string error;
    if (!tfm::loadTraceFile(argv[1], trace, error)) {
        std::fprintf(stderr, "tfm-stat: %s: %s\n", argv[1],
                     error.c_str());
        return 1;
    }

    // Spans are histogrammed per (pid, tid, name) track first, then
    // folded into the printed cluster-wide table with
    // Histogram::merge — p50/p99 therefore cover every stream's
    // samples at full bucket accuracy instead of averaging
    // per-stream percentiles.
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::string>,
             Histogram>
        spansByTrack;
    std::map<std::string, Histogram> spans;
    std::map<std::string, std::uint64_t> instants;
    std::map<std::string, Histogram> counters;
    std::map<std::string, Histogram> safetyCounters;
    std::map<std::string, Histogram> interpCounters;
    std::map<std::string, Histogram> servingCounters;
    std::map<std::string, Histogram> pagedCounters;
    std::map<std::string, Histogram> arbiterCounters;
    // Open 'B' spans per (pid, tid): Chrome semantics say 'E' closes
    // the innermost open span on its track.
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             std::vector<std::pair<std::string, std::uint64_t>>>
        open;

    std::uint64_t unmatched = 0;
    for (const ParsedEvent &e : trace.events) {
        switch (e.ph) {
        case 'X':
            spansByTrack[{e.pid, e.tid, e.name}].record(e.dur);
            break;
        case 'B':
            open[{e.pid, e.tid}].emplace_back(e.name, e.ts);
            break;
        case 'E': {
            auto &stack = open[{e.pid, e.tid}];
            if (stack.empty()) {
                unmatched++;
                break;
            }
            const auto [name, begin_ts] = stack.back();
            stack.pop_back();
            spansByTrack[{e.pid, e.tid, name}].record(e.ts - begin_ts);
            break;
        }
        case 'i':
            instants[e.name]++;
            break;
        case 'C': {
            const auto it = e.args.find("value");
            if (it == e.args.end())
                break;
            if (e.name.rfind("safety.", 0) == 0) {
                safetyCounters[e.name.substr(7)].record(it->second);
                break;
            }
            if (e.name.rfind("interp.", 0) == 0) {
                interpCounters[e.name.substr(7)].record(it->second);
                break;
            }
            if (e.name.rfind("serve.", 0) == 0) {
                servingCounters[e.name.substr(6)].record(it->second);
                break;
            }
            if (e.name.rfind("paged.", 0) == 0) {
                pagedCounters[e.name.substr(6)].record(it->second);
                break;
            }
            if (e.name.rfind("arbiter.", 0) == 0) {
                arbiterCounters[e.name.substr(8)].record(it->second);
                break;
            }
            counters[e.name].record(it->second);
            break;
        }
        default:
            break; // metadata and anything unrecognized
        }
    }
    for (const auto &[track, stack] : open)
        unmatched += stack.size();

    std::map<std::string, std::uint64_t> spanStreams;
    for (const auto &[key, h] : spansByTrack) {
        spans[std::get<2>(key)].merge(h);
        spanStreams[std::get<2>(key)]++;
    }

    std::printf("%s: %zu events", argv[1], trace.events.size());
    if (trace.dropped)
        std::printf(" (%llu dropped at capture)",
                    static_cast<unsigned long long>(trace.dropped));
    if (unmatched)
        std::printf(" (%llu unmatched begin/end)",
                    static_cast<unsigned long long>(unmatched));
    std::printf("\n\n");

    printSpanTable(spans);

    // Cluster runs put each shard's link on its own track; break the
    // merged rows back out so per-shard tails sit next to the
    // cluster-wide ones.
    std::map<std::string, Histogram> perStream;
    for (const auto &[key, h] : spansByTrack) {
        const std::string &name = std::get<2>(key);
        if (spanStreams[name] < 2)
            continue;
        perStream[name + "#" + std::to_string(std::get<0>(key)) + "." +
                  std::to_string(std::get<1>(key))]
            .merge(h);
    }
    if (!perStream.empty()) {
        std::printf("\nper-stream (merged above with "
                    "Histogram::merge):\n");
        printSpanTable(perStream);
    }

    printInstantTable(instants);
    printCounterTable(counters);
    printWorkerTable(servingCounters);
    printServingTable(servingCounters);
    printInterpTable(interpCounters);
    printHybridTable(pagedCounters, arbiterCounters);
    printSafetyTable(safetyCounters);
    return 0;
}
