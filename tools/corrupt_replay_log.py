#!/usr/bin/env python3
"""Targeted corruption of flight-recorder event logs, for testing.

The interesting failure mode is not a torn file (the loader's checksum
catches that) but a log that *loads cleanly* yet describes a different
run — that is what the replay divergence checker exists for. This tool
produces both:

  corrupt_replay_log.py in.tfr out.tfr               # patched: flip one
      arg byte in an event, then recompute the FNV-1a trailer so the
      load succeeds and the corruption is only caught at replay time
  corrupt_replay_log.py --raw in.tfr out.tfr         # flip without
      re-patching: the loader must reject with a checksum mismatch
  corrupt_replay_log.py --truncate in.tfr out.tfr    # cut mid-event:
      the loader must reject, naming the last valid (stream, seq)

  --event=N   which event to corrupt (default: the last one)
  --byte=K    which byte of the event's 32-byte arg block (default 0)

File layout (see src/obs/flight_recorder.cc): 40-byte header, 48-byte
events, 16-byte trailer (8-byte FNV-1a over the event bytes + magic).
"""

import struct
import sys

HEADER_BYTES = 40
EVENT_BYTES = 48
TRAILER_BYTES = 16
MAGIC = b"TFMFREC\0"
END_MAGIC = b"TFMFREND"

FNV_OFFSET = 1469598103934665603
FNV_PRIME = 1099511628211
MASK64 = (1 << 64) - 1


def fnv1a(data):
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def fail(msg):
    print(f"corrupt_replay_log: {msg}", file=sys.stderr)
    sys.exit(2)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    opts = [a for a in sys.argv[1:] if a.startswith("--")]
    if len(args) != 2:
        fail("usage: corrupt_replay_log.py [--raw|--truncate] "
             "[--event=N] [--byte=K] <in.tfr> <out.tfr>")
    raw = "--raw" in opts
    truncate = "--truncate" in opts
    event_idx = None
    byte_idx = 0
    for o in opts:
        if o.startswith("--event="):
            event_idx = int(o[8:])
        elif o.startswith("--byte="):
            byte_idx = int(o[7:])
        elif o not in ("--raw", "--truncate"):
            fail(f"unknown option {o}")
    if not 0 <= byte_idx < 32:
        fail("--byte must be in [0, 32): only arg bytes are corrupted")

    with open(args[0], "rb") as f:
        data = bytearray(f.read())
    if len(data) < HEADER_BYTES + TRAILER_BYTES or data[:8] != MAGIC:
        fail(f"{args[0]}: not a flight-recorder log")
    body = len(data) - HEADER_BYTES - TRAILER_BYTES
    if body % EVENT_BYTES != 0:
        fail(f"{args[0]}: already truncated")
    count = body // EVENT_BYTES
    if count == 0:
        fail(f"{args[0]}: no events to corrupt")

    if truncate:
        # Cut mid-way through the last event.
        out = data[: HEADER_BYTES + (count - 1) * EVENT_BYTES +
                   EVENT_BYTES // 2]
        with open(args[1], "wb") as f:
            f.write(out)
        print(f"truncated to {len(out)} bytes "
              f"({count - 1} whole events survive)")
        return

    if event_idx is None:
        event_idx = count - 1
    if not 0 <= event_idx < count:
        fail(f"--event={event_idx} out of range (log has {count})")

    # Offset 16 inside the event skips stream/kind/seq/cycle: flipping
    # an arg byte leaves the stream structure intact so the loader's
    # sequence checks still pass.
    at = HEADER_BYTES + event_idx * EVENT_BYTES + 16 + byte_idx
    data[at] ^= 0xFF
    stream, kind, seq = struct.unpack_from(
        "<HHI", data, HEADER_BYTES + event_idx * EVENT_BYTES)
    what = (f"event {event_idx} (stream {stream} kind {kind} "
            f"seq {seq}) arg byte {byte_idx}")

    if raw:
        print(f"flipped {what}; trailer left stale")
    else:
        checksum = fnv1a(
            data[HEADER_BYTES:HEADER_BYTES + count * EVENT_BYTES])
        struct.pack_into("<Q", data, len(data) - TRAILER_BYTES, checksum)
        assert data[-8:] == END_MAGIC
        print(f"flipped {what}; trailer re-patched")

    with open(args[1], "wb") as f:
        f.write(data)


if __name__ == "__main__":
    main()
