/**
 * @file
 * Taxi analytics on four memory systems: the paper's headline
 * application comparison (Fig. 14) as a runnable example. One dataframe
 * workload, four backends — local-only, TrackFM, Fastswap, AIFM — with
 * a quarter of the working set allowed in local memory.
 */

#include <cstdio>

#include "workloads/backend_config.hh"
#include "workloads/dataframe.hh"

using namespace tfm;

int
main()
{
    const CostParams costs;
    DataframeParams params;
    params.numRows = 100000;

    std::printf("NYC-taxi-style analytics, %llu rows, local memory = "
                "25%% of the working set\n\n",
                static_cast<unsigned long long>(params.numRows));
    std::printf("%-10s %14s %12s %16s %14s\n", "system", "sim time ms",
                "slowdown", "remote events", "GB fetched");

    std::uint64_t local_cycles = 0;
    for (const SystemKind kind : {SystemKind::Local, SystemKind::TrackFm,
                                  SystemKind::Fastswap, SystemKind::Aifm}) {
        BackendConfig cfg;
        cfg.kind = kind;
        cfg.farHeapBytes = 32 << 20;
        cfg.objectSizeBytes = 4096;
        cfg.localMemBytes = (kind == SystemKind::Local)
                                ? cfg.farHeapBytes
                                : params.numRows * 44 / 4;
        auto backend = makeBackend(cfg, costs);

        DataframeWorkload workload(*backend, params);
        const DataframeResult result = workload.run();

        // Every system must compute identical answers.
        const DataframeAnswers &expected = workload.expected();
        if (result.answers.groupAggregate != expected.groupAggregate ||
            result.answers.longTrips != expected.longTrips) {
            std::printf("%-10s computed WRONG answers!\n",
                        systemName(kind));
            return 1;
        }

        if (kind == SystemKind::Local)
            local_cycles = result.delta.cycles;
        std::printf("%-10s %14.2f %11.2fx %16llu %14.4f\n",
                    systemName(kind),
                    static_cast<double>(result.delta.cycles) /
                        (costs.cpuGhz * 1e6),
                    static_cast<double>(result.delta.cycles) /
                        static_cast<double>(local_cycles),
                    static_cast<unsigned long long>(
                        result.delta.farEvents),
                    static_cast<double>(result.delta.bytesFetched) /
                        1e9);
    }

    std::printf("\nAll four systems computed identical query answers; "
                "only the memory system differed.\n");
    std::printf("TrackFM got its result from the *unmodified* program; "
                "AIFM's number is what a manual port buys.\n");
    return 0;
}
