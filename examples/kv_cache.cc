/**
 * @file
 * A far-memory key-value cache: memcached-style store under memory
 * pressure, showing why the compiler's object-size choice matters for
 * fine-grained workloads (the Fig. 9 / Fig. 16 intuition), plus basic
 * set/get usage of the workload as a library.
 */

#include <cstdio>
#include <cstring>

#include "workloads/backend_config.hh"
#include "workloads/memcached.hh"

using namespace tfm;

int
main()
{
    const CostParams costs;

    // Part 1: the object-size sweep. Tiny USR-style values mean small
    // objects avoid fetching kilobytes to read two bytes.
    std::printf("Part 1: object size vs throughput "
                "(zipf 1.02 gets, local = 1/8 of the store)\n\n");
    std::printf("%10s %14s %16s\n", "obj size", "KOps/s",
                "bytes fetched/get");
    for (const std::uint32_t objsize : {4096u, 1024u, 256u, 64u}) {
        MemcachedParams params;
        params.numKeys = 50000;
        params.numGets = 100000;

        BackendConfig cfg;
        cfg.kind = SystemKind::TrackFm;
        cfg.farHeapBytes = 64 << 20;
        cfg.objectSizeBytes = objsize;
        cfg.localMemBytes = params.numKeys * 96 / 8;
        auto backend = makeBackend(cfg, costs);

        MemcachedWorkload store(*backend, params);
        store.run(); // warm
        const MemcachedResult result = store.run();
        std::printf("%9uB %14.1f %16.1f\n", objsize,
                    result.throughputKopsPerSec(costs.cpuGhz),
                    static_cast<double>(result.delta.bytesFetched) /
                        static_cast<double>(result.hits));
    }

    // Part 2: the store as a library — explicit set/get round trips
    // through far memory.
    std::printf("\nPart 2: set/get through far memory\n\n");
    MemcachedParams params;
    params.numKeys = 1000;
    params.numGets = 1;
    BackendConfig cfg;
    cfg.kind = SystemKind::TrackFm;
    cfg.farHeapBytes = 16 << 20;
    cfg.localMemBytes = 256 << 10;
    cfg.objectSizeBytes = 64;
    auto backend = makeBackend(cfg, costs);
    MemcachedWorkload store(*backend, params);

    const char *payload = "hello, far memory";
    store.set(123456789, payload,
              static_cast<std::uint32_t>(std::strlen(payload)));
    char readback[64] = {};
    const int len = store.get(123456789, readback, sizeof(readback));
    std::printf("get(123456789) -> %d bytes: \"%s\"\n", len, readback);
    if (len < 0 || std::strcmp(readback, payload) != 0) {
        std::printf("round trip FAILED\n");
        return 1;
    }
    std::printf("round trip verified; the value lived in a 64 B far-"
                "memory object.\n");
    return 0;
}
