/**
 * @file
 * Profile-guided optimization workflow — the section 5 extension end to
 * end: (1) compile and run with allocation-site profiling, (2) recompile
 * with the hot-alloc pruning pass so frequently-accessed allocations
 * stay in local memory, (3) compare.
 *
 * The program keeps a small, hammered lookup table and a large,
 * touched-once log buffer. Profiling discovers that the table is hot
 * per byte; pruning keeps it local, turning tens of thousands of
 * 21-cycle fast-path guards into 4-cycle custody rejections while the
 * cold log continues to live in far memory.
 */

#include <cstdio>

#include "core/system.hh"
#include "interp/interpreter.hh"
#include "ir/parser.hh"
#include "passes/hot_alloc_pruning.hh"
#include "passes/o1_passes.hh"
#include "passes/trackfm_passes.hh"

namespace
{

const char *const program = R"(
func @main() -> i64 {
entry:
  %table = call ptr @malloc(1024)
  %log = call ptr @malloc(524288)
  br tinit
tinit:
  %t = phi i64 [ 0, entry ], [ %t2, tinit ]
  %tp = gep %table, %t, 8
  %tv = mul %t, 3
  store %tv, %tp
  %t2 = add %t, 1
  %tc = icmp.slt %t2, 128
  condbr %tc, tinit, work
work:
  %i = phi i64 [ 0, tinit ], [ %i2, work ]
  %acc0 = phi i64 [ 0, tinit ], [ %acc2, work ]
  %slot = srem %i, 128
  %lp = gep %table, %slot, 8
  %lv = load i64, %lp
  %acc2 = add %acc0, %lv
  %logslot = srem %i, 65536
  %gp = gep %log, %logslot, 8
  store %acc2, %gp
  %i2 = add %i, 1
  %c = icmp.slt %i2, 60000
  condbr %c, work, exit
exit:
  ret %acc2
}
)";

tfm::SystemConfig
clusterConfig()
{
    tfm::SystemConfig config;
    config.runtime.farHeapBytes = 4 << 20;
    config.runtime.localMemBytes = 128 << 10; // ~25% of the working set
    return config;
}

void
report(const char *label, const tfm::TfmRuntime &rt, std::int64_t value)
{
    const tfm::GuardStats &guards = rt.guardStats();
    std::printf("%-22s result=%lld cycles=%llu fast=%llu "
                "custody=%llu remote-fetches=%llu\n",
                label, static_cast<long long>(value),
                static_cast<unsigned long long>(
                    rt.runtime().clock().now()),
                static_cast<unsigned long long>(guards.fastTotal()),
                static_cast<unsigned long long>(guards.custodyRejects),
                static_cast<unsigned long long>(
                    rt.runtime().stats().demandFetches));
}

} // anonymous namespace

int
main()
{
    using namespace tfm;

    // Step 1: ordinary TrackFM compile + profiled training run.
    System trainer(clusterConfig());
    CompileResult trained = trainer.compile(program);
    if (!trained.ok()) {
        std::printf("compile error: %s\n", trained.error.c_str());
        return 1;
    }
    Interpreter profiler(trained.program->ir(), trainer.runtime());
    profiler.enableAllocationProfiling();
    const RunResult training_run = profiler.run("main");
    if (!training_run.ok()) {
        std::printf("training run trapped: %s\n",
                    training_run.trapMessage.c_str());
        return 1;
    }
    report("baseline TrackFM", trainer.runtime(),
           training_run.returnValue);

    const AllocSiteProfile profile = profiler.allocationProfile();
    std::printf("\nallocation-site profile:\n");
    for (const auto &site : profile.sites) {
        std::printf("  site %u in @%s: %llu bytes, %llu guarded "
                    "accesses (%.1f per byte)\n",
                    site.ordinal, site.function.c_str(),
                    static_cast<unsigned long long>(site.bytesAllocated),
                    static_cast<unsigned long long>(
                        site.guardedAccesses),
                    site.accessesPerByte());
    }

    // Step 2: recompile with pruning (hot sites stay local).
    auto module = ir::parseModule(program).module;
    PassManager manager;
    addO1Pipeline(manager);
    manager.emplace<RuntimeInitPass>();
    manager.emplace<LibcTransformPass>();
    manager.emplace<HotAllocPruningPass>(profile, 5.0);
    manager.emplace<GuardPass>();
    manager.emplace<LoopChunkPass>(TrackFmPassOptions{});
    manager.emplace<PrefetchInjectionPass>(TrackFmPassOptions{});
    const PipelineReport pgo_report = manager.run(*module);
    if (!pgo_report.ok()) {
        std::printf("PGO pipeline failed: %s\n",
                    pgo_report.verifierError.c_str());
        return 1;
    }

    // Step 3: run the pruned program on a fresh cluster and compare.
    TfmRuntime pruned_rt(clusterConfig().runtime, CostParams{});
    Interpreter pruned(*module, pruned_rt);
    const RunResult pgo_run = pruned.run("main");
    if (!pgo_run.ok()) {
        std::printf("PGO run trapped: %s\n",
                    pgo_run.trapMessage.c_str());
        return 1;
    }
    std::printf("\n");
    report("PGO-pruned TrackFM", pruned_rt, pgo_run.returnValue);

    if (pgo_run.returnValue != training_run.returnValue) {
        std::printf("\nresults DIVERGED — pruning bug!\n");
        return 1;
    }
    const double speedup =
        static_cast<double>(trainer.cycles()) /
        static_cast<double>(pruned_rt.runtime().clock().now());
    std::printf("\nidentical results; pruning the hot table bought "
                "%.2fx end to end.\n",
                speedup);
    return 0;
}
