/**
 * @file
 * Compiler explorer: watch TrackFM transform a program pass by pass,
 * then see why the guards matter — running a libc-transformed program
 * WITHOUT guard insertion faults on its first heap access, exactly as
 * a real non-canonical dereference would on x86.
 */

#include <cstdio>
#include <string>

#include "core/system.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "passes/trackfm_passes.hh"

namespace
{

const char *const program = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(40000)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %p = gep %a, %i, 4
  %i32 = trunc %i to i32
  store %i32, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 10000
  condbr %c, loop, exit
exit:
  %q = gep %a, 5000, 4
  %v = load i32, %q
  ret %v
}
)";

void
showStage(const char *title, const tfm::ir::Module &module)
{
    std::printf("=============== %s ===============\n%s\n", title,
                tfm::ir::moduleToString(module).c_str());
}

} // anonymous namespace

int
main()
{
    using namespace tfm;

    // Stage-by-stage view of the Figure 2 pipeline.
    auto parsed = ir::parseModule(program);
    if (!parsed.ok()) {
        std::printf("parse error: %s\n", parsed.error.c_str());
        return 1;
    }
    showStage("original (unmodified application)", *parsed.module);

    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::CostModel;

    RuntimeInitPass init_pass;
    init_pass.run(*parsed.module);
    LibcTransformPass libc_pass;
    libc_pass.run(*parsed.module);
    showStage("after runtime-init + libc transform", *parsed.module);

    GuardPass guard_pass;
    guard_pass.run(*parsed.module);
    showStage("after pointer-guard insertion", *parsed.module);

    LoopChunkPass chunk_pass(options);
    chunk_pass.run(*parsed.module);
    PrefetchInjectionPass prefetch_pass(options);
    prefetch_pass.run(*parsed.module);
    showStage("after loop chunking + prefetch injection", *parsed.module);

    std::printf("guards inserted: %llu, loops chunked: %llu of %llu "
                "candidates\n\n",
                static_cast<unsigned long long>(
                    guard_pass.guardsInserted()),
                static_cast<unsigned long long>(chunk_pass.loopsChunked()),
                static_cast<unsigned long long>(
                    chunk_pass.candidatesSeen()));

    // Run the fully transformed program.
    SystemConfig config;
    config.runtime.farHeapBytes = 4 << 20;
    config.runtime.localMemBytes = 64 << 10;
    System system(config);
    CompileResult good = system.compile(program);
    const RunResult ok_result = system.run(*good.program);
    std::printf("transformed program: %s, returned %lld\n",
                ok_result.ok() ? "ran to completion" : "trapped",
                static_cast<long long>(ok_result.returnValue));

    // Now the safety net: transform the allocator but "forget" the
    // guards. The first dereference of a tagged pointer faults.
    auto broken = ir::parseModule(program);
    LibcTransformPass libc_only;
    libc_only.run(*broken.module);
    System victim(config);
    Interpreter interp(*broken.module, victim.runtime());
    const RunResult trap_result = interp.run("main");
    std::printf("libc-transform without guards: %s\n  -> %s\n",
                trap_result.trapped ? "trapped (as it must)"
                                    : "ran (BUG!)",
                trap_result.trapMessage.c_str());
    return trap_result.trapped ? 0 : 1;
}
