/**
 * @file
 * Quickstart: compile an unmodified program with TrackFM and run it on
 * a simulated far-memory cluster — the paper's "merely recompile the
 * application" workflow, end to end.
 *
 * The program below is plain IR (the stand-in for LLVM bitcode): it
 * mallocs a 2 MB array, fills it, and sums it. It knows nothing about
 * far memory. TrackFM's passes rewrite its allocation to return tagged
 * pointers, guard its memory accesses, chunk and prefetch its loops —
 * and it runs correctly with only a quarter of its working set allowed
 * in local memory.
 */

#include <cstdio>
#include <iostream>

#include "core/system.hh"

namespace
{

const char *const program = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(2097152)
  br fill
fill:
  %i = phi i64 [ 0, entry ], [ %i2, fill ]
  %p = gep %a, %i, 4
  %m = srem %i, 100
  %m32 = trunc %m to i32
  store %m32, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 524288
  condbr %c, fill, pre
pre:
  br sum
sum:
  %j = phi i64 [ 0, pre ], [ %j2, sum ]
  %acc = phi i64 [ 0, pre ], [ %acc2, sum ]
  %q = gep %a, %j, 4
  %v = load i32, %q
  %acc2 = add %acc, %v
  %j2 = add %j, 1
  %c2 = icmp.slt %j2, 524288
  condbr %c2, sum, done
done:
  call void @print_i64(%acc2)
  ret %acc2
}
)";

} // anonymous namespace

int
main()
{
    // A cluster where only 25% of the 2 MB working set fits locally.
    tfm::SystemConfig config;
    config.runtime.farHeapBytes = 8 << 20;
    config.runtime.localMemBytes = 512 << 10;
    config.runtime.objectSizeBytes = 4096;
    config.runtime.prefetchEnabled = true;

    tfm::System system(config);

    std::printf("Compiling the unmodified program with TrackFM...\n");
    tfm::CompileResult compiled = system.compile(program);
    if (!compiled.ok()) {
        std::printf("compile error: %s\n", compiled.error.c_str());
        return 1;
    }
    for (const auto &entry :
         compiled.program->pipelineReport().entries) {
        std::printf("  pass %-20s %s\n", entry.pass.c_str(),
                    entry.changed ? "transformed" : "no change");
    }

    std::printf("\nRunning on the far-memory cluster "
                "(local = 25%% of the working set)...\n");
    const tfm::RunResult result = system.run(*compiled.program);
    if (!result.ok()) {
        std::printf("trap: %s\n", result.trapMessage.c_str());
        return 1;
    }

    // sum of (i % 100) over 524288 elements.
    const std::int64_t expected =
        5242 * 4950 + (524288 - 5242 * 100) * (524288 % 100 - 1) / 2;
    (void)expected; // the checksum printed by the program is canonical
    std::printf("program returned %lld\n",
                static_cast<long long>(result.returnValue));
    std::printf("simulated time: %.3f ms\n", system.seconds() * 1e3);

    std::printf("\nWhat the runtime did:\n");
    const tfm::GuardStats &guards = system.runtime().guardStats();
    std::printf("  fast-path guards:      %llu\n",
                static_cast<unsigned long long>(guards.fastTotal()));
    std::printf("  slow-path guards:      %llu\n",
                static_cast<unsigned long long>(guards.slowTotal()));
    std::printf("  boundary checks:       %llu\n",
                static_cast<unsigned long long>(guards.boundaryChecks));
    std::printf("  locality guards:       %llu\n",
                static_cast<unsigned long long>(guards.localityGuards));
    const auto &runtime_stats = system.runtime().runtime().stats();
    std::printf("  remote object fetches: %llu (prefetch hits: %llu)\n",
                static_cast<unsigned long long>(
                    runtime_stats.demandFetches),
                static_cast<unsigned long long>(
                    runtime_stats.prefetchHits));
    return 0;
}
