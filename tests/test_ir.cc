/**
 * @file
 * Unit tests for the IR core: types, builder, parser, printer,
 * verifier.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "ir_test_programs.hh"

namespace tfm
{
namespace
{

using namespace ir;

ParseResult
parseOrDie(const char *text)
{
    ParseResult result = parseModule(text);
    EXPECT_TRUE(result.ok()) << result.error << " at line "
                             << result.errorLine;
    return result;
}

TEST(IrType, SizesAndNames)
{
    EXPECT_EQ(sizeOf(Type::I8), 1u);
    EXPECT_EQ(sizeOf(Type::I32), 4u);
    EXPECT_EQ(sizeOf(Type::I64), 8u);
    EXPECT_EQ(sizeOf(Type::F64), 8u);
    EXPECT_EQ(sizeOf(Type::Ptr), 8u);
    EXPECT_STREQ(typeName(Type::Ptr), "ptr");
    Type parsed;
    EXPECT_TRUE(typeFromName("i32", parsed));
    EXPECT_EQ(parsed, Type::I32);
    EXPECT_FALSE(typeFromName("i128", parsed));
}

TEST(IrBuilder, ConstructsAValidFunction)
{
    Module module;
    Function *fn = module.addFunction("double_it", Type::I64);
    Argument *x = fn->addArgument(Type::I64, "x");
    fn->addBlock("entry");
    IRBuilder builder(fn);
    Instruction *doubled =
        builder.binary(Opcode::Add, x, x, "doubled");
    builder.ret(doubled);
    EXPECT_TRUE(verifyModule(module).empty());
    EXPECT_EQ(fn->instructionCount(), 2u);
}

TEST(IrParser, ParsesTheSumProgram)
{
    auto result = parseOrDie(testprogs::sumProgram);
    Function *main_fn = result.module->findFunction("main");
    ASSERT_NE(main_fn, nullptr);
    EXPECT_EQ(main_fn->basicBlocks().size(), 5u);
    EXPECT_TRUE(verifyModule(*result.module).empty());
}

TEST(IrParser, RoundTripsThroughThePrinter)
{
    auto first = parseOrDie(testprogs::sumProgram);
    const std::string printed = moduleToString(*first.module);
    auto second = parseModule(printed);
    ASSERT_TRUE(second.ok()) << second.error;
    // Printing again must be a fixpoint.
    EXPECT_EQ(moduleToString(*second.module), printed);
}

TEST(IrParser, ReportsUnknownOpcode)
{
    const auto result = parseModule(
        "func @f() -> i64 {\nentry:\n  %x = frobnicate 1, 2\n  ret %x\n}\n");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("unknown opcode"), std::string::npos);
    EXPECT_EQ(result.errorLine, 3);
}

TEST(IrParser, ReportsUndefinedValue)
{
    const auto result = parseModule(
        "func @f() -> i64 {\nentry:\n  ret %nope\n}\n");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("undefined value"), std::string::npos);
}

TEST(IrParser, ReportsUndefinedBlock)
{
    const auto result =
        parseModule("func @f() -> i64 {\nentry:\n  br nowhere\n}\n");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("undefined block"), std::string::npos);
}

TEST(IrParser, ForwardPhiReferencesResolve)
{
    // %i2 is used in the phi before its definition.
    auto result = parseOrDie(testprogs::sumProgram);
    Function *main_fn = result.module->findFunction("main");
    const BasicBlock *init = main_fn->findBlock("init");
    const Instruction *phi = init->instructions().front().get();
    ASSERT_EQ(phi->op(), Opcode::Phi);
    ASSERT_EQ(phi->incoming().size(), 2u);
    for (const auto &[value, block] : phi->incoming())
        EXPECT_NE(value, nullptr) << "unresolved phi in " << block->name();
}

TEST(IrParser, ParsesGuardAndChunkOps)
{
    const char *text = R"(
func @f(%p: ptr) -> i64 {
entry:
  %g = guard.r %p
  %v = load i64, %g
  %cur = chunk.begin %p, 8
  prefetch %p, 8
  %h = chunk.access.w %cur, %p
  store %v, %h
  ret %v
}
)";
    auto result = parseOrDie(text);
    const Function *fn = result.module->findFunction("f");
    const auto &insts = fn->entry()->instructions();
    EXPECT_EQ(insts[0]->op(), Opcode::Guard);
    EXPECT_FALSE(insts[0]->isWrite);
    EXPECT_EQ(insts[2]->op(), Opcode::ChunkBegin);
    EXPECT_EQ(insts[2]->imm, 8);
    EXPECT_EQ(insts[3]->op(), Opcode::Prefetch);
    EXPECT_EQ(insts[4]->op(), Opcode::ChunkAccess);
    EXPECT_TRUE(insts[4]->isWrite);
    // Round trip.
    const std::string printed = moduleToString(*result.module);
    auto again = parseModule(printed);
    ASSERT_TRUE(again.ok()) << again.error;
    EXPECT_EQ(moduleToString(*again.module), printed);
}

TEST(IrParser, ParsesEpochGuardAndReval)
{
    const char *text = R"(
func @f(%p: ptr) -> i64 {
entry:
  %g = guard.w %p, epoch
  store 1, %g
  %h = guard.reval.w %g, %p
  store 2, %h
  %r = guard.reval.r %g, %p
  %v = load i64, %r
  ret %v
}
)";
    auto result = parseOrDie(text);
    const Function *fn = result.module->findFunction("f");
    const auto &insts = fn->entry()->instructions();
    EXPECT_EQ(insts[0]->op(), Opcode::Guard);
    EXPECT_TRUE(insts[0]->armsEpoch);
    EXPECT_TRUE(insts[0]->isWrite);
    EXPECT_EQ(insts[2]->op(), Opcode::GuardReval);
    EXPECT_TRUE(insts[2]->isWrite);
    EXPECT_EQ(insts[2]->operand(0), insts[0].get());
    EXPECT_EQ(insts[4]->op(), Opcode::GuardReval);
    EXPECT_FALSE(insts[4]->isWrite);
    EXPECT_EQ(verifyModule(*result.module), "");
    // Round trip is a printing fixpoint and preserves the epoch flag.
    const std::string printed = moduleToString(*result.module);
    EXPECT_NE(printed.find("epoch"), std::string::npos);
    auto again = parseModule(printed);
    ASSERT_TRUE(again.ok()) << again.error;
    EXPECT_EQ(moduleToString(*again.module), printed);
}

TEST(IrVerifier, RejectsRevalOfNonArmingGuard)
{
    // The arming guard lacks the epoch flag.
    const char *text = R"(
func @f(%p: ptr) -> i64 {
entry:
  %g = guard.r %p
  %h = guard.reval.r %g, %p
  %v = load i64, %h
  ret %v
}
)";
    auto result = parseOrDie(text);
    EXPECT_NE(
        verifyModule(*result.module).find("epoch-arming"),
        std::string::npos);
}

TEST(IrVerifier, RejectsRevalWhoseArmerDoesNotDominate)
{
    // The armer sits in one arm of a diamond; the reval at the join is
    // reachable through the other arm with no epoch snapshot taken.
    const char *text = R"(
func @f(%p: ptr, %n: i64) -> i64 {
entry:
  %c = icmp.slt %n, 3
  condbr %c, a, b
a:
  %g = guard.w %p, epoch
  store 1, %g
  br join
b:
  br join
join:
  %h = guard.reval.r %g, %p
  %v = load i64, %h
  ret %v
}
)";
    auto result = parseOrDie(text);
    EXPECT_NE(verifyModule(*result.module).find("does not dominate"),
              std::string::npos);
}

TEST(IrVerifier, RejectsAmbiguousDuplicateArmers)
{
    auto result = parseOrDie(R"(
func @f(%p: ptr) -> i64 {
entry:
  %g = guard.w %p, epoch
  store 1, %g
  %h = guard.reval.r %g, %p
  %v = load i64, %h
  ret %v
}
)");
    Function *fn = result.module->findFunction("f");
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(verifyModule(*result.module), "");
    // Forge a second epoch-arming guard that shadows %g's name — the
    // parser cannot produce this, but a buggy pass can.
    auto dup = IRBuilder::make(Opcode::Guard, Type::Ptr, "g");
    dup->addOperand(fn->arguments()[0].get());
    dup->armsEpoch = true;
    dup->isWrite = true;
    fn->entry()->insertAt(2, std::move(dup));
    EXPECT_NE(verifyModule(*result.module).find("ambiguous"),
              std::string::npos);
}

TEST(IrParser, RecordsLineAndColumnDebugInfo)
{
    const char *text = "func @f(%p: ptr) -> i64 {\n"
                       "entry:\n"
                       "  %g = guard.r %p\n"
                       "  %v = load i64, %g\n"
                       "  ret %v\n"
                       "}\n";
    auto result = parseOrDie(text);
    const auto &insts =
        result.module->findFunction("f")->entry()->instructions();
    EXPECT_EQ(insts[0]->debugLine, 3);
    EXPECT_EQ(insts[1]->debugLine, 4);
    EXPECT_EQ(insts[2]->debugLine, 5);
    for (const auto &inst : insts)
        EXPECT_GT(inst->debugCol, 0) << "%" << inst->name();
}

TEST(IrVerifier, RejectsRevalOfNonGuard)
{
    const char *text = R"(
func @f(%p: ptr) -> i64 {
entry:
  %x = add 1, 2
  %h = guard.reval.r %x, %p
  %v = load i64, %h
  ret %v
}
)";
    auto result = parseOrDie(text);
    EXPECT_NE(
        verifyModule(*result.module).find("epoch-arming"),
        std::string::npos);
}

TEST(IrVerifier, RejectsWrongGuardOperandCounts)
{
    Module module;
    Function *fn = module.addFunction("f", Type::Void);
    fn->addBlock("entry");
    IRBuilder builder(fn);
    // A guard with no pointer operand.
    auto bad = IRBuilder::make(Opcode::Guard, Type::Ptr, "g");
    fn->entry()->append(std::move(bad));
    builder.ret();
    EXPECT_NE(verifyModule(module).find("guard"), std::string::npos);
}

TEST(IrVerifier, CatchesMissingTerminator)
{
    Module module;
    Function *fn = module.addFunction("f", Type::Void);
    fn->addBlock("entry");
    IRBuilder builder(fn);
    builder.binary(Opcode::Add, builder.constI64(1), builder.constI64(2),
                   "x");
    EXPECT_NE(verifyModule(module).find("missing terminator"),
              std::string::npos);
}

TEST(IrVerifier, CatchesPhiFromNonPredecessor)
{
    Module module;
    Function *fn = module.addFunction("f", Type::I64);
    BasicBlock *entry = fn->addBlock("entry");
    BasicBlock *other = fn->addBlock("other");
    BasicBlock *exit_block = fn->addBlock("exit");
    IRBuilder builder(fn);
    builder.setBlock(entry);
    builder.br(exit_block);
    builder.setBlock(other);
    builder.br(exit_block);
    builder.setBlock(exit_block);
    Instruction *phi = builder.phi(Type::I64, "x");
    // "entry2" is not a predecessor of exit: wire a bogus incoming.
    BasicBlock *bogus = fn->addBlock("bogus");
    builder.setBlock(bogus);
    builder.ret(builder.constI64(0));
    phi->incoming().emplace_back(builder.constI64(1), bogus);
    builder.setBlock(exit_block);
    builder.ret(phi);
    EXPECT_NE(verifyModule(module).find("non-predecessor"),
              std::string::npos);
}

TEST(IrVerifier, AcceptsAllTestPrograms)
{
    for (const char *program :
         {testprogs::sumProgram, testprogs::sumI32Program,
          testprogs::stackProgram, testprogs::o1Program,
          testprogs::invariantAccumulatorProgram,
          testprogs::structFieldsProgram,
          testprogs::evacuationLoopProgram,
          testprogs::twoObjectProgram}) {
        auto result = parseOrDie(program);
        EXPECT_EQ(verifyModule(*result.module), "");
    }
}

TEST(IrModule, InstructionCountSumsFunctions)
{
    auto result = parseOrDie(testprogs::sumProgram);
    EXPECT_GT(result.module->instructionCount(), 15u);
}

} // namespace
} // namespace tfm
