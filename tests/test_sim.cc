/**
 * @file
 * Unit tests for the simulation substrate: clock, RNG, distributions,
 * stats, cost parameters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "sim/cost_params.hh"
#include "sim/cycle_clock.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/usr_dist.hh"
#include "sim/zipf.hh"

namespace tfm
{
namespace
{

TEST(CycleClock, StartsAtZeroAndAdvances)
{
    CycleClock clock;
    EXPECT_EQ(clock.now(), 0u);
    clock.advance(100);
    EXPECT_EQ(clock.now(), 100u);
    clock.advance(1);
    EXPECT_EQ(clock.now(), 101u);
}

TEST(CycleClock, AdvanceToNeverGoesBackwards)
{
    CycleClock clock;
    clock.advance(500);
    clock.advanceTo(300);
    EXPECT_EQ(clock.now(), 500u);
    clock.advanceTo(800);
    EXPECT_EQ(clock.now(), 800u);
}

TEST(CycleClock, ResetReturnsToZero)
{
    CycleClock clock;
    clock.advance(12345);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
}

TEST(CycleClock, ToSecondsUsesFrequency)
{
    // 2.4e9 cycles at 2.4 GHz is exactly one second.
    EXPECT_DOUBLE_EQ(CycleClock::toSeconds(2'400'000'000ull, 2.4), 1.0);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(7), b(8);
    int same = 0;
    for (int i = 0; i < 100; i++)
        same += (a() == b());
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(1);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(2);
    double sum = 0;
    for (int i = 0; i < 10000; i++) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; loose tolerance.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Zipf, SamplesAreInDomain)
{
    ZipfGenerator zipf(100, 1.02, 1);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(zipf.next(), 100u);
}

TEST(Zipf, LowRanksDominate)
{
    ZipfGenerator zipf(1000, 1.02, 2);
    std::map<std::uint64_t, int> histogram;
    const int draws = 50000;
    for (int i = 0; i < draws; i++)
        histogram[zipf.next()]++;
    // Rank 0 must be the most frequent and clearly above uniform.
    int max_count = 0;
    for (const auto &[rank, count] : histogram)
        max_count = std::max(max_count, count);
    EXPECT_EQ(histogram[0], max_count);
    EXPECT_GT(histogram[0], draws / 1000 * 10);
}

TEST(Zipf, HigherSkewConcentratesMore)
{
    ZipfGenerator mild(1000, 1.0, 3);
    ZipfGenerator sharp(1000, 1.3, 3);
    const int draws = 50000;
    int mild_zero = 0, sharp_zero = 0;
    for (int i = 0; i < draws; i++) {
        mild_zero += (mild.next() == 0);
        sharp_zero += (sharp.next() == 0);
    }
    EXPECT_GT(sharp_zero, mild_zero);
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfGenerator zipf(257, 1.1, 4);
    double sum = 0.0;
    for (std::uint64_t k = 0; k < 257; k++)
        sum += zipf.pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

/**
 * Statistical check against the exact law: the observed frequency of
 * rank 1 and of a mid-table rank must match the theta-exponent pmf
 * within a tolerance far wider than the binomial sampling noise
 * (draws * p * (1-p) variance => ~0.5% relative at these counts), so
 * the test is deterministic-seed stable but still catches an exponent
 * or normalization regression.
 */
TEST(Zipf, FrequenciesMatchThetaExponent)
{
    const std::uint64_t n = 1000;
    const double theta = 1.2;
    ZipfGenerator zipf(n, theta, 5);
    const int draws = 400000;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < draws; i++)
        counts[zipf.next()]++;

    for (const std::uint64_t rank : {0ull, 9ull, 99ull}) {
        const double expected = zipf.pmf(rank) * draws;
        ASSERT_GT(expected, 50.0) << "rank " << rank
                                  << " too rare to test";
        EXPECT_NEAR(counts[rank], expected, 0.15 * expected)
            << "rank " << rank;
    }
    // The rank-1 : rank-10 ratio pins the exponent itself: it must be
    // (10/1)^theta up to sampling noise, independent of normalization.
    const double ratio = static_cast<double>(counts[0]) /
                         static_cast<double>(counts[9]);
    const double expected_ratio = std::pow(10.0, theta);
    EXPECT_NEAR(ratio, expected_ratio, 0.2 * expected_ratio);
}

TEST(UsrDist, SizesMatchUsrPool)
{
    UsrSizeDist dist(1);
    int tiny_values = 0;
    const int draws = 10000;
    for (int i = 0; i < draws; i++) {
        const KvSize s = dist.next();
        EXPECT_TRUE(s.keyBytes == 16 || s.keyBytes == 21);
        EXPECT_GE(s.valueBytes, 2u);
        EXPECT_LE(s.valueBytes, 512u);
        tiny_values += (s.valueBytes == 2);
    }
    // ~90% of USR values are 2 bytes.
    EXPECT_GT(tiny_values, draws * 85 / 100);
    EXPECT_LT(tiny_values, draws * 95 / 100);
}

TEST(StatSet, AddAndGet)
{
    StatSet set;
    set.add("a", 1);
    set.add("b", 2);
    EXPECT_EQ(set.get("a"), 1u);
    EXPECT_EQ(set.get("b"), 2u);
    EXPECT_EQ(set.get("missing"), 0u);
    EXPECT_EQ(set.all().size(), 2u);
}

TEST(StatSet, DumpIsPrefixed)
{
    StatSet set;
    set.add("x", 5);
    std::ostringstream os;
    set.dump(os, "pre.");
    EXPECT_EQ(os.str(), "pre.x = 5\n");
}

TEST(StatSet, FindDistinguishesAbsentFromZero)
{
    StatSet set;
    set.add("zero", 0);
    set.add("one", 1);
    ASSERT_NE(set.find("zero"), nullptr);
    EXPECT_EQ(*set.find("zero"), 0u);
    ASSERT_NE(set.find("one"), nullptr);
    EXPECT_EQ(*set.find("one"), 1u);
    EXPECT_EQ(set.find("missing"), nullptr);
    // get() cannot tell these apart; find() is the disambiguator.
    EXPECT_EQ(set.get("zero"), set.get("missing"));
}

TEST(StatSet, DumpAlignsColumns)
{
    StatSet set;
    set.add("a", 1);
    set.add("long.counter.name", 2);
    std::ostringstream os;
    set.dump(os);
    // Every '=' sits in the same column: short names are padded to the
    // widest one.
    const std::string out = os.str();
    const std::size_t first_eq = out.find('=');
    std::size_t line_start = 0;
    for (std::size_t nl = out.find('\n'); nl != std::string::npos;
         nl = out.find('\n', line_start)) {
        const std::string line = out.substr(line_start, nl - line_start);
        EXPECT_EQ(line.find('='), first_eq) << line;
        line_start = nl + 1;
    }
    EXPECT_NE(out.find("a                 "), std::string::npos);
}

TEST(Logging, LevelIsSaneAndMacrosExpand)
{
    // The level is parsed once from TFM_LOG_LEVEL and cached; whatever
    // the environment says, it must land in the known range.
    const int level = logLevel();
    EXPECT_GE(level, LogSilent);
    EXPECT_LE(level, LogInform);
    // The macros compile with printf-style varargs and must not crash
    // at any level.
    TFM_WARN("test_sim logging check %d", 1);
    TFM_INFORM("test_sim logging check %s", "inform");
}

TEST(CostParams, DefaultsMatchPaperTables)
{
    const CostParams c;
    // Table 1 medians.
    EXPECT_EQ(c.fastPathReadCycles, 21u);
    EXPECT_EQ(c.fastPathWriteCycles, 21u);
    EXPECT_EQ(c.slowPathReadCycles, 144u);
    EXPECT_EQ(c.slowPathWriteCycles, 159u);
    // Table 2 fault costs.
    EXPECT_EQ(c.pageFaultLocalCycles, 1300u);
    // 25 Gb/s at 2.4 GHz.
    EXPECT_NEAR(c.netBytesPerCycle, 1.3, 0.01);
}

TEST(CostParams, DumpMentionsAllGroups)
{
    const CostParams c;
    std::ostringstream os;
    c.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("fastPath"), std::string::npos);
    EXPECT_NE(out.find("slowPath"), std::string::npos);
    EXPECT_NE(out.find("pageFault"), std::string::npos);
    EXPECT_NE(out.find("netLatency"), std::string::npos);
}

} // namespace
} // namespace tfm
