/**
 * @file
 * Interpreter tests: semantics of untransformed programs, semantic
 * preservation through the TrackFM pipeline, the non-canonical trap,
 * and guard/chunk behaviour observable through runtime stats.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.hh"
#include "ir/parser.hh"
#include "ir_test_programs.hh"
#include "passes/o1_passes.hh"
#include "passes/trackfm_passes.hh"

namespace tfm
{
namespace
{

std::unique_ptr<ir::Module>
parseOrDie(const char *text)
{
    auto result = ir::parseModule(text);
    EXPECT_TRUE(result.ok()) << result.error;
    return std::move(result.module);
}

RuntimeConfig
interpConfig()
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 4 << 20;
    cfg.localMemBytes = 64 << 10;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = false;
    return cfg;
}

void
transform(ir::Module &module, ChunkPolicy policy = ChunkPolicy::CostModel,
          bool prefetch = false)
{
    PassManager manager;
    TrackFmPassOptions options;
    options.chunkPolicy = policy;
    options.injectPrefetch = prefetch;
    addTrackFmPipeline(manager, options);
    const PipelineReport report = manager.run(module);
    ASSERT_TRUE(report.ok()) << report.verifierError;
}

TEST(Interp, RunsUntransformedSumProgram)
{
    auto module = parseOrDie(testprogs::sumProgram);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 499500);
    // Untransformed: the host heap is used, no guards at all.
    EXPECT_EQ(rt.guardStats().guardTotal(), 0u);
}

TEST(Interp, RunsStackProgram)
{
    auto module = parseOrDie(testprogs::stackProgram);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 4);
}

TEST(Interp, LibcTransformAloneTrapsOnUnguardedAccess)
{
    // The paper's core safety property: TrackFM pointers are non-
    // canonical, so an access that escaped guard insertion faults
    // instead of reading garbage.
    auto module = parseOrDie(testprogs::sumProgram);
    LibcTransformPass libc_only;
    libc_only.run(*module);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.trapped);
    EXPECT_NE(result.trapMessage.find("general protection fault"),
              std::string::npos);
}

TEST(Interp, TransformedProgramComputesTheSameSum)
{
    auto module = parseOrDie(testprogs::sumProgram);
    transform(*module, ChunkPolicy::None);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 499500);
    // 1000 guarded stores + 1000 guarded loads.
    EXPECT_EQ(rt.guardStats().guardTotal(), 2000u);
    EXPECT_GT(rt.guardStats().fastTotal(), 1900u);
}

TEST(Interp, ChunkedProgramComputesTheSameSum)
{
    auto module = parseOrDie(testprogs::sumI32Program);
    transform(*module, ChunkPolicy::CostModel);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 5995);
    // Chunked loops: no per-element guards, boundary checks instead.
    EXPECT_EQ(rt.guardStats().fastTotal(), 0u);
    EXPECT_GT(rt.guardStats().boundaryChecks, 3000u);
    EXPECT_GE(rt.guardStats().localityGuards, 2u);
}

TEST(Interp, ChunkingPoliciesAgreeOnResults)
{
    for (const ChunkPolicy policy :
         {ChunkPolicy::None, ChunkPolicy::All, ChunkPolicy::CostModel}) {
        auto module = parseOrDie(testprogs::sumI32Program);
        transform(*module, policy);
        TfmRuntime rt(interpConfig(), CostParams{});
        Interpreter interp(*module, rt);
        const RunResult result = interp.run("main");
        ASSERT_TRUE(result.ok()) << result.trapMessage;
        EXPECT_EQ(result.returnValue, 5995);
    }
}

TEST(Interp, PrefetchInjectionStillCorrectAndIssuesPrefetches)
{
    auto module = parseOrDie(testprogs::sumI32Program);
    transform(*module, ChunkPolicy::CostModel, /*prefetch=*/true);
    auto cfg = interpConfig();
    cfg.prefetchEnabled = true;
    TfmRuntime rt(cfg, CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 5995);
    EXPECT_GT(rt.guardStats().prefetchCalls, 0u);
}

TEST(Interp, O1ThenTrackFmStillCorrect)
{
    auto module = parseOrDie(testprogs::sumProgram);
    PassManager manager;
    addO1Pipeline(manager);
    TrackFmPassOptions options;
    addTrackFmPipeline(manager, options);
    ASSERT_TRUE(manager.run(*module).ok());
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 499500);
}

TEST(Interp, UserFunctionCallsWork)
{
    const char *text = R"(
func @square(%x: i64) -> i64 {
entry:
  %r = mul %x, %x
  ret %r
}

func @main() -> i64 {
entry:
  %a = call i64 @square(7)
  %b = call i64 @square(%a)
  ret %b
}
)";
    auto module = parseOrDie(text);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 49 * 49);
}

TEST(Interp, RecursionWorksAndDepthIsBounded)
{
    const char *text = R"(
func @fib(%n: i64) -> i64 {
entry:
  %small = icmp.slt %n, 2
  condbr %small, base, rec
base:
  ret %n
rec:
  %n1 = sub %n, 1
  %n2 = sub %n, 2
  %a = call i64 @fib(%n1)
  %b = call i64 @fib(%n2)
  %s = add %a, %b
  ret %s
}

func @main() -> i64 {
entry:
  %r = call i64 @fib(15)
  ret %r
}
)";
    auto module = parseOrDie(text);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 610);
}

TEST(Interp, PrintIntrinsicCollectsOutput)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  call void @print_i64(11)
  call void @print_i64(22)
  ret 0
}
)";
    auto module = parseOrDie(text);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.output, (std::vector<std::int64_t>{11, 22}));
}

TEST(Interp, InfiniteLoopHitsStepLimit)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  br spin
spin:
  br spin
}
)";
    auto module = parseOrDie(text);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    interp.maxSteps = 10000;
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.trapped);
    EXPECT_NE(result.trapMessage.find("step limit"), std::string::npos);
}

TEST(Interp, NullDereferenceTraps)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %z = inttoptr 0 to ptr
  %v = load i64, %z
  ret %v
}
)";
    auto module = parseOrDie(text);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.trapped);
    EXPECT_NE(result.trapMessage.find("null pointer"), std::string::npos);
}

TEST(Interp, MissingFunctionIsAnError)
{
    auto module = parseOrDie(testprogs::stackProgram);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("nonexistent");
    EXPECT_TRUE(result.trapped);
}

TEST(Interp, FloatArithmetic)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = sitofp 7 to f64
  %b = fmul %a, f1.5
  %c = fadd %b, f0.5
  %r = fptosi %c to i64
  ret %r
}
)";
    auto module = parseOrDie(text);
    TfmRuntime rt(interpConfig(), CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 11); // 7*1.5+0.5
}

TEST(Interp, GuardsChargeSimulatedCycles)
{
    auto module = parseOrDie(testprogs::sumProgram);
    transform(*module, ChunkPolicy::None);
    TfmRuntime naive_rt(interpConfig(), CostParams{});
    Interpreter naive(*module, naive_rt);
    naive.run("main");

    auto untransformed = parseOrDie(testprogs::sumProgram);
    TfmRuntime plain_rt(interpConfig(), CostParams{});
    Interpreter plain(*untransformed, plain_rt);
    plain.run("main");

    EXPECT_GT(naive_rt.clock().now(), plain_rt.clock().now());
}

} // namespace
} // namespace tfm
