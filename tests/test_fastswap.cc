/**
 * @file
 * Unit tests for the Fastswap kernel-swap baseline.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "fastswap/fastswap_runtime.hh"

namespace tfm
{
namespace
{

FastswapConfig
smallConfig(std::uint64_t frames = 16, bool readahead = false)
{
    FastswapConfig cfg;
    cfg.farHeapBytes = 4 << 20;
    cfg.localMemBytes = frames * 4096;
    cfg.readaheadEnabled = readahead;
    return cfg;
}

TEST(Fastswap, FirstTouchIsAMajorFault)
{
    FastswapRuntime fs(smallConfig(), CostParams{});
    const std::uint64_t heap = fs.allocate(64 * 4096);
    fs.load<std::uint64_t>(heap);
    EXPECT_EQ(fs.stats().majorFaults, 1u);
    EXPECT_EQ(fs.stats().minorFaults, 0u);
}

TEST(Fastswap, ResidentAccessIsFree)
{
    FastswapRuntime fs(smallConfig(), CostParams{});
    const std::uint64_t heap = fs.allocate(4096);
    fs.load<std::uint64_t>(heap);
    const std::uint64_t before = fs.clock().now();
    // Hardware-mapped page: no software cost at all.
    fs.load<std::uint64_t>(heap + 8);
    EXPECT_EQ(fs.clock().now(), before);
}

TEST(Fastswap, MajorFaultCostMatchesTable2)
{
    const CostParams c;
    FastswapRuntime fs(smallConfig(), c);
    const std::uint64_t heap = fs.allocate(4096);
    const std::uint64_t before = fs.clock().now();
    fs.load<std::uint64_t>(heap);
    const std::uint64_t cost = fs.clock().now() - before;
    // Paper: ~34 K cycles for a remote read fault. Allow 25% slack for
    // the network model's integer rounding.
    EXPECT_GT(cost, 25000u);
    EXPECT_LT(cost, 45000u);
}

TEST(Fastswap, StoreRoundTripsThroughSwap)
{
    FastswapRuntime fs(smallConfig(2), CostParams{});
    const std::uint64_t heap = fs.allocate(16 * 4096);
    fs.store<std::uint64_t>(heap, 31337);
    // Evict page 0 by touching many others.
    for (int i = 1; i < 8; i++)
        fs.load<std::uint64_t>(heap + i * 4096);
    EXPECT_GT(fs.stats().pageouts, 0u);
    EXPECT_EQ(fs.load<std::uint64_t>(heap), 31337u);
}

TEST(Fastswap, WholePagesAreTransferred)
{
    FastswapRuntime fs(smallConfig(), CostParams{});
    const std::uint64_t heap = fs.allocate(4096);
    fs.load<std::uint8_t>(heap); // one byte touched...
    // ...but a full architected page crosses the network (I/O
    // amplification, Fig. 13).
    EXPECT_EQ(fs.netStats().bytesFetched, 4096u);
}

TEST(Fastswap, ReadaheadTurnsMajorIntoMinorFaults)
{
    FastswapRuntime fs(smallConfig(16, true), CostParams{});
    const std::uint64_t heap = fs.allocate(16 * 4096);
    for (int i = 0; i < 8; i++)
        fs.load<std::uint64_t>(heap + i * 4096);
    EXPECT_LT(fs.stats().majorFaults, 8u);
    EXPECT_GT(fs.stats().minorFaults, 0u);
    EXPECT_GT(fs.stats().readaheads, 0u);
}

TEST(Fastswap, MinorFaultCheaperThanMajor)
{
    const CostParams c;
    FastswapRuntime fs(smallConfig(16, true), c);
    const std::uint64_t heap = fs.allocate(16 * 4096);
    fs.load<std::uint64_t>(heap); // major + readahead of page 1

    const std::uint64_t before = fs.clock().now();
    fs.load<std::uint64_t>(heap + 4096); // minor (readahead landed)
    const std::uint64_t minor_cost = fs.clock().now() - before;
    // Minor faults may wait for the in-flight readahead, but the
    // software cost is the 1.3 K local fault price.
    EXPECT_GE(minor_cost, c.pageFaultLocalCycles);
    EXPECT_EQ(fs.stats().minorFaults, 1u);
}

TEST(Fastswap, ReclaimChargesAndCounts)
{
    FastswapRuntime fs(smallConfig(2), CostParams{});
    const std::uint64_t heap = fs.allocate(16 * 4096);
    for (int i = 0; i < 8; i++)
        fs.load<std::uint64_t>(heap + i * 4096);
    EXPECT_GE(fs.stats().reclaims, 6u);
}

TEST(Fastswap, RawInitDoesNotCharge)
{
    FastswapRuntime fs(smallConfig(), CostParams{});
    const std::uint64_t heap = fs.allocate(4096);
    const std::uint64_t before = fs.clock().now();
    const std::uint64_t value = 5;
    fs.rawWrite(heap, &value, sizeof(value));
    EXPECT_EQ(fs.clock().now(), before);
    EXPECT_EQ(fs.load<std::uint64_t>(heap), 5u);
}

TEST(Fastswap, EvacuateAllMakesEverythingRemote)
{
    FastswapRuntime fs(smallConfig(), CostParams{});
    const std::uint64_t heap = fs.allocate(8 * 4096);
    fs.store<std::uint64_t>(heap, 9);
    fs.evacuateAll();
    const std::uint64_t faults = fs.stats().majorFaults;
    EXPECT_EQ(fs.load<std::uint64_t>(heap), 9u);
    EXPECT_EQ(fs.stats().majorFaults, faults + 1);
}

TEST(Fastswap, ReadBytesSpanningPagesFaultsPerPage)
{
    FastswapRuntime fs(smallConfig(), CostParams{});
    const std::uint64_t heap = fs.allocate(2 * 4096);
    std::uint8_t buffer[64];
    fs.readBytes(heap + 4096 - 32, buffer, sizeof(buffer));
    EXPECT_EQ(fs.stats().majorFaults, 2u);
}

TEST(Fastswap, ExportStats)
{
    FastswapRuntime fs(smallConfig(), CostParams{});
    const std::uint64_t heap = fs.allocate(4096);
    fs.load<std::uint64_t>(heap);
    StatSet set;
    fs.exportStats(set);
    EXPECT_EQ(set.get("fastswap.major_faults"), 1u);
    EXPECT_EQ(set.get("net.bytes_fetched"), 4096u);
}

} // namespace
} // namespace tfm
