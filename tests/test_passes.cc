/**
 * @file
 * Unit tests for the TrackFM pass pipeline and the O1 clean-up passes.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "ir_test_programs.hh"
#include "passes/guard_opt.hh"
#include "passes/o1_passes.hh"
#include "passes/trackfm_passes.hh"

namespace tfm
{
namespace
{

std::unique_ptr<ir::Module>
parseOrDie(const char *text)
{
    auto result = ir::parseModule(text);
    EXPECT_TRUE(result.ok()) << result.error;
    return std::move(result.module);
}

std::uint64_t
countOpcode(const ir::Module &module, ir::Opcode op)
{
    std::uint64_t count = 0;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions())
                count += (inst->op() == op);
        }
    }
    return count;
}

TEST(RuntimeInitPassTest, InsertsHookOnceAtMainEntry)
{
    auto module = parseOrDie(testprogs::sumProgram);
    RuntimeInitPass pass;
    EXPECT_TRUE(pass.run(*module));
    const ir::Function *main_fn = module->findFunction("main");
    const ir::Instruction *first =
        main_fn->entry()->instructions().front().get();
    EXPECT_EQ(first->op(), ir::Opcode::Call);
    EXPECT_EQ(first->callee, "tfm_runtime_init");
    // Idempotent.
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(LibcTransformPassTest, RewritesAllocationCalls)
{
    auto module = parseOrDie(testprogs::sumProgram);
    LibcTransformPass pass;
    EXPECT_TRUE(pass.run(*module));
    bool found = false;
    for (const auto &block :
         module->findFunction("main")->basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            if (inst->op() == ir::Opcode::Call &&
                inst->callee == "tfm_malloc") {
                found = true;
            }
            EXPECT_NE(inst->callee, "malloc");
        }
    }
    EXPECT_TRUE(found);
    EXPECT_FALSE(pass.run(*module)); // idempotent
}

TEST(GuardPassTest, GuardsHeapAccessesOnly)
{
    auto module = parseOrDie(testprogs::sumProgram);
    GuardPass pass;
    EXPECT_TRUE(pass.run(*module));
    // One store (init loop) + one load (sum loop).
    EXPECT_EQ(pass.guardsInserted(), 2u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 2u);
    EXPECT_EQ(ir::verifyModule(*module), "");
    // Idempotent: rerunning adds nothing.
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 2u);
}

TEST(GuardPassTest, LeavesStackProgramAlone)
{
    auto module = parseOrDie(testprogs::stackProgram);
    GuardPass pass;
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 0u);
}

TEST(GuardPassTest, GuardReadWriteMatchesAccess)
{
    auto module = parseOrDie(testprogs::sumProgram);
    GuardPass pass;
    pass.run(*module);
    for (const auto &block :
         module->findFunction("main")->basicBlocks()) {
        for (std::size_t i = 0; i < block->instructions().size(); i++) {
            const ir::Instruction *inst =
                block->instructions()[i].get();
            if (inst->op() != ir::Opcode::Guard)
                continue;
            const ir::Instruction *user =
                block->instructions()[i + 1].get();
            if (user->op() == ir::Opcode::Store) {
                EXPECT_TRUE(inst->isWrite);
            } else if (user->op() == ir::Opcode::Load) {
                EXPECT_FALSE(inst->isWrite);
            }
        }
    }
}

TEST(LoopChunkPassTest, CostModelRejectsLowDensity)
{
    // 8-byte elements at 4 KB objects: density 512 < break-even 730.
    auto module = parseOrDie(testprogs::sumProgram);
    GuardPass guards;
    guards.run(*module);
    TrackFmPassOptions options;
    options.objectSizeBytes = 4096;
    options.chunkPolicy = ChunkPolicy::CostModel;
    LoopChunkPass pass(options);
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(pass.candidatesSeen(), 2u);
    EXPECT_EQ(pass.loopsChunked(), 0u);
}

TEST(LoopChunkPassTest, CostModelAcceptsHighDensity)
{
    // 4-byte elements at 4 KB objects: density 1024 > break-even.
    auto module = parseOrDie(testprogs::sumI32Program);
    GuardPass guards;
    guards.run(*module);
    TrackFmPassOptions options;
    options.objectSizeBytes = 4096;
    options.chunkPolicy = ChunkPolicy::CostModel;
    LoopChunkPass pass(options);
    EXPECT_TRUE(pass.run(*module));
    EXPECT_EQ(pass.loopsChunked(), 2u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 0u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::ChunkBegin), 2u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::ChunkAccess), 2u);
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(LoopChunkPassTest, AllPolicyChunksRegardlessOfDensity)
{
    auto module = parseOrDie(testprogs::sumProgram);
    GuardPass guards;
    guards.run(*module);
    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::All;
    LoopChunkPass pass(options);
    EXPECT_TRUE(pass.run(*module));
    EXPECT_EQ(pass.loopsChunked(), 2u);
}

TEST(PrefetchInjectionPassTest, AddsPrefetchAfterChunkBegin)
{
    auto module = parseOrDie(testprogs::sumI32Program);
    GuardPass guards;
    guards.run(*module);
    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::CostModel;
    options.prefetchDepth = 6;
    LoopChunkPass chunk(options);
    chunk.run(*module);
    PrefetchInjectionPass prefetch(options);
    EXPECT_TRUE(prefetch.run(*module));
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Prefetch), 2u);
    // Idempotent.
    EXPECT_FALSE(prefetch.run(*module));
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(Pipeline, FullPipelineVerifiesAndGrowsCode)
{
    auto module = parseOrDie(testprogs::sumI32Program);
    const std::uint64_t before = estimateLoweredInstructions(*module);
    PassManager manager;
    TrackFmPassOptions options;
    addTrackFmPipeline(manager, options);
    const PipelineReport report = manager.run(*module);
    EXPECT_TRUE(report.ok()) << report.verifierError;
    // 5 base stages + elim, coalesce, hoist, and the second elim round.
    EXPECT_EQ(report.entries.size(), 9u);
    const std::uint64_t after = estimateLoweredInstructions(*module);
    // Section 4.6: transformed code is larger (≈2.4x on average for
    // guard-dense code).
    EXPECT_GT(after, before);
}

TEST(Pipeline, GuardDenseCodeGrowsRoughlyPaperFactor)
{
    // A function that is mostly loads/stores should grow by a factor
    // in the couple-of-x range once every access carries a 14-
    // instruction guard.
    auto module = parseOrDie(testprogs::sumProgram);
    const std::uint64_t before = estimateLoweredInstructions(*module);
    PassManager manager;
    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::None; // pure guard expansion
    addTrackFmPipeline(manager, options);
    manager.run(*module);
    const std::uint64_t after = estimateLoweredInstructions(*module);
    const double growth =
        static_cast<double>(after) / static_cast<double>(before);
    EXPECT_GT(growth, 1.5);
    EXPECT_LT(growth, 6.0);
}

TEST(O1Passes, ConstantFoldingFolds)
{
    auto module = parseOrDie(testprogs::o1Program);
    ConstantFoldPass fold;
    EXPECT_TRUE(fold.run(*module));
    DeadCodeElimPass dce;
    EXPECT_TRUE(dce.run(*module));
    // %folded and %dead are gone.
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Mul), 0u);
}

TEST(O1Passes, RedundantLoadElimination)
{
    auto module = parseOrDie(testprogs::o1Program);
    RedundantLoadElimPass pass;
    EXPECT_TRUE(pass.run(*module));
    EXPECT_EQ(pass.loadsRemoved(), 1u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Load), 1u);
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(O1Passes, RedundantLoadElimStopsAtStores)
{
    const char *text = R"(
func @f(%p: ptr) -> i64 {
entry:
  %v1 = load i64, %p
  store 5, %p
  %v2 = load i64, %p
  %s = add %v1, %v2
  ret %s
}
)";
    auto module = parseOrDie(text);
    RedundantLoadElimPass pass;
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Load), 2u);
}

TEST(O1Passes, DceKeepsSideEffects)
{
    auto module = parseOrDie(testprogs::sumProgram);
    DeadCodeElimPass pass;
    pass.run(*module);
    // Stores and calls survive even if "unused".
    EXPECT_GT(countOpcode(*module, ir::Opcode::Store), 0u);
    EXPECT_GT(countOpcode(*module, ir::Opcode::Call), 0u);
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(O1Passes, SimplifyCfgDropsUnreachableBlocks)
{
    const char *text = R"(
func @f() -> i64 {
entry:
  ret 1
island:
  ret 2
}
)";
    auto module = parseOrDie(text);
    SimplifyCfgPass pass;
    EXPECT_TRUE(pass.run(*module));
    EXPECT_EQ(module->findFunction("f")->basicBlocks().size(), 1u);
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(O1Passes, O1BeforeGuardsReducesGuardCount)
{
    // The Fig. 17b mechanism at IR level: eliminating redundant loads
    // first means fewer guards inserted.
    auto without_o1 = parseOrDie(testprogs::o1Program);
    auto with_o1 = parseOrDie(testprogs::o1Program);

    // Pretend the alloca'd buffer is heap so its accesses get guarded:
    // rewrite alloca -> malloc call for this test.
    auto heapify = [](ir::Module &module) {
        for (const auto &function : module.allFunctions()) {
            for (const auto &block : function->basicBlocks()) {
                for (const auto &inst : block->instructions()) {
                    if (inst->op() == ir::Opcode::Alloca) {
                        // Loads/stores via an Unknown-provenance value
                        // still get guarded; simply renaming provenance
                        // is easiest via a call marker.
                    }
                }
            }
        }
    };
    (void)heapify;

    // o1Program uses an alloca (NonHeap): guards skip it. Use a heap
    // variant instead.
    const char *heap_text = R"(
func @main() -> i64 {
entry:
  %buf = call ptr @malloc(16)
  store 21, %buf
  %v1 = load i64, %buf
  %v2 = load i64, %buf
  %v3 = load i64, %buf
  %sum1 = add %v1, %v2
  %sum = add %sum1, %v3
  ret %sum
}
)";
    without_o1 = parseOrDie(heap_text);
    with_o1 = parseOrDie(heap_text);

    GuardPass guards_plain;
    guards_plain.run(*without_o1);

    PassManager o1;
    addO1Pipeline(o1);
    EXPECT_TRUE(o1.run(*with_o1).ok());
    GuardPass guards_after_o1;
    guards_after_o1.run(*with_o1);

    EXPECT_EQ(guards_plain.guardsInserted(), 4u);
    EXPECT_EQ(guards_after_o1.guardsInserted(), 2u);
}

TEST(Pipeline, ReportTracksInstructionCounts)
{
    auto module = parseOrDie(testprogs::sumProgram);
    PassManager manager;
    addTrackFmPipeline(manager, TrackFmPassOptions{});
    const PipelineReport report = manager.run(*module);
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report.instructionsAfter, report.instructionsBefore);
}

// ---------------------------------------------------------------------
// Guard optimization suite
// ---------------------------------------------------------------------

TEST(RedundantGuardElim, MergesSamePointerPairAndPromotesToWrite)
{
    auto module = parseOrDie(testprogs::invariantAccumulatorProgram);
    GuardPass guards;
    guards.run(*module);
    ASSERT_EQ(guards.guardsInserted(), 4u);

    RedundantGuardElimPass elim;
    EXPECT_TRUE(elim.run(*module));
    // Only the in-loop load/store pair merges; the entry->loop and
    // loop->exit candidates sit across loop back edges (any path from
    // the dominator re-enters the runtime) and must survive.
    EXPECT_EQ(elim.guardsEliminated(), 1u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 3u);
    EXPECT_EQ(ir::verifyModule(*module), "");

    // The surviving in-loop guard absorbed the store's dirty intent.
    bool found_write_guard_feeding_load = false;
    for (const auto &block :
         module->findFunction("main")->basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            if (inst->op() == ir::Opcode::Guard && inst->isWrite &&
                block->name() == "loop") {
                found_write_guard_feeding_load = true;
            }
        }
    }
    EXPECT_TRUE(found_write_guard_feeding_load);
}

TEST(RedundantGuardElim, ForeignGuardIsABarrier)
{
    auto module = parseOrDie(testprogs::twoObjectProgram);
    GuardPass guards;
    guards.run(*module);
    ASSERT_EQ(guards.guardsInserted(), 4u);

    RedundantGuardElimPass elim;
    // store %x / load %x are separated by the guard on %y (a runtime
    // entry that can evict %x's frame), and vice versa: nothing merges.
    EXPECT_FALSE(elim.run(*module));
    EXPECT_EQ(elim.guardsEliminated(), 0u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 4u);
}

TEST(GuardCoalesce, CollapsesStructFieldsOntoBase)
{
    auto module = parseOrDie(testprogs::structFieldsProgram);
    GuardPass guards;
    guards.run(*module);
    ASSERT_EQ(guards.guardsInserted(), 6u);

    GuardCoalescePass coalesce(4096);
    EXPECT_TRUE(coalesce.run(*module));
    EXPECT_EQ(coalesce.guardsCoalesced(), 5u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 1u);
    EXPECT_EQ(ir::verifyModule(*module), "");

    // The merged guard carries the members' write intent.
    for (const auto &block :
         module->findFunction("main")->basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            if (inst->op() == ir::Opcode::Guard)
                EXPECT_TRUE(inst->isWrite);
        }
    }
}

TEST(GuardCoalesce, RespectsObjectBoundary)
{
    // Offsets 0 and 1*8 of a 64-byte allocation, but a 8-byte object
    // size: the fields land in different AIFM objects, so they must
    // NOT share one guard.
    const char *text = R"(
func @main() -> i64 {
entry:
  %s = call ptr @malloc(64)
  store 1, %s
  %f1 = gep %s, 1, 8
  store 2, %f1
  ret 0
}
)";
    auto module = parseOrDie(text);
    GuardPass guards;
    guards.run(*module);
    ASSERT_EQ(guards.guardsInserted(), 2u);
    GuardCoalescePass coalesce(8);
    EXPECT_FALSE(coalesce.run(*module));
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 2u);
}

TEST(GuardHoist, HoistsInvariantGuardAndInsertsReval)
{
    auto module = parseOrDie(testprogs::invariantAccumulatorProgram);
    GuardPass guards;
    guards.run(*module);

    GuardHoistPass hoist;
    EXPECT_TRUE(hoist.run(*module));
    // Both in-loop guards (load and store) have the invariant pointer.
    EXPECT_EQ(hoist.guardsHoisted(), 2u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::GuardReval), 2u);
    EXPECT_EQ(ir::verifyModule(*module), "");

    // The arming guards sit in the preheader (entry), flagged.
    const ir::Function *main_fn = module->findFunction("main");
    unsigned armers_in_entry = 0;
    for (const auto &inst : main_fn->entry()->instructions()) {
        if (inst->op() == ir::Opcode::Guard && inst->armsEpoch)
            armers_in_entry++;
    }
    EXPECT_EQ(armers_in_entry, 2u);

    // A second elimination round dedups the preheader armers (their
    // remaining uses are epoch-checked guard.reval operands).
    RedundantGuardElimPass elim;
    EXPECT_TRUE(elim.run(*module));
    EXPECT_EQ(ir::verifyModule(*module), "");
    unsigned armers_after = 0;
    for (const auto &inst : main_fn->entry()->instructions()) {
        if (inst->op() == ir::Opcode::Guard && inst->armsEpoch)
            armers_after++;
    }
    EXPECT_EQ(armers_after, 1u);
}

TEST(GuardHoist, LeavesVariantPointersAlone)
{
    auto module = parseOrDie(testprogs::sumProgram);
    GuardPass guards;
    guards.run(*module);
    GuardHoistPass hoist;
    // Strided geps are not loop-invariant: nothing to hoist.
    EXPECT_FALSE(hoist.run(*module));
    EXPECT_EQ(countOpcode(*module, ir::Opcode::GuardReval), 0u);
}

TEST(GuardOptPipeline, SiteReportAccountsForEveryGuard)
{
    auto module = parseOrDie(testprogs::invariantAccumulatorProgram);
    GuardSiteReport report;
    TrackFmPassOptions options;
    options.siteReport = &report;
    PassManager manager;
    addTrackFmPipeline(manager, options);
    ASSERT_TRUE(manager.run(*module).ok());

    EXPECT_EQ(report.totalInserted(), 4u);
    EXPECT_EQ(report.totalEliminated(), 2u);
    EXPECT_EQ(report.totalHoisted(), 1u);
    ASSERT_EQ(report.sites.size(), 1u);
    EXPECT_EQ(report.sites[0].function, "main");
    // Static remains: the arming entry guard + the exit load guard.
    const StaticGuardCounts counts = countStaticGuards(*module);
    EXPECT_EQ(counts.guards, 2u);
    EXPECT_EQ(counts.revals, 1u);
}

// ---------------------------------------------------------------------
// Differential harness: every test program must behave identically at
// O0 (guard optimization off) and with the full guard-opt pipeline.
// ---------------------------------------------------------------------

std::uint64_t
heapChecksum(System &system)
{
    const std::uint64_t frontier =
        system.runtime().runtime().allocator().frontier();
    std::uint64_t sum = 1469598103934665603ull;
    for (std::uint64_t off = 0; off < frontier; off += 8) {
        std::uint64_t word = 0;
        const std::size_t len = static_cast<std::size_t>(
            frontier - off >= 8 ? 8 : frontier - off);
        system.runtime().runtime().rawRead(off, &word, len);
        sum = (sum ^ word) * 1099511628211ull;
    }
    return sum;
}

SystemConfig
differentialConfig(bool optimize_guards)
{
    SystemConfig config;
    config.runtime.farHeapBytes = 8u << 20;
    config.runtime.localMemBytes = 1u << 20;
    config.runtime.objectSizeBytes = 4096;
    config.passes.optimizeGuards = optimize_guards;
    return config;
}

void
runDifferential(const char *label, const char *text)
{
    SCOPED_TRACE(label);
    System baseline(differentialConfig(false));
    System optimized(differentialConfig(true));

    CompileResult base_compiled = baseline.compile(text);
    CompileResult opt_compiled = optimized.compile(text);
    ASSERT_TRUE(base_compiled.ok()) << base_compiled.error;
    ASSERT_TRUE(opt_compiled.ok()) << opt_compiled.error;

    const RunResult base_run = baseline.run(*base_compiled.program);
    const RunResult opt_run = optimized.run(*opt_compiled.program);

    EXPECT_EQ(base_run.trapped, opt_run.trapped);
    EXPECT_EQ(base_run.trapMessage, opt_run.trapMessage);
    EXPECT_EQ(base_run.returnValue, opt_run.returnValue);
    EXPECT_EQ(base_run.output, opt_run.output);
    EXPECT_EQ(heapChecksum(baseline), heapChecksum(optimized));
}

TEST(GuardOptDifferential, AllTestProgramsMatchAtEveryOptLevel)
{
    runDifferential("sum", testprogs::sumProgram);
    runDifferential("sumI32", testprogs::sumI32Program);
    runDifferential("stack", testprogs::stackProgram);
    runDifferential("o1", testprogs::o1Program);
    runDifferential("invariantAccumulator",
                    testprogs::invariantAccumulatorProgram);
    runDifferential("structFields", testprogs::structFieldsProgram);
    runDifferential("twoObject", testprogs::twoObjectProgram);
    runDifferential("evacuationLoop", testprogs::evacuationLoopProgram);
}

TEST(GuardOptDifferential, MidLoopEvacuationForcesRevalMisses)
{
    System optimized(differentialConfig(true));
    CompileResult compiled =
        optimized.compile(testprogs::evacuationLoopProgram);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const RunResult result = optimized.run(*compiled.program);
    ASSERT_FALSE(result.trapped) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 4950);
    // Every iteration's evacuation bumps the epoch, so the hoisted
    // guard's revalidation must miss and re-run the full guard.
    const GuardStats &stats = optimized.runtime().guardStats();
    EXPECT_GT(stats.revalidations, 0u);
    EXPECT_GT(stats.revalidationMisses, 0u);
}

TEST(GuardOptDifferential, DynamicGuardsDropAtLeastTwofold)
{
    System baseline(differentialConfig(false));
    System optimized(differentialConfig(true));
    CompileResult base_compiled =
        baseline.compile(testprogs::invariantAccumulatorProgram);
    CompileResult opt_compiled =
        optimized.compile(testprogs::invariantAccumulatorProgram);
    ASSERT_TRUE(base_compiled.ok());
    ASSERT_TRUE(opt_compiled.ok());

    const RunResult base_run = baseline.run(*base_compiled.program);
    const RunResult opt_run = optimized.run(*opt_compiled.program);
    ASSERT_EQ(base_run.returnValue, opt_run.returnValue);

    const std::uint64_t base_guards =
        baseline.runtime().guardStats().guardTotal();
    const std::uint64_t opt_guards =
        optimized.runtime().guardStats().guardTotal();
    // Acceptance bar: >= 2x fewer dynamic guards at identical output.
    EXPECT_GE(base_guards, 2 * opt_guards);
}

} // namespace
} // namespace tfm
