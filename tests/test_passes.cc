/**
 * @file
 * Unit tests for the TrackFM pass pipeline and the O1 clean-up passes.
 */

#include <gtest/gtest.h>

#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "ir_test_programs.hh"
#include "passes/o1_passes.hh"
#include "passes/trackfm_passes.hh"

namespace tfm
{
namespace
{

std::unique_ptr<ir::Module>
parseOrDie(const char *text)
{
    auto result = ir::parseModule(text);
    EXPECT_TRUE(result.ok()) << result.error;
    return std::move(result.module);
}

std::uint64_t
countOpcode(const ir::Module &module, ir::Opcode op)
{
    std::uint64_t count = 0;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions())
                count += (inst->op() == op);
        }
    }
    return count;
}

TEST(RuntimeInitPassTest, InsertsHookOnceAtMainEntry)
{
    auto module = parseOrDie(testprogs::sumProgram);
    RuntimeInitPass pass;
    EXPECT_TRUE(pass.run(*module));
    const ir::Function *main_fn = module->findFunction("main");
    const ir::Instruction *first =
        main_fn->entry()->instructions().front().get();
    EXPECT_EQ(first->op(), ir::Opcode::Call);
    EXPECT_EQ(first->callee, "tfm_runtime_init");
    // Idempotent.
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(LibcTransformPassTest, RewritesAllocationCalls)
{
    auto module = parseOrDie(testprogs::sumProgram);
    LibcTransformPass pass;
    EXPECT_TRUE(pass.run(*module));
    bool found = false;
    for (const auto &block :
         module->findFunction("main")->basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            if (inst->op() == ir::Opcode::Call &&
                inst->callee == "tfm_malloc") {
                found = true;
            }
            EXPECT_NE(inst->callee, "malloc");
        }
    }
    EXPECT_TRUE(found);
    EXPECT_FALSE(pass.run(*module)); // idempotent
}

TEST(GuardPassTest, GuardsHeapAccessesOnly)
{
    auto module = parseOrDie(testprogs::sumProgram);
    GuardPass pass;
    EXPECT_TRUE(pass.run(*module));
    // One store (init loop) + one load (sum loop).
    EXPECT_EQ(pass.guardsInserted(), 2u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 2u);
    EXPECT_EQ(ir::verifyModule(*module), "");
    // Idempotent: rerunning adds nothing.
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 2u);
}

TEST(GuardPassTest, LeavesStackProgramAlone)
{
    auto module = parseOrDie(testprogs::stackProgram);
    GuardPass pass;
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 0u);
}

TEST(GuardPassTest, GuardReadWriteMatchesAccess)
{
    auto module = parseOrDie(testprogs::sumProgram);
    GuardPass pass;
    pass.run(*module);
    for (const auto &block :
         module->findFunction("main")->basicBlocks()) {
        for (std::size_t i = 0; i < block->instructions().size(); i++) {
            const ir::Instruction *inst =
                block->instructions()[i].get();
            if (inst->op() != ir::Opcode::Guard)
                continue;
            const ir::Instruction *user =
                block->instructions()[i + 1].get();
            if (user->op() == ir::Opcode::Store) {
                EXPECT_TRUE(inst->isWrite);
            } else if (user->op() == ir::Opcode::Load) {
                EXPECT_FALSE(inst->isWrite);
            }
        }
    }
}

TEST(LoopChunkPassTest, CostModelRejectsLowDensity)
{
    // 8-byte elements at 4 KB objects: density 512 < break-even 730.
    auto module = parseOrDie(testprogs::sumProgram);
    GuardPass guards;
    guards.run(*module);
    TrackFmPassOptions options;
    options.objectSizeBytes = 4096;
    options.chunkPolicy = ChunkPolicy::CostModel;
    LoopChunkPass pass(options);
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(pass.candidatesSeen(), 2u);
    EXPECT_EQ(pass.loopsChunked(), 0u);
}

TEST(LoopChunkPassTest, CostModelAcceptsHighDensity)
{
    // 4-byte elements at 4 KB objects: density 1024 > break-even.
    auto module = parseOrDie(testprogs::sumI32Program);
    GuardPass guards;
    guards.run(*module);
    TrackFmPassOptions options;
    options.objectSizeBytes = 4096;
    options.chunkPolicy = ChunkPolicy::CostModel;
    LoopChunkPass pass(options);
    EXPECT_TRUE(pass.run(*module));
    EXPECT_EQ(pass.loopsChunked(), 2u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Guard), 0u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::ChunkBegin), 2u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::ChunkAccess), 2u);
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(LoopChunkPassTest, AllPolicyChunksRegardlessOfDensity)
{
    auto module = parseOrDie(testprogs::sumProgram);
    GuardPass guards;
    guards.run(*module);
    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::All;
    LoopChunkPass pass(options);
    EXPECT_TRUE(pass.run(*module));
    EXPECT_EQ(pass.loopsChunked(), 2u);
}

TEST(PrefetchInjectionPassTest, AddsPrefetchAfterChunkBegin)
{
    auto module = parseOrDie(testprogs::sumI32Program);
    GuardPass guards;
    guards.run(*module);
    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::CostModel;
    options.prefetchDepth = 6;
    LoopChunkPass chunk(options);
    chunk.run(*module);
    PrefetchInjectionPass prefetch(options);
    EXPECT_TRUE(prefetch.run(*module));
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Prefetch), 2u);
    // Idempotent.
    EXPECT_FALSE(prefetch.run(*module));
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(Pipeline, FullPipelineVerifiesAndGrowsCode)
{
    auto module = parseOrDie(testprogs::sumI32Program);
    const std::uint64_t before = estimateLoweredInstructions(*module);
    PassManager manager;
    TrackFmPassOptions options;
    addTrackFmPipeline(manager, options);
    const PipelineReport report = manager.run(*module);
    EXPECT_TRUE(report.ok()) << report.verifierError;
    EXPECT_EQ(report.entries.size(), 5u);
    const std::uint64_t after = estimateLoweredInstructions(*module);
    // Section 4.6: transformed code is larger (≈2.4x on average for
    // guard-dense code).
    EXPECT_GT(after, before);
}

TEST(Pipeline, GuardDenseCodeGrowsRoughlyPaperFactor)
{
    // A function that is mostly loads/stores should grow by a factor
    // in the couple-of-x range once every access carries a 14-
    // instruction guard.
    auto module = parseOrDie(testprogs::sumProgram);
    const std::uint64_t before = estimateLoweredInstructions(*module);
    PassManager manager;
    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::None; // pure guard expansion
    addTrackFmPipeline(manager, options);
    manager.run(*module);
    const std::uint64_t after = estimateLoweredInstructions(*module);
    const double growth =
        static_cast<double>(after) / static_cast<double>(before);
    EXPECT_GT(growth, 1.5);
    EXPECT_LT(growth, 6.0);
}

TEST(O1Passes, ConstantFoldingFolds)
{
    auto module = parseOrDie(testprogs::o1Program);
    ConstantFoldPass fold;
    EXPECT_TRUE(fold.run(*module));
    DeadCodeElimPass dce;
    EXPECT_TRUE(dce.run(*module));
    // %folded and %dead are gone.
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Mul), 0u);
}

TEST(O1Passes, RedundantLoadElimination)
{
    auto module = parseOrDie(testprogs::o1Program);
    RedundantLoadElimPass pass;
    EXPECT_TRUE(pass.run(*module));
    EXPECT_EQ(pass.loadsRemoved(), 1u);
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Load), 1u);
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(O1Passes, RedundantLoadElimStopsAtStores)
{
    const char *text = R"(
func @f(%p: ptr) -> i64 {
entry:
  %v1 = load i64, %p
  store 5, %p
  %v2 = load i64, %p
  %s = add %v1, %v2
  ret %s
}
)";
    auto module = parseOrDie(text);
    RedundantLoadElimPass pass;
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(countOpcode(*module, ir::Opcode::Load), 2u);
}

TEST(O1Passes, DceKeepsSideEffects)
{
    auto module = parseOrDie(testprogs::sumProgram);
    DeadCodeElimPass pass;
    pass.run(*module);
    // Stores and calls survive even if "unused".
    EXPECT_GT(countOpcode(*module, ir::Opcode::Store), 0u);
    EXPECT_GT(countOpcode(*module, ir::Opcode::Call), 0u);
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(O1Passes, SimplifyCfgDropsUnreachableBlocks)
{
    const char *text = R"(
func @f() -> i64 {
entry:
  ret 1
island:
  ret 2
}
)";
    auto module = parseOrDie(text);
    SimplifyCfgPass pass;
    EXPECT_TRUE(pass.run(*module));
    EXPECT_EQ(module->findFunction("f")->basicBlocks().size(), 1u);
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(O1Passes, O1BeforeGuardsReducesGuardCount)
{
    // The Fig. 17b mechanism at IR level: eliminating redundant loads
    // first means fewer guards inserted.
    auto without_o1 = parseOrDie(testprogs::o1Program);
    auto with_o1 = parseOrDie(testprogs::o1Program);

    // Pretend the alloca'd buffer is heap so its accesses get guarded:
    // rewrite alloca -> malloc call for this test.
    auto heapify = [](ir::Module &module) {
        for (const auto &function : module.allFunctions()) {
            for (const auto &block : function->basicBlocks()) {
                for (const auto &inst : block->instructions()) {
                    if (inst->op() == ir::Opcode::Alloca) {
                        // Loads/stores via an Unknown-provenance value
                        // still get guarded; simply renaming provenance
                        // is easiest via a call marker.
                    }
                }
            }
        }
    };
    (void)heapify;

    // o1Program uses an alloca (NonHeap): guards skip it. Use a heap
    // variant instead.
    const char *heap_text = R"(
func @main() -> i64 {
entry:
  %buf = call ptr @malloc(16)
  store 21, %buf
  %v1 = load i64, %buf
  %v2 = load i64, %buf
  %v3 = load i64, %buf
  %sum1 = add %v1, %v2
  %sum = add %sum1, %v3
  ret %sum
}
)";
    without_o1 = parseOrDie(heap_text);
    with_o1 = parseOrDie(heap_text);

    GuardPass guards_plain;
    guards_plain.run(*without_o1);

    PassManager o1;
    addO1Pipeline(o1);
    EXPECT_TRUE(o1.run(*with_o1).ok());
    GuardPass guards_after_o1;
    guards_after_o1.run(*with_o1);

    EXPECT_EQ(guards_plain.guardsInserted(), 4u);
    EXPECT_EQ(guards_after_o1.guardsInserted(), 2u);
}

TEST(Pipeline, ReportTracksInstructionCounts)
{
    auto module = parseOrDie(testprogs::sumProgram);
    PassManager manager;
    addTrackFmPipeline(manager, TrackFmPassOptions{});
    const PipelineReport report = manager.run(*module);
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report.instructionsAfter, report.instructionsBefore);
}

} // namespace
} // namespace tfm
