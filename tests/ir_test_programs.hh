/**
 * @file
 * Shared textual IR programs used across the compiler tests.
 */

#ifndef TRACKFM_TESTS_IR_TEST_PROGRAMS_HH
#define TRACKFM_TESTS_IR_TEST_PROGRAMS_HH

#include <cstdint>

namespace tfm::testprogs
{

/**
 * Initialize a 1000-element i64 heap array with a[i] = i, then sum it.
 * Expected result: 499500.
 */
inline const char *const sumProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br init
init:
  %i = phi i64 [ 0, entry ], [ %i2, init ]
  %p = gep %a, %i, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 1000
  condbr %c, init, compute
compute:
  br loop
loop:
  %j = phi i64 [ 0, compute ], [ %j2, loop ]
  %acc = phi i64 [ 0, compute ], [ %acc2, loop ]
  %q = gep %a, %j, 8
  %v = load i64, %q
  %acc2 = add %acc, %v
  %j2 = add %j, 1
  %c2 = icmp.slt %j2, 1000
  condbr %c2, loop, exit
exit:
  ret %acc2
}
)";

/**
 * Same computation over 4-byte elements (2000 of them, a[i] = i % 7),
 * giving object density 1024 at 4 KB objects — above the chunking
 * break-even. Expected result: sum of (i % 7) for i in [0, 2000) =
 * 285 * 21 + (0+1+2+3+4) = 5995.
 */
inline const char *const sumI32Program = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br init
init:
  %i = phi i64 [ 0, entry ], [ %i2, init ]
  %p = gep %a, %i, 4
  %m = srem %i, 7
  %m32 = trunc %m to i32
  store %m32, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 2000
  condbr %c, init, compute
compute:
  br loop
loop:
  %j = phi i64 [ 0, compute ], [ %j2, loop ]
  %acc = phi i64 [ 0, compute ], [ %acc2, loop ]
  %q = gep %a, %j, 4
  %v = load i32, %q
  %acc2 = add %acc, %v
  %j2 = add %j, 1
  %c2 = icmp.slt %j2, 2000
  condbr %c2, loop, exit
exit:
  ret %acc2
}
)";

/** Stack-only computation: no heap access, so no guards are needed. */
inline const char *const stackProgram = R"(
func @main() -> i64 {
entry:
  %buf = alloca 80
  br fill
fill:
  %i = phi i64 [ 0, entry ], [ %i2, fill ]
  %p = gep %buf, %i, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 10
  condbr %c, fill, read
read:
  %q = gep %buf, 4, 8
  %v = load i64, %q
  ret %v
}
)";

/**
 * A function with calls, casts, floats, and redundant loads (for the
 * O1 pipeline): computes 3.5 * 2 as an integer plus a re-loaded value.
 */
inline const char *const o1Program = R"(
func @main() -> i64 {
entry:
  %buf = alloca 16
  store 21, %buf
  %v1 = load i64, %buf
  %v2 = load i64, %buf
  %dead = mul 3, 4
  %folded = add 20, 22
  %sum = add %v1, %v2
  %total = add %sum, %folded
  ret %total
}
)";

/**
 * A heap accumulator updated through a loop-invariant pointer: guard
 * elimination merges the load/store guard pair and hoisting converts
 * the survivor into a preheader guard + per-iteration guard.reval.
 * Expected result: 499500.
 */
inline const char *const invariantAccumulatorProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8)
  store 0, %a
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %v = load i64, %a
  %v2 = add %v, %i
  store %v2, %a
  %i2 = add %i, 1
  %c = icmp.slt %i2, 1000
  condbr %c, loop, exit
exit:
  %r = load i64, %a
  ret %r
}
)";

/**
 * Three i64 fields of one 32-byte heap object written then re-read:
 * all six guards coalesce onto the allocation base. Expected result:
 * 66.
 */
inline const char *const structFieldsProgram = R"(
func @main() -> i64 {
entry:
  %s = call ptr @malloc(32)
  store 11, %s
  %f1 = gep %s, 1, 8
  store 22, %f1
  %f2 = gep %s, 2, 8
  store 33, %f2
  %v0 = load i64, %s
  %v1 = load i64, %f1
  %v2 = load i64, %f2
  %t = add %v0, %v1
  %r = add %t, %v2
  ret %r
}
)";

/**
 * The invariant-accumulator loop with a forced full evacuation every
 * iteration: each guard.reval of the hoisted guard misses (the epoch
 * advanced) and must re-run the full guard. Expected result: 4950.
 */
inline const char *const evacuationLoopProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8)
  store 0, %a
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %v = load i64, %a
  %v2 = add %v, %i
  store %v2, %a
  call void @tfm_evacuate_all()
  %i2 = add %i, 1
  %c = icmp.slt %i2, 100
  condbr %c, loop, exit
exit:
  %r = load i64, %a
  ret %r
}
)";

/**
 * Guards on two different objects interleaved in one block: the foreign
 * guards act as barriers, so neither elimination nor coalescing may
 * merge across them, while the final re-reads still collapse onto their
 * own bases. Expected result: 30.
 */
inline const char *const twoObjectProgram = R"(
func @main() -> i64 {
entry:
  %x = call ptr @malloc(16)
  %y = call ptr @malloc(16)
  store 10, %x
  store 20, %y
  %vx = load i64, %x
  %vy = load i64, %y
  %r = add %vx, %vy
  ret %r
}
)";

/**
 * Two guards on one object in sibling branches of a diamond plus a
 * third at the join. No guard dominates another, so redundant-guard
 * elimination must keep all three. Expected result: 7.
 */
inline const char *const diamondProgram = R"(
func @main() -> i64 {
entry:
  %p = call ptr @malloc(16)
  %v = call i64 @flag()
  %c = icmp.slt %v, 3
  condbr %c, left, right
left:
  store 7, %p
  br join
right:
  store 9, %p
  br join
join:
  %r = load i64, %p
  ret %r
}
func @flag() -> i64 {
entry:
  ret 1
}
)";

/**
 * A helper call that reaches tfm_evacuate_all between a guarded store
 * and a same-pointer load: the call is a runtime barrier, so the two
 * accesses must keep separate guards. Expected result: 5.
 */
inline const char *const evictBetweenProgram = R"(
func @main() -> i64 {
entry:
  %p = call ptr @malloc(8)
  store 5, %p
  %e = call i64 @evict()
  %v = load i64, %p
  ret %v
}
func @evict() -> i64 {
entry:
  call void @tfm_evacuate_all()
  ret 0
}
)";

/**
 * Two runs of same-base constant-offset guards split by an evacuating
 * call: coalescing may merge within each run but never across the
 * call. Expected result: 66.
 */
inline const char *const evictSplitRunProgram = R"(
func @main() -> i64 {
entry:
  %s = call ptr @malloc(32)
  store 11, %s
  %f1 = gep %s, 1, 8
  store 22, %f1
  %e = call i64 @evict()
  %f2 = gep %s, 2, 8
  store 33, %f2
  %v0 = load i64, %s
  %v1 = load i64, %f1
  %v2 = load i64, %f2
  %t0 = add %v0, %v1
  %t1 = add %t0, %v2
  ret %t1
}
func @evict() -> i64 {
entry:
  call void @tfm_evacuate_all()
  ret 0
}
)";

/**
 * A hand-armed epoch guard feeding a loop's guard.reval, adjacent (in
 * the coalescing sense) to a plain guard on the same allocation:
 * coalescing must not fold the armer into a merged guard, because the
 * merged guard would not arm the epoch the reval depends on. The
 * call between %g0 and %ga keeps elimination from merging them first.
 * Expected result: 25.
 */
inline const char *const armedPairProgram = R"(
func @main() -> i64 {
entry:
  %p = call ptr @malloc(32)
  %g0 = guard.w %p
  store 5, %g0
  %e = call i64 @flag()
  %ga = guard.w %p, epoch
  %v0 = load i64, %ga
  %f1 = gep %p, 1, 8
  %g1 = guard.w %f1
  store %v0, %g1
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %acc = phi i64 [ 0, entry ], [ %acc2, loop ]
  %gr = guard.reval.r %ga, %p
  %v = load i64, %gr
  %acc2 = add %acc, %v
  %i2 = add %i, 1
  %c = icmp.slt %i2, 4
  condbr %c, loop, exit
exit:
  %gx = guard.r %p
  %r = load i64, %gx
  %t = add %acc2, %r
  ret %t
}
func @flag() -> i64 {
entry:
  ret 1
}
)";

/**
 * Strided sweeps (a[2*i], byte stride 16 over 8-byte elements): the
 * guarded pointer changes every iteration, so hoisting must leave the
 * in-loop guards alone. Expected result: 499500.
 */
inline const char *const stridedProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(16000)
  br init
init:
  %i = phi i64 [ 0, entry ], [ %i2, init ]
  %d = mul %i, 2
  %p = gep %a, %d, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 1000
  condbr %c, init, compute
compute:
  br loop
loop:
  %j = phi i64 [ 0, compute ], [ %j2, loop ]
  %acc = phi i64 [ 0, compute ], [ %acc2, loop ]
  %e = mul %j, 2
  %q = gep %a, %e, 8
  %v = load i64, %q
  %acc2 = add %acc, %v
  %j2 = add %j, 1
  %c2 = icmp.slt %j2, 1000
  condbr %c2, loop, exit
exit:
  ret %acc2
}
)";

/**
 * One 8000-byte allocation (two 4096-byte AIFM objects) accessed at
 * offsets 0 and 4200: both offsets resolve against the same base, but
 * a merged guard would translate only the first object's frame, so
 * coalescing must respect min(object size, allocation size). The
 * static checker does not model offsets — this is the designated
 * dynamic-only mutant, caught by the sanitizer's frame-escape check.
 * Expected result: 33.
 */
inline const char *const wideObjectProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  store 11, %a
  %q = gep %a, 525, 8
  store 22, %q
  %v0 = load i64, %a
  %v1 = load i64, %q
  %r = add %v0, %v1
  ret %r
}
)";

/**
 * The full differential corpus: every test program with its expected
 * result, shared by the safety suite (checker/sanitizer/mutation
 * harness) and the engine-differential suite (bytecode vs reference).
 */
struct CorpusProgram
{
    const char *name;
    const char *source;
    std::int64_t expected;
};

inline const CorpusProgram kCorpus[] = {
    {"sum", sumProgram, 499500},
    {"sumI32", sumI32Program, 5995},
    {"stack", stackProgram, 4},
    {"o1", o1Program, 84},
    {"invariantAccumulator", invariantAccumulatorProgram, 499500},
    {"structFields", structFieldsProgram, 66},
    {"evacuationLoop", evacuationLoopProgram, 4950},
    {"twoObject", twoObjectProgram, 30},
    {"diamond", diamondProgram, 7},
    {"evictBetween", evictBetweenProgram, 5},
    {"evictSplitRun", evictSplitRunProgram, 66},
    {"armedPair", armedPairProgram, 25},
    {"strided", stridedProgram, 499500},
    {"wideObject", wideObjectProgram, 33},
};

} // namespace tfm::testprogs

#endif // TRACKFM_TESTS_IR_TEST_PROGRAMS_HH
