/**
 * @file
 * Shared textual IR programs used across the compiler tests.
 */

#ifndef TRACKFM_TESTS_IR_TEST_PROGRAMS_HH
#define TRACKFM_TESTS_IR_TEST_PROGRAMS_HH

namespace tfm::testprogs
{

/**
 * Initialize a 1000-element i64 heap array with a[i] = i, then sum it.
 * Expected result: 499500.
 */
inline const char *const sumProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br init
init:
  %i = phi i64 [ 0, entry ], [ %i2, init ]
  %p = gep %a, %i, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 1000
  condbr %c, init, compute
compute:
  br loop
loop:
  %j = phi i64 [ 0, compute ], [ %j2, loop ]
  %acc = phi i64 [ 0, compute ], [ %acc2, loop ]
  %q = gep %a, %j, 8
  %v = load i64, %q
  %acc2 = add %acc, %v
  %j2 = add %j, 1
  %c2 = icmp.slt %j2, 1000
  condbr %c2, loop, exit
exit:
  ret %acc2
}
)";

/**
 * Same computation over 4-byte elements (2000 of them, a[i] = i % 7),
 * giving object density 1024 at 4 KB objects — above the chunking
 * break-even. Expected result: sum of (i % 7) for i in [0, 2000) =
 * 285 * 21 + (0+1+2+3+4) = 5995.
 */
inline const char *const sumI32Program = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br init
init:
  %i = phi i64 [ 0, entry ], [ %i2, init ]
  %p = gep %a, %i, 4
  %m = srem %i, 7
  %m32 = trunc %m to i32
  store %m32, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 2000
  condbr %c, init, compute
compute:
  br loop
loop:
  %j = phi i64 [ 0, compute ], [ %j2, loop ]
  %acc = phi i64 [ 0, compute ], [ %acc2, loop ]
  %q = gep %a, %j, 4
  %v = load i32, %q
  %acc2 = add %acc, %v
  %j2 = add %j, 1
  %c2 = icmp.slt %j2, 2000
  condbr %c2, loop, exit
exit:
  ret %acc2
}
)";

/** Stack-only computation: no heap access, so no guards are needed. */
inline const char *const stackProgram = R"(
func @main() -> i64 {
entry:
  %buf = alloca 80
  br fill
fill:
  %i = phi i64 [ 0, entry ], [ %i2, fill ]
  %p = gep %buf, %i, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 10
  condbr %c, fill, read
read:
  %q = gep %buf, 4, 8
  %v = load i64, %q
  ret %v
}
)";

/**
 * A function with calls, casts, floats, and redundant loads (for the
 * O1 pipeline): computes 3.5 * 2 as an integer plus a re-loaded value.
 */
inline const char *const o1Program = R"(
func @main() -> i64 {
entry:
  %buf = alloca 16
  store 21, %buf
  %v1 = load i64, %buf
  %v2 = load i64, %buf
  %dead = mul 3, 4
  %folded = add 20, 22
  %sum = add %v1, %v2
  %total = add %sum, %folded
  ret %total
}
)";

/**
 * A heap accumulator updated through a loop-invariant pointer: guard
 * elimination merges the load/store guard pair and hoisting converts
 * the survivor into a preheader guard + per-iteration guard.reval.
 * Expected result: 499500.
 */
inline const char *const invariantAccumulatorProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8)
  store 0, %a
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %v = load i64, %a
  %v2 = add %v, %i
  store %v2, %a
  %i2 = add %i, 1
  %c = icmp.slt %i2, 1000
  condbr %c, loop, exit
exit:
  %r = load i64, %a
  ret %r
}
)";

/**
 * Three i64 fields of one 32-byte heap object written then re-read:
 * all six guards coalesce onto the allocation base. Expected result:
 * 66.
 */
inline const char *const structFieldsProgram = R"(
func @main() -> i64 {
entry:
  %s = call ptr @malloc(32)
  store 11, %s
  %f1 = gep %s, 1, 8
  store 22, %f1
  %f2 = gep %s, 2, 8
  store 33, %f2
  %v0 = load i64, %s
  %v1 = load i64, %f1
  %v2 = load i64, %f2
  %t = add %v0, %v1
  %r = add %t, %v2
  ret %r
}
)";

/**
 * The invariant-accumulator loop with a forced full evacuation every
 * iteration: each guard.reval of the hoisted guard misses (the epoch
 * advanced) and must re-run the full guard. Expected result: 4950.
 */
inline const char *const evacuationLoopProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8)
  store 0, %a
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %v = load i64, %a
  %v2 = add %v, %i
  store %v2, %a
  call void @tfm_evacuate_all()
  %i2 = add %i, 1
  %c = icmp.slt %i2, 100
  condbr %c, loop, exit
exit:
  %r = load i64, %a
  ret %r
}
)";

/**
 * Guards on two different objects interleaved in one block: the foreign
 * guards act as barriers, so neither elimination nor coalescing may
 * merge across them, while the final re-reads still collapse onto their
 * own bases. Expected result: 30.
 */
inline const char *const twoObjectProgram = R"(
func @main() -> i64 {
entry:
  %x = call ptr @malloc(16)
  %y = call ptr @malloc(16)
  store 10, %x
  store 20, %y
  %vx = load i64, %x
  %vy = load i64, %y
  %r = add %vx, %vy
  ret %r
}
)";

} // namespace tfm::testprogs

#endif // TRACKFM_TESTS_IR_TEST_PROGRAMS_HH
