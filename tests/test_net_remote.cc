/**
 * @file
 * Unit tests for the network model and the remote memory node.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/network_model.hh"
#include "remote/remote_node.hh"
#include "sim/cost_params.hh"
#include "sim/cycle_clock.hh"

namespace tfm
{
namespace
{

CostParams
simpleCosts()
{
    CostParams c;
    c.netLatencyCycles = 1000;
    c.netBytesPerCycle = 1.0;
    c.perMessageCpuCycles = 10;
    c.prefetchIssueCycles = 5;
    return c;
}

TEST(NetworkModel, SyncFetchChargesLatencyPlusTransfer)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    net.fetchSync(500);
    // 10 (cpu) -> request departs at 10; arrival = 10 + 1000 + 500.
    EXPECT_EQ(clock.now(), 10u + 1000u + 500u);
    EXPECT_EQ(net.stats().bytesFetched, 500u);
    EXPECT_EQ(net.stats().fetchMessages, 1u);
}

TEST(NetworkModel, BandwidthSerializesBackToBackTransfers)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    // Two async fetches issued immediately: the second serializes after
    // the first on the inbound link.
    const std::uint64_t a1 = net.fetchAsync(1000);
    const std::uint64_t a2 = net.fetchAsync(1000);
    EXPECT_GT(a2, a1);
    EXPECT_GE(a2 - a1, 1000u); // at least one transfer time apart
}

TEST(NetworkModel, AsyncFetchOnlyChargesIssueCost)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    net.fetchAsync(4096);
    EXPECT_EQ(clock.now(), c.prefetchIssueCycles);
}

TEST(NetworkModel, WaitUntilBlocksToArrival)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    const std::uint64_t arrival = net.fetchAsync(100);
    net.waitUntil(arrival);
    EXPECT_EQ(clock.now(), arrival);
    // Waiting again is free.
    net.waitUntil(arrival);
    EXPECT_EQ(clock.now(), arrival);
}

TEST(NetworkModel, WritebackCountsBytesWithoutBlocking)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    net.writebackAsync(4096);
    EXPECT_EQ(clock.now(), c.perMessageCpuCycles);
    EXPECT_EQ(net.stats().bytesWrittenBack, 4096u);
    EXPECT_EQ(net.stats().totalBytes(), 4096u);
}

TEST(NetworkModel, ResetStatsClearsCounters)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    net.fetchSync(10);
    net.resetStats();
    EXPECT_EQ(net.stats().bytesFetched, 0u);
    EXPECT_EQ(net.stats().fetchMessages, 0u);
}

TEST(NetworkModel, BatchFetchChargesOneMessageForManyPayloads)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    net.fetchBatchSync(4 * 500, 4);
    // One per-message CPU charge plus three scatter-gather entries;
    // the 2000 batched bytes serialize behind a single latency.
    const std::uint64_t issue =
        c.perMessageCpuCycles + 3 * c.perPayloadCpuCycles;
    EXPECT_EQ(clock.now(), issue + 1000u + 2000u);
    EXPECT_EQ(net.stats().fetchMessages, 1u);
    EXPECT_EQ(net.stats().fetchPayloads, 4u);
    EXPECT_EQ(net.stats().fetchBatches, 1u);
    EXPECT_EQ(net.stats().maxFetchBatch, 4u);
    EXPECT_EQ(net.stats().bytesFetched, 2000u);
    EXPECT_DOUBLE_EQ(net.stats().fetchCoalescing(), 4.0);
}

TEST(NetworkModel, BatchWritebackChargesOneMessage)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    net.writebackBatch(2 * 4096, 2);
    EXPECT_EQ(clock.now(), c.perMessageCpuCycles + c.perPayloadCpuCycles);
    EXPECT_EQ(net.stats().writebackMessages, 1u);
    EXPECT_EQ(net.stats().writebackPayloads, 2u);
    EXPECT_EQ(net.stats().writebackBatches, 1u);
    EXPECT_EQ(net.stats().bytesWrittenBack, 2u * 4096u);
}

TEST(NetworkModel, SingletonBatchMatchesUnbatchedCharges)
{
    const CostParams c = simpleCosts();
    CycleClock clock_a;
    NetworkModel net_a(clock_a, c);
    net_a.fetchSync(500);
    CycleClock clock_b;
    NetworkModel net_b(clock_b, c);
    net_b.fetchBatchSync(500, 1);
    // A one-payload batch degenerates to the plain message: identical
    // cycle charges, and it does not count as a coalesced batch.
    EXPECT_EQ(clock_a.now(), clock_b.now());
    EXPECT_EQ(net_b.stats().fetchMessages, 1u);
    EXPECT_EQ(net_b.stats().fetchPayloads, 1u);
    EXPECT_EQ(net_b.stats().fetchBatches, 0u);
}

TEST(NetworkModel, BatchedMessagesAreCheaperAtEqualBytes)
{
    // Calibrated costs: the scatter-gather entry (40) is far cheaper
    // than a full message issue, so coalescing saves issue-side CPU.
    const CostParams c;
    CycleClock clock_a;
    NetworkModel net_a(clock_a, c);
    for (int i = 0; i < 8; i++)
        net_a.fetchAsync(1000);
    CycleClock clock_b;
    NetworkModel net_b(clock_b, c);
    net_b.fetchBatchAsync(8 * 1000, 8);
    EXPECT_EQ(net_a.stats().bytesFetched, net_b.stats().bytesFetched);
    EXPECT_LT(clock_b.now(), clock_a.now());
    EXPECT_EQ(net_a.stats().fetchMessages, 8u);
    EXPECT_EQ(net_b.stats().fetchMessages, 1u);
}

TEST(NetworkModel, SegmentedBatchStreamsPayloadsInOrder)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    std::vector<std::uint64_t> arrivals;
    const std::uint64_t last =
        net.fetchBatchAsyncSegmented({100, 200, 300}, arrivals);
    ASSERT_EQ(arrivals.size(), 3u);
    // Payloads arrive in order, each after its own serialization; the
    // whole train still rides one message and one latency.
    EXPECT_EQ(arrivals[1] - arrivals[0], 200u);
    EXPECT_EQ(arrivals[2] - arrivals[1], 300u);
    EXPECT_EQ(arrivals[2], last);
    EXPECT_GE(arrivals[0], c.netLatencyCycles + 100u);
    EXPECT_EQ(net.stats().fetchMessages, 1u);
    EXPECT_EQ(net.stats().fetchPayloads, 3u);
    EXPECT_EQ(net.stats().bytesFetched, 600u);
}

TEST(RemoteNode, BatchFetchCopiesScatteredSegments)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    RemoteNode node(1 << 16);

    std::vector<std::byte> a(64, std::byte{0x11});
    std::vector<std::byte> b(128, std::byte{0x22});
    std::vector<std::byte> d(32, std::byte{0x33});
    node.rawWrite(0, a.data(), a.size());
    node.rawWrite(4096, b.data(), b.size());
    node.rawWrite(9000, d.data(), d.size());

    std::vector<std::byte> out_a(64), out_b(128), out_d(32);
    const std::uint64_t arrival = node.fetchBatchAsync(
        net, {{0, out_a.data(), out_a.size()},
              {4096, out_b.data(), out_b.size()},
              {9000, out_d.data(), out_d.size()}});
    net.waitUntil(arrival);
    EXPECT_EQ(std::memcmp(a.data(), out_a.data(), a.size()), 0);
    EXPECT_EQ(std::memcmp(b.data(), out_b.data(), b.size()), 0);
    EXPECT_EQ(std::memcmp(d.data(), out_d.data(), d.size()), 0);
    EXPECT_EQ(node.stats().fetchRequests, 1u);
    EXPECT_EQ(node.stats().fetchPayloads, 3u);
    EXPECT_EQ(net.stats().fetchMessages, 1u);
    EXPECT_EQ(net.stats().bytesFetched, 64u + 128u + 32u);
}

TEST(RemoteNode, BatchWritebackPersistsAllSegments)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    RemoteNode node(1 << 16);

    std::vector<std::byte> a(64, std::byte{0xAA});
    std::vector<std::byte> b(64, std::byte{0xBB});
    node.writebackBatch(net, {{256, a.data(), a.size()},
                              {8192, b.data(), b.size()}});

    std::vector<std::byte> out(64);
    node.rawRead(256, out.data(), out.size());
    EXPECT_EQ(std::memcmp(a.data(), out.data(), 64), 0);
    node.rawRead(8192, out.data(), out.size());
    EXPECT_EQ(std::memcmp(b.data(), out.data(), 64), 0);
    EXPECT_EQ(node.stats().writebackRequests, 1u);
    EXPECT_EQ(node.stats().writebackPayloads, 2u);
    EXPECT_EQ(net.stats().writebackMessages, 1u);
}

TEST(RemoteNode, FetchReturnsWrittenData)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    RemoteNode node(1 << 16);

    std::vector<std::byte> payload(256);
    for (int i = 0; i < 256; i++)
        payload[i] = static_cast<std::byte>(i);
    node.rawWrite(1024, payload.data(), payload.size());

    std::vector<std::byte> out(256);
    node.fetch(net, 1024, out.data(), out.size());
    EXPECT_EQ(std::memcmp(payload.data(), out.data(), 256), 0);
    EXPECT_EQ(node.stats().fetchRequests, 1u);
    EXPECT_GT(clock.now(), 0u);
}

TEST(RemoteNode, WritebackPersists)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    RemoteNode node(1 << 16);

    std::vector<std::byte> payload(64, std::byte{0xAB});
    node.writeback(net, 512, payload.data(), payload.size());

    std::vector<std::byte> out(64);
    node.rawRead(512, out.data(), out.size());
    EXPECT_EQ(std::memcmp(payload.data(), out.data(), 64), 0);
    EXPECT_EQ(node.stats().writebackRequests, 1u);
}

TEST(RemoteNode, AsyncFetchReportsArrival)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    RemoteNode node(1 << 16);

    std::vector<std::byte> out(128);
    const std::uint64_t arrival =
        node.fetchAsync(net, 0, out.data(), out.size());
    EXPECT_GT(arrival, clock.now());
}

TEST(RemoteNodeDeath, OutOfRangeAccessPanics)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    RemoteNode node(1024);
    std::vector<std::byte> buffer(64);
    EXPECT_DEATH(node.rawWrite(1000, buffer.data(), 64), "range");
}

} // namespace
} // namespace tfm
