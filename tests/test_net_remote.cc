/**
 * @file
 * Unit tests for the network model and the remote memory node.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/network_model.hh"
#include "remote/remote_node.hh"
#include "sim/cost_params.hh"
#include "sim/cycle_clock.hh"

namespace tfm
{
namespace
{

CostParams
simpleCosts()
{
    CostParams c;
    c.netLatencyCycles = 1000;
    c.netBytesPerCycle = 1.0;
    c.perMessageCpuCycles = 10;
    c.prefetchIssueCycles = 5;
    return c;
}

TEST(NetworkModel, SyncFetchChargesLatencyPlusTransfer)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    net.fetchSync(500);
    // 10 (cpu) -> request departs at 10; arrival = 10 + 1000 + 500.
    EXPECT_EQ(clock.now(), 10u + 1000u + 500u);
    EXPECT_EQ(net.stats().bytesFetched, 500u);
    EXPECT_EQ(net.stats().fetchMessages, 1u);
}

TEST(NetworkModel, BandwidthSerializesBackToBackTransfers)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    // Two async fetches issued immediately: the second serializes after
    // the first on the inbound link.
    const std::uint64_t a1 = net.fetchAsync(1000);
    const std::uint64_t a2 = net.fetchAsync(1000);
    EXPECT_GT(a2, a1);
    EXPECT_GE(a2 - a1, 1000u); // at least one transfer time apart
}

TEST(NetworkModel, AsyncFetchOnlyChargesIssueCost)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    net.fetchAsync(4096);
    EXPECT_EQ(clock.now(), c.prefetchIssueCycles);
}

TEST(NetworkModel, WaitUntilBlocksToArrival)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    const std::uint64_t arrival = net.fetchAsync(100);
    net.waitUntil(arrival);
    EXPECT_EQ(clock.now(), arrival);
    // Waiting again is free.
    net.waitUntil(arrival);
    EXPECT_EQ(clock.now(), arrival);
}

TEST(NetworkModel, WritebackCountsBytesWithoutBlocking)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    net.writebackAsync(4096);
    EXPECT_EQ(clock.now(), c.perMessageCpuCycles);
    EXPECT_EQ(net.stats().bytesWrittenBack, 4096u);
    EXPECT_EQ(net.stats().totalBytes(), 4096u);
}

TEST(NetworkModel, ResetStatsClearsCounters)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    net.fetchSync(10);
    net.resetStats();
    EXPECT_EQ(net.stats().bytesFetched, 0u);
    EXPECT_EQ(net.stats().fetchMessages, 0u);
}

TEST(RemoteNode, FetchReturnsWrittenData)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    RemoteNode node(1 << 16);

    std::vector<std::byte> payload(256);
    for (int i = 0; i < 256; i++)
        payload[i] = static_cast<std::byte>(i);
    node.rawWrite(1024, payload.data(), payload.size());

    std::vector<std::byte> out(256);
    node.fetch(net, 1024, out.data(), out.size());
    EXPECT_EQ(std::memcmp(payload.data(), out.data(), 256), 0);
    EXPECT_EQ(node.stats().fetchRequests, 1u);
    EXPECT_GT(clock.now(), 0u);
}

TEST(RemoteNode, WritebackPersists)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    RemoteNode node(1 << 16);

    std::vector<std::byte> payload(64, std::byte{0xAB});
    node.writeback(net, 512, payload.data(), payload.size());

    std::vector<std::byte> out(64);
    node.rawRead(512, out.data(), out.size());
    EXPECT_EQ(std::memcmp(payload.data(), out.data(), 64), 0);
    EXPECT_EQ(node.stats().writebackRequests, 1u);
}

TEST(RemoteNode, AsyncFetchReportsArrival)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    RemoteNode node(1 << 16);

    std::vector<std::byte> out(128);
    const std::uint64_t arrival =
        node.fetchAsync(net, 0, out.data(), out.size());
    EXPECT_GT(arrival, clock.now());
}

TEST(RemoteNodeDeath, OutOfRangeAccessPanics)
{
    CycleClock clock;
    const CostParams c = simpleCosts();
    NetworkModel net(clock, c);
    RemoteNode node(1024);
    std::vector<std::byte> buffer(64);
    EXPECT_DEATH(node.rawWrite(1000, buffer.data(), 64), "range");
}

} // namespace
} // namespace tfm
