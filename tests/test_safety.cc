/**
 * @file
 * Tests for the guard-safety checker (analysis/guard_safety), its
 * pipeline integration (passes/safety_check_pass, SystemConfig::
 * checkSafety), the interpreter's farmem sanitizer, and the guard-opt
 * mutation harness: ten deliberate legality bugs injected into the
 * guard optimization suite, each of which the static checker (or, for
 * the designated dynamic-only mutant, the sanitizer) must flag, while
 * the unmutated pipeline stays diagnostic-free on the whole corpus.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/guard_safety.hh"
#include "core/system.hh"
#include "interp/interpreter.hh"
#include "ir_test_programs.hh"
#include "passes/guard_opt.hh"

namespace tfm
{
namespace
{

using testprogs::armedPairProgram;
using testprogs::diamondProgram;
using testprogs::evictBetweenProgram;
using testprogs::evictSplitRunProgram;
using testprogs::stridedProgram;
using testprogs::wideObjectProgram;

/** Restores the unmutated pipeline when a test scope exits. */
struct MutationScope
{
    explicit MutationScope(GuardOptMutation mutation)
    {
        setGuardOptMutation(mutation);
    }
    ~MutationScope() { setGuardOptMutation(GuardOptMutation::None); }
};

SystemConfig
checkedConfig(bool optimize_guards)
{
    SystemConfig config;
    config.runtime.farHeapBytes = 4 << 20;
    config.runtime.localMemBytes = 256 << 10;
    config.checkSafety = true;
    config.passes.optimizeGuards = optimize_guards;
    return config;
}

bool
reportHasKind(const SafetyReport &report, SafetyDiagKind kind)
{
    for (const SafetyReport::PassEntry &entry : report.perPass) {
        for (const SafetyDiagnostic &diag : entry.diagnostics) {
            if (diag.kind == kind)
                return true;
        }
    }
    return false;
}

std::string
reportToString(const SafetyReport &report)
{
    std::string text;
    for (const SafetyReport::PassEntry &entry : report.perPass) {
        for (const SafetyDiagnostic &diag : entry.diagnostics)
            text += "after " + entry.pass + ": " +
                    formatSafetyDiagnostic(diag) + "\n";
    }
    return text;
}

using CorpusEntry = testprogs::CorpusProgram;
constexpr const auto &kCorpus = testprogs::kCorpus;

TEST(SafetyChecker, UnmutatedPipelineIsCleanAtEveryOptLevel)
{
    for (const CorpusEntry &entry : kCorpus) {
        for (const bool optimize : {true, false}) {
            System system(checkedConfig(optimize));
            CompileResult compiled = system.compile(entry.source);
            ASSERT_TRUE(compiled.ok())
                << entry.name << " optimize=" << optimize << ": "
                << compiled.error;
            EXPECT_TRUE(system.safetyReport().clean())
                << entry.name << " optimize=" << optimize << "\n"
                << reportToString(system.safetyReport());
            const RunResult result = system.run(*compiled.program);
            ASSERT_TRUE(result.ok())
                << entry.name << ": " << result.trapMessage;
            EXPECT_EQ(result.returnValue, entry.expected) << entry.name;
        }
    }
}

TEST(SafetyChecker, ReportCoversEveryPassFromPointerGuardsOn)
{
    System system(checkedConfig(true));
    ASSERT_TRUE(system.compile(testprogs::sumProgram).ok());
    const SafetyReport &report = system.safetyReport();
    ASSERT_FALSE(report.perPass.empty());
    EXPECT_EQ(report.perPass.front().pass, "pointer-guards");
    std::vector<std::string> checked;
    for (const SafetyReport::PassEntry &entry : report.perPass)
        checked.push_back(entry.pass);
    // Pre- and post-optimization coverage: the raw guarded IR and the
    // output of every optimizing stage are both checked.
    EXPECT_NE(std::find(checked.begin(), checked.end(), "guard-elim"),
              checked.end());
    EXPECT_NE(std::find(checked.begin(), checked.end(), "guard-hoist"),
              checked.end());
    EXPECT_EQ(checked.back(), "prefetch-injection");
    // O1 passes run before pointer-guards and are never checked.
    EXPECT_EQ(std::find(checked.begin(), checked.end(), "dce"),
              checked.end());
}

TEST(SafetySanitizer, CleanProgramsRunUnchanged)
{
    for (const CorpusEntry &entry : kCorpus) {
        System system(checkedConfig(true));
        CompileResult compiled = system.compile(entry.source);
        ASSERT_TRUE(compiled.ok()) << entry.name;
        Interpreter interp(compiled.program->ir(), system.runtime());
        interp.enableSanitizer();
        const RunResult result = interp.run("main");
        ASSERT_TRUE(result.ok())
            << entry.name << ": " << result.trapMessage;
        EXPECT_EQ(result.returnValue, entry.expected) << entry.name;
    }
}

/** One injected legality bug the static checker must flag. */
struct StaticMutantCase
{
    GuardOptMutation mutation;
    const char *name;
    const char *source;
    SafetyDiagKind expected;
};

const StaticMutantCase kStaticMutants[] = {
    {GuardOptMutation::ElimSkipDominance, "ElimSkipDominance",
     diamondProgram, SafetyDiagKind::SsaDominance},
    {GuardOptMutation::ElimSkipBarrierCheck, "ElimSkipBarrierCheck",
     testprogs::twoObjectProgram, SafetyDiagKind::StaleHostPointer},
    {GuardOptMutation::ElimDropWritePromotion, "ElimDropWritePromotion",
     testprogs::invariantAccumulatorProgram,
     SafetyDiagKind::MissingWriteFlag},
    {GuardOptMutation::ElimCallNotBarrier, "ElimCallNotBarrier",
     evictBetweenProgram, SafetyDiagKind::StaleHostPointer},
    {GuardOptMutation::CoalesceDropWriteFlag, "CoalesceDropWriteFlag",
     testprogs::structFieldsProgram, SafetyDiagKind::MissingWriteFlag},
    {GuardOptMutation::CoalesceIgnoreBarriers, "CoalesceIgnoreBarriers",
     evictSplitRunProgram, SafetyDiagKind::StaleHostPointer},
    {GuardOptMutation::CoalesceArmingGuards, "CoalesceArmingGuards",
     armedPairProgram, SafetyDiagKind::RevalArmerUnsound},
    {GuardOptMutation::HoistUseArmerDirectly, "HoistUseArmerDirectly",
     testprogs::invariantAccumulatorProgram,
     SafetyDiagKind::StaleHostPointer},
    {GuardOptMutation::HoistNonInvariant, "HoistNonInvariant",
     stridedProgram, SafetyDiagKind::SsaDominance},
};

TEST(SafetyMutation, EveryStaticMutantIsFlagged)
{
    for (const StaticMutantCase &mutant : kStaticMutants) {
        MutationScope scope(mutant.mutation);
        System system(checkedConfig(true));
        // The broken IR may also fail post-pass verification (the
        // observer runs first, so the report is populated either way);
        // what matters is that the checker caught the bug.
        (void)system.compile(mutant.source);
        const SafetyReport &report = system.safetyReport();
        EXPECT_GT(report.totalDiagnostics(), 0u)
            << mutant.name << " produced no safety diagnostics";
        EXPECT_TRUE(reportHasKind(report, mutant.expected))
            << mutant.name << " missing expected kind "
            << safetyDiagKindName(mutant.expected) << "; got:\n"
            << reportToString(report);
    }
}

TEST(SafetyMutation, ObjectBoundMutantIsCaughtBySanitizer)
{
    // The designated dynamic-only mutant: merging guards across the
    // object-size bound is invisible to the offset-less static model
    // but walks off the guarded frame at runtime.
    MutationScope scope(GuardOptMutation::CoalesceIgnoreObjectBound);
    System system(checkedConfig(true));
    CompileResult compiled = system.compile(wideObjectProgram);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    EXPECT_TRUE(system.safetyReport().clean())
        << "expected the static checker to miss this mutant:\n"
        << reportToString(system.safetyReport());
    Interpreter interp(compiled.program->ir(), system.runtime());
    interp.enableSanitizer();
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.trapped);
    EXPECT_NE(result.trapMessage.find("farmem-sanitizer"),
              std::string::npos)
        << result.trapMessage;
    EXPECT_NE(result.trapMessage.find("escapes the guarded object"),
              std::string::npos)
        << result.trapMessage;
}

TEST(SafetyChecker, StaleDerefAcrossEvacuationIsReported)
{
    const char *const source = R"(
func @main() -> i64 {
entry:
  %p = call ptr @tfm_malloc(8)
  %g = guard.w %p
  store 7, %g
  call void @tfm_evacuate_all()
  %v = load i64, %g
  ret %v
}
)";
    System system(checkedConfig(true));
    CompileResult parsed = system.parseOnly(source);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const std::vector<SafetyDiagnostic> diags =
        checkGuardSafety(parsed.program->ir());
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, SafetyDiagKind::StaleHostPointer);
    EXPECT_GT(diags[0].line, 0);
    EXPECT_NE(formatSafetyDiagnostic(diags[0], "prog.tir")
                  .find("prog.tir:"),
              std::string::npos);

    // The dynamic layer agrees: the evacuation poisons %g's host
    // translation and the stale deref traps with full provenance.
    Interpreter interp(parsed.program->ir(), system.runtime());
    interp.enableSanitizer();
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.trapped);
    EXPECT_NE(result.trapMessage.find("use-after-eviction"),
              std::string::npos)
        << result.trapMessage;
    EXPECT_NE(result.trapMessage.find("%g"), std::string::npos);
    EXPECT_NE(result.trapMessage.find("tfm_malloc (line"),
              std::string::npos)
        << result.trapMessage;
}

TEST(SafetyChecker, StoreThroughReadGuardIsReported)
{
    const char *const source = R"(
func @main() -> i64 {
entry:
  %p = call ptr @tfm_malloc(8)
  %g = guard.r %p
  store 7, %g
  ret 0
}
)";
    System system(checkedConfig(true));
    CompileResult parsed = system.parseOnly(source);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const std::vector<SafetyDiagnostic> diags =
        checkGuardSafety(parsed.program->ir());
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, SafetyDiagKind::MissingWriteFlag);
}

TEST(SafetyChecker, GuardedPointerEscapeIsReported)
{
    const char *const source = R"(
func @main() -> i64 {
entry:
  %buf = alloca 16
  %p = call ptr @tfm_malloc(8)
  %g = guard.r %p
  store %g, %buf
  ret 0
}
)";
    System system(checkedConfig(true));
    CompileResult parsed = system.parseOnly(source);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const std::vector<SafetyDiagnostic> diags =
        checkGuardSafety(parsed.program->ir());
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, SafetyDiagKind::GuardedPtrEscape);
}

TEST(SafetyChecker, UnguardedFarLoadIsReported)
{
    const char *const source = R"(
func @main() -> i64 {
entry:
  %p = call ptr @tfm_malloc(8)
  %v = load i64, %p
  ret %v
}
)";
    System system(checkedConfig(true));
    CompileResult parsed = system.parseOnly(source);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const std::vector<SafetyDiagnostic> diags =
        checkGuardSafety(parsed.program->ir());
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, SafetyDiagKind::UnguardedFarAccess);
}

TEST(SafetySanitizer, OutOfBoundsAccessWithinFrameIsTrapped)
{
    // Offset 320 is inside the 4096-byte object frame but past the
    // 16-byte allocation: only the allocation-interval check sees it.
    const char *const source = R"(
func @main() -> i64 {
entry:
  %p = call ptr @tfm_malloc(16)
  %g = guard.w %p
  %q = gep %g, 40, 8
  store 7, %q
  ret 0
}
)";
    System system(checkedConfig(true));
    CompileResult parsed = system.parseOnly(source);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_TRUE(checkGuardSafety(parsed.program->ir()).empty());
    Interpreter interp(parsed.program->ir(), system.runtime());
    interp.enableSanitizer();
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.trapped);
    EXPECT_NE(result.trapMessage.find("outside any live allocation"),
              std::string::npos)
        << result.trapMessage;
}

TEST(SafetyChecker, GuardRootProducerWalksDerivations)
{
    const char *const source = R"(
func @main() -> i64 {
entry:
  %p = call ptr @tfm_malloc(32)
  %g = guard.w %p
  %q = gep %g, 1, 8
  %qi = ptrtoint %q to i64
  %qj = add %qi, 8
  %qp = inttoptr %qj to ptr
  store 7, %qp
  ret 0
}
)";
    System system(checkedConfig(true));
    CompileResult parsed = system.parseOnly(source);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const ir::Function *main_fn =
        parsed.program->ir().findFunction("main");
    ASSERT_NE(main_fn, nullptr);
    const ir::Instruction *guard = nullptr;
    const ir::Instruction *store = nullptr;
    for (const auto &inst : main_fn->entry()->instructions()) {
        if (inst->op() == ir::Opcode::Guard)
            guard = inst.get();
        if (inst->op() == ir::Opcode::Store)
            store = inst.get();
    }
    ASSERT_NE(guard, nullptr);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(guardRootProducer(store->operand(1)), guard);
}

} // namespace
} // namespace tfm
