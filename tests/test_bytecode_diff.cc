/**
 * @file
 * Differential tests: the pre-decoded register bytecode engine versus
 * the tree-walking reference engine. Every corpus program and example
 * must be bit-exact across engines at both opt levels — return value,
 * print output, step count, simulated cycles, every GuardStats
 * counter, a checksum of the entire far heap, and (for trapping
 * programs) the trap message. Any divergence is an engine bug by
 * definition: the reference engine is the semantic baseline.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/system.hh"
#include "interp/interpreter.hh"
#include "ir_test_programs.hh"

namespace tfm
{
namespace
{

SystemConfig
diffConfig()
{
    SystemConfig config;
    // Small tiers so the corpus actually evicts/fetches: the engines
    // must agree through remote fetches and evacuations, not just on
    // the resident fast path.
    config.runtime.farHeapBytes = 4 << 20;
    config.runtime.localMemBytes = 256 << 10;
    return config;
}

/** FNV-1a over the whole far heap: any stored-byte divergence shows. */
std::uint64_t
heapChecksum(TfmRuntime &rt, std::uint64_t far_heap_bytes)
{
    std::uint64_t hash = 1469598103934665603ull;
    std::byte buffer[4096];
    for (std::uint64_t offset = 0; offset < far_heap_bytes;
         offset += sizeof(buffer)) {
        const std::uint64_t len =
            std::min<std::uint64_t>(sizeof(buffer),
                                    far_heap_bytes - offset);
        rt.runtime().rawRead(offset, buffer, len);
        for (std::uint64_t i = 0; i < len; i++) {
            hash ^= static_cast<std::uint64_t>(buffer[i]);
            hash *= 1099511628211ull;
        }
    }
    return hash;
}

/** Everything observable from one run, flattened for comparison. */
struct DiffRecord
{
    RunResult result;
    std::vector<std::pair<const char *, std::uint64_t>> counters;
};

DiffRecord
runEngine(const CompiledProgram &program, const SystemConfig &config,
          InterpEngine engine, std::uint64_t max_steps = 0)
{
    TfmRuntime rt(config.runtime, config.costs);
    Interpreter interp(program.ir(), rt);
    interp.engine = engine;
    if (max_steps)
        interp.maxSteps = max_steps;
    DiffRecord record;
    record.result = interp.run("main");
    const GuardStats &gs = rt.guardStats();
    record.counters = {
        {"steps", record.result.instructionsExecuted},
        {"cycles", rt.clock().now()},
        {"heapChecksum",
         heapChecksum(rt, config.runtime.farHeapBytes)},
        {"fastReads", gs.fastReads},
        {"fastWrites", gs.fastWrites},
        {"cacheHitReads", gs.cacheHitReads},
        {"cacheHitWrites", gs.cacheHitWrites},
        {"slowLocalReads", gs.slowLocalReads},
        {"slowLocalWrites", gs.slowLocalWrites},
        {"slowRemoteReads", gs.slowRemoteReads},
        {"slowRemoteWrites", gs.slowRemoteWrites},
        {"custodyRejects", gs.custodyRejects},
        {"boundaryChecks", gs.boundaryChecks},
        {"localityGuards", gs.localityGuards},
        {"localityRemotes", gs.localityRemotes},
        {"prefetchCalls", gs.prefetchCalls},
        {"revalidations", gs.revalidations},
        {"revalidationHits", gs.revalidationHits},
        {"revalidationMisses", gs.revalidationMisses},
    };
    return record;
}

/** Assert two engine runs are observably identical. */
void
expectIdentical(const DiffRecord &bc, const DiffRecord &ref,
                const std::string &label)
{
    EXPECT_EQ(bc.result.trapped, ref.result.trapped) << label;
    EXPECT_EQ(bc.result.trapMessage, ref.result.trapMessage) << label;
    EXPECT_EQ(bc.result.returnValue, ref.result.returnValue) << label;
    EXPECT_EQ(bc.result.returnFloat, ref.result.returnFloat) << label;
    EXPECT_EQ(bc.result.output, ref.result.output) << label;
    ASSERT_EQ(bc.counters.size(), ref.counters.size());
    for (std::size_t i = 0; i < bc.counters.size(); i++) {
        EXPECT_EQ(bc.counters[i].second, ref.counters[i].second)
            << label << ": counter " << bc.counters[i].first;
    }
}

/** Compile at one opt level and diff the two engines. */
void
diffProgram(const char *source, bool optimize, const std::string &label,
            std::int64_t expected, std::uint64_t max_steps = 0)
{
    SystemConfig config = diffConfig();
    config.preOptimize = optimize;
    config.passes.optimizeGuards = optimize;
    System system(config);
    CompileResult compiled = system.compile(source);
    ASSERT_TRUE(compiled.ok()) << label << ": " << compiled.error;
    const DiffRecord bc = runEngine(*compiled.program, config,
                                    InterpEngine::Bytecode, max_steps);
    const DiffRecord ref = runEngine(*compiled.program, config,
                                     InterpEngine::Reference, max_steps);
    EXPECT_EQ(bc.result.engine, "bytecode") << label;
    EXPECT_EQ(ref.result.engine, "ref") << label;
    expectIdentical(bc, ref, label);
    if (!bc.result.trapped) {
        EXPECT_EQ(bc.result.returnValue, expected) << label;
    }
}

TEST(BytecodeDiff, CorpusAtBothOptLevels)
{
    for (const testprogs::CorpusProgram &entry : testprogs::kCorpus) {
        for (const bool optimize : {false, true}) {
            diffProgram(entry.source, optimize,
                        std::string(entry.name) +
                            (optimize ? "/opt" : "/O0"),
                        entry.expected);
        }
    }
}

TEST(BytecodeDiff, ExamplePrograms)
{
    const std::filesystem::path dir =
        std::filesystem::path(TFM_REPO_ROOT) / "examples";
    ASSERT_TRUE(std::filesystem::is_directory(dir));
    int found = 0;
    for (const auto &file : std::filesystem::directory_iterator(dir)) {
        if (file.path().extension() != ".tir")
            continue;
        found++;
        std::ifstream in(file.path());
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string source = buffer.str();
        for (const bool optimize : {false, true}) {
            SystemConfig config = diffConfig();
            config.preOptimize = optimize;
            config.passes.optimizeGuards = optimize;
            System system(config);
            CompileResult compiled = system.compile(source);
            ASSERT_TRUE(compiled.ok())
                << file.path() << ": " << compiled.error;
            expectIdentical(
                runEngine(*compiled.program, config,
                          InterpEngine::Bytecode),
                runEngine(*compiled.program, config,
                          InterpEngine::Reference),
                file.path().filename().string() +
                    (optimize ? "/opt" : "/O0"));
        }
    }
    EXPECT_GE(found, 3);
}

TEST(BytecodeDiff, ForcedEvacuationRevalidationParity)
{
    // The hoisted guard's reval must miss every iteration on both
    // engines: evacuations advance the epoch mid-loop.
    SystemConfig config = diffConfig();
    System system(config);
    CompileResult compiled =
        system.compile(testprogs::evacuationLoopProgram);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const DiffRecord bc =
        runEngine(*compiled.program, config, InterpEngine::Bytecode);
    const DiffRecord ref =
        runEngine(*compiled.program, config, InterpEngine::Reference);
    expectIdentical(bc, ref, "evacuationLoop");
    std::uint64_t reval_misses = 0;
    for (const auto &[name, value] : bc.counters) {
        if (std::string(name) == "revalidationMisses")
            reval_misses = value;
    }
    EXPECT_GT(reval_misses, 0u);
}

TEST(BytecodeDiff, PrintOutputParity)
{
    const char *const source = R"(
func @main() -> i64 {
entry:
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %sq = mul %i, %i
  call void @print_i64(%sq)
  %i2 = add %i, 1
  %c = icmp.slt %i2, 5
  condbr %c, loop, exit
exit:
  ret 0
}
)";
    diffProgram(source, true, "print", 0);
    SystemConfig config = diffConfig();
    System system(config);
    CompileResult compiled = system.compile(source);
    ASSERT_TRUE(compiled.ok());
    const DiffRecord bc =
        runEngine(*compiled.program, config, InterpEngine::Bytecode);
    EXPECT_EQ(bc.result.output,
              (std::vector<std::int64_t>{0, 1, 4, 9, 16}));
}

TEST(BytecodeDiff, DivisionByZeroTrapParity)
{
    const char *const source = R"(
func @main() -> i64 {
entry:
  %a = call i64 @flag()
  %r = sdiv 10, %a
  ret %r
}
func @flag() -> i64 {
entry:
  ret 0
}
)";
    for (const bool optimize : {false, true}) {
        diffProgram(source, optimize, "divzero", 0);
    }
    SystemConfig config = diffConfig();
    System system(config);
    CompileResult compiled = system.compile(source);
    ASSERT_TRUE(compiled.ok());
    const DiffRecord bc =
        runEngine(*compiled.program, config, InterpEngine::Bytecode);
    EXPECT_TRUE(bc.result.trapped);
    EXPECT_EQ(bc.result.trapMessage, "division by zero");
}

TEST(BytecodeDiff, UnknownFunctionTrapParity)
{
    const char *const source = R"(
func @main() -> i64 {
entry:
  %r = call i64 @nosuch(1)
  ret %r
}
)";
    SystemConfig config = diffConfig();
    System system(config);
    CompileResult compiled = system.parseOnly(source);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const DiffRecord bc =
        runEngine(*compiled.program, config, InterpEngine::Bytecode);
    const DiffRecord ref =
        runEngine(*compiled.program, config, InterpEngine::Reference);
    expectIdentical(bc, ref, "unknown-function");
    EXPECT_TRUE(bc.result.trapped);
    EXPECT_EQ(bc.result.trapMessage,
              "call to unknown function @nosuch");
}

TEST(BytecodeDiff, ArgumentCountMismatchTrapParity)
{
    const char *const source = R"(
func @main() -> i64 {
entry:
  %r = call i64 @leaf(1)
  ret %r
}
func @leaf(%x: i64, %y: i64) -> i64 {
entry:
  ret %x
}
)";
    SystemConfig config = diffConfig();
    System system(config);
    CompileResult compiled = system.parseOnly(source);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const DiffRecord bc =
        runEngine(*compiled.program, config, InterpEngine::Bytecode);
    const DiffRecord ref =
        runEngine(*compiled.program, config, InterpEngine::Reference);
    expectIdentical(bc, ref, "arg-mismatch");
    EXPECT_TRUE(bc.result.trapped);
    EXPECT_EQ(bc.result.trapMessage,
              "argument count mismatch calling @leaf");
}

TEST(BytecodeDiff, StepLimitTrapParity)
{
    // Both engines must hit the step budget at the identical step
    // count (phi steps and edge-move charges included).
    SystemConfig config = diffConfig();
    System system(config);
    CompileResult compiled = system.compile(testprogs::sumProgram);
    ASSERT_TRUE(compiled.ok());
    const DiffRecord bc = runEngine(*compiled.program, config,
                                    InterpEngine::Bytecode, 500);
    const DiffRecord ref = runEngine(*compiled.program, config,
                                     InterpEngine::Reference, 500);
    expectIdentical(bc, ref, "step-limit");
    EXPECT_TRUE(bc.result.trapped);
    EXPECT_EQ(bc.result.trapMessage,
              "step limit exceeded (possible infinite loop)");
}

TEST(BytecodeDiff, UnguardedTaggedAccessTrapParity)
{
    // Untransformed module: tfm_malloc returns a tagged pointer which
    // the direct load must fault on (the GP-fault analogue), on both
    // engines, with identical step counts.
    const char *const source = R"(
func @main() -> i64 {
entry:
  %p = call ptr @tfm_malloc(64)
  %v = load i64, %p
  ret %v
}
)";
    SystemConfig config = diffConfig();
    System system(config);
    CompileResult compiled = system.parseOnly(source);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const DiffRecord bc =
        runEngine(*compiled.program, config, InterpEngine::Bytecode);
    const DiffRecord ref =
        runEngine(*compiled.program, config, InterpEngine::Reference);
    expectIdentical(bc, ref, "gp-fault");
    EXPECT_TRUE(bc.result.trapped);
    EXPECT_EQ(bc.result.trapMessage,
              "general protection fault: unguarded access to "
              "non-canonical address (missing TrackFM guard)");
}

TEST(BytecodeDiff, CompileBailoutFallsBackToReference)
{
    // A use of a value defined only in an unreachable block: canonical
    // enough to parse and run (the reference engine traps lazily at
    // the use), but the bytecode compiler cannot prove the register is
    // defined, so it must bail out and the function must run — and
    // trap identically — on the reference engine under both requested
    // engines.
    ir::Module module;
    ir::Function *fn = module.addFunction("main", ir::Type::I64);
    ir::BasicBlock *entry = fn->addBlock("entry");
    ir::BasicBlock *dead = fn->addBlock("dead");

    auto add = std::make_unique<ir::Instruction>(ir::Opcode::Add,
                                                 ir::Type::I64, "v");
    add->addOperand(fn->makeConstant(ir::Type::I64, 1));
    add->addOperand(fn->makeConstant(ir::Type::I64, 2));
    ir::Instruction *v = add.get();
    dead->append(std::move(add));
    auto dead_ret = std::make_unique<ir::Instruction>(
        ir::Opcode::Ret, ir::Type::Void, "");
    dead_ret->addOperand(v);
    dead->append(std::move(dead_ret));

    auto ret = std::make_unique<ir::Instruction>(ir::Opcode::Ret,
                                                 ir::Type::Void, "");
    ret->addOperand(v);
    entry->append(std::move(ret));

    SystemConfig config = diffConfig();
    TfmRuntime rt_bc(config.runtime, config.costs);
    Interpreter bc(module, rt_bc);
    bc.engine = InterpEngine::Bytecode;
    const RunResult bc_result = bc.run("main");

    TfmRuntime rt_ref(config.runtime, config.costs);
    Interpreter ref(module, rt_ref);
    ref.engine = InterpEngine::Reference;
    const RunResult ref_result = ref.run("main");

    EXPECT_TRUE(bc_result.trapped);
    EXPECT_EQ(bc_result.trapMessage, "use of undefined value %v");
    EXPECT_EQ(bc_result.trapMessage, ref_result.trapMessage);
    EXPECT_EQ(bc_result.instructionsExecuted,
              ref_result.instructionsExecuted);
}

TEST(BytecodeDiff, SanitizerForcesReferenceEngine)
{
    SystemConfig config = diffConfig();
    System system(config);
    CompileResult compiled = system.compile(testprogs::sumProgram);
    ASSERT_TRUE(compiled.ok());
    TfmRuntime rt(config.runtime, config.costs);
    Interpreter interp(compiled.program->ir(), rt);
    interp.engine = InterpEngine::Bytecode;
    interp.enableSanitizer();
    const RunResult result = interp.run("main");
    EXPECT_EQ(result.engine, "ref");
    EXPECT_FALSE(result.trapped) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 499500);
}

} // anonymous namespace
} // namespace tfm
