/**
 * @file
 * Tests for the hybrid guard/paging data plane (DESIGN.md §4l): the
 * static access-pattern analysis, the per-site path arbiter, the
 * mixed-plane safety diagnostic, the seq/rand allocation profile
 * (serialize/parse/merge), and the corpus-wide differential gate that
 * pins hybrid execution bit-exact against the pure guard plane.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/access_pattern.hh"
#include "analysis/guard_safety.hh"
#include "core/system.hh"
#include "ir/parser.hh"
#include "passes/hot_alloc_pruning.hh"
#include "passes/path_arbiter.hh"
#include "ir_test_programs.hh"

namespace tfm
{
namespace
{

using testprogs::kCorpus;

ir::ParseResult
parseOrDie(const char *text)
{
    auto result = ir::parseModule(text);
    EXPECT_TRUE(result.ok()) << result.error;
    return result;
}

SystemConfig
hybridConfig(ArbiterMode mode, bool optimize)
{
    SystemConfig config;
    config.runtime.farHeapBytes = 4 << 20;
    config.runtime.localMemBytes = 256 << 10;
    config.checkSafety = true;
    config.preOptimize = optimize;
    config.passes.optimizeGuards = optimize;
    config.passes.arbiterMode = mode;
    return config;
}

/** A dense loop plus a pointer chase on one allocation: Mixed. */
const char *const mixedProgram = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br init
init:
  %i = phi i64 [ 0, entry ], [ %i2, init ]
  %p = gep %a, %i, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 1000
  condbr %c, init, chase
chase:
  %addr = load i64, %a
  %q = inttoptr %addr to ptr
  %v = load i64, %q
  ret %v
}
)";

// ---------------------------------------------------------------------
// Access-pattern analysis: verdicts and evidence
// ---------------------------------------------------------------------

TEST(AccessPattern, UnitStrideLoopIsDense)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    const SiteAccessSummary &site = analysis.sites()[0];
    EXPECT_EQ(site.ordinal, 0u);
    EXPECT_EQ(site.verdict(), AccessVerdict::Dense);
    EXPECT_FALSE(site.escapes);
    ASSERT_EQ(site.strides.size(), 2u); // init store + sum load
    for (const StrideEvidence &ev : site.strides)
        EXPECT_EQ(ev.strideBytes, 8);
    EXPECT_TRUE(site.chases.empty());
}

TEST(AccessPattern, ConstantNonUnitStrideIsDense)
{
    // a[2*i] over 8-byte elements: byte stride 16, still within one
    // cache line per iteration.
    auto parsed = parseOrDie(testprogs::stridedProgram);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    const SiteAccessSummary &site = analysis.sites()[0];
    EXPECT_EQ(site.verdict(), AccessVerdict::Dense);
    ASSERT_FALSE(site.strides.empty());
    for (const StrideEvidence &ev : site.strides)
        EXPECT_EQ(ev.strideBytes, 16);
}

TEST(AccessPattern, NegativeStrideIsDense)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br loop
loop:
  %i = phi i64 [ 999, entry ], [ %i2, loop ]
  %p = gep %a, %i, 8
  store %i, %p
  %i2 = sub %i, 1
  %c = icmp.slt %i2, 0
  condbr %c, exit, loop
exit:
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    const SiteAccessSummary &site = analysis.sites()[0];
    ASSERT_EQ(site.strides.size(), 1u);
    EXPECT_EQ(site.strides[0].strideBytes, -8);
    EXPECT_EQ(site.verdict(), AccessVerdict::Dense);
}

TEST(AccessPattern, CacheLineExceedingStrideIsSparse)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(1048576)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %d = mul %i, 512
  %p = gep %a, %d, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 256
  condbr %c, loop, exit
exit:
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    const SiteAccessSummary &site = analysis.sites()[0];
    ASSERT_EQ(site.strides.size(), 1u);
    EXPECT_EQ(site.strides[0].strideBytes, 4096);
    EXPECT_EQ(site.verdict(), AccessVerdict::Sparse);
}

TEST(AccessPattern, PointerChaseIsSparse)
{
    // The address itself is loaded out of the site's memory: the
    // classic next-pointer traversal.
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(4096)
  br loop
loop:
  %p = phi ptr [ %a, entry ], [ %q, loop ]
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %addr = load i64, %p
  %q = inttoptr %addr to ptr
  %i2 = add %i, 1
  %c = icmp.slt %i2, 100
  condbr %c, loop, exit
exit:
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    const SiteAccessSummary &site = analysis.sites()[0];
    EXPECT_FALSE(site.chases.empty());
    EXPECT_EQ(site.verdict(), AccessVerdict::Sparse);
    EXPECT_GT(site.chaseScore(), 0.0);
}

TEST(AccessPattern, DensePlusChaseIsMixed)
{
    auto parsed = parseOrDie(mixedProgram);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    const SiteAccessSummary &site = analysis.sites()[0];
    EXPECT_FALSE(site.strides.empty());
    EXPECT_FALSE(site.chases.empty());
    EXPECT_EQ(site.verdict(), AccessVerdict::Mixed);
}

TEST(AccessPattern, StraightLineOnlyIsUnknown)
{
    // Out-of-loop accesses carry no iteration-order signal; they are
    // counted but do not vote.
    auto parsed = parseOrDie(testprogs::structFieldsProgram);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    const SiteAccessSummary &site = analysis.sites()[0];
    EXPECT_EQ(site.verdict(), AccessVerdict::Unknown);
    EXPECT_EQ(site.straightLineAccesses, 6u);
    EXPECT_TRUE(site.strides.empty());
}

TEST(AccessPattern, UnknownCalleeEscapes)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(64)
  call void @mystery(%a)
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    EXPECT_TRUE(analysis.sites()[0].escapes);
    EXPECT_NE(analysis.sites()[0].escapeReason.find("mystery"),
              std::string::npos)
        << analysis.sites()[0].escapeReason;
}

TEST(AccessPattern, ReallocEscapesTheSite)
{
    // A pointer reaching realloc may be freed and replaced mid-life;
    // the site must stay on the guard plane.
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(64)
  %b = call ptr @realloc(%a, 128)
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    EXPECT_TRUE(analysis.sites()[0].escapes);
}

TEST(AccessPattern, StoreToUntrackedMemoryEscapes)
{
    const char *text = R"(
func @main(%out: ptr) -> i64 {
entry:
  %a = call ptr @malloc(64)
  %v = ptrtoint %a to i64
  store %v, %out
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    EXPECT_TRUE(analysis.sites()[0].escapes);
}

TEST(AccessPattern, PhiMergingTwoSitesFlagsAliasing)
{
    const char *text = R"(
func @main(%n: i64) -> i64 {
entry:
  %a = call ptr @malloc(64)
  %b = call ptr @malloc(64)
  %c = icmp.slt %n, 3
  condbr %c, l, r
l:
  br join
r:
  br join
join:
  %p = phi ptr [ %a, l ], [ %b, r ]
  %v = load i64, %p
  ret %v
}
)";
    auto parsed = parseOrDie(text);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 2u);
    EXPECT_TRUE(analysis.sites()[0].aliasesOther);
    EXPECT_TRUE(analysis.sites()[1].aliasesOther);
}

TEST(AccessPattern, InterproceduralStrideViaCalleeSummary)
{
    // The dense loop lives in a callee; the caller's site must inherit
    // the stride evidence through the parameter summary.
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  %r = call i64 @fill(%a)
  ret %r
}
func @fill(%p: ptr) -> i64 {
entry:
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %q = gep %p, %i, 8
  store %i, %q
  %i2 = add %i, 1
  %c = icmp.slt %i2, 1000
  condbr %c, loop, exit
exit:
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const AccessPatternAnalysis analysis(*parsed.module);
    ASSERT_EQ(analysis.sites().size(), 1u);
    const SiteAccessSummary &site = analysis.sites()[0];
    EXPECT_FALSE(site.escapes);
    ASSERT_FALSE(site.strides.empty());
    EXPECT_EQ(site.strides[0].strideBytes, 8);
    EXPECT_EQ(site.strides[0].viaCallee, "fill");
    EXPECT_EQ(site.verdict(), AccessVerdict::Dense);
}

TEST(AccessPattern, NestedLoopIterationOrderWitness)
{
    // Row-major a[i*16 + j]: innermost stride 8, outer 128.
    const char *rowMajor = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(32768)
  br outer
outer:
  %i = phi i64 [ 0, entry ], [ %i2, outer.latch ]
  br inner
inner:
  %j = phi i64 [ 0, outer ], [ %j2, inner ]
  %row = mul %i, 16
  %idx = add %row, %j
  %p = gep %a, %idx, 8
  store %idx, %p
  %j2 = add %j, 1
  %cj = icmp.slt %j2, 16
  condbr %cj, inner, outer.latch
outer.latch:
  %i2 = add %i, 1
  %ci = icmp.slt %i2, 16
  condbr %ci, outer, exit
exit:
  ret 0
}
)";
    // Interchanged a[j*16 + i]: innermost stride 128, outer 8.
    const char *columnMajor = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(32768)
  br outer
outer:
  %i = phi i64 [ 0, entry ], [ %i2, outer.latch ]
  br inner
inner:
  %j = phi i64 [ 0, outer ], [ %j2, inner ]
  %row = mul %j, 16
  %idx = add %row, %i
  %p = gep %a, %idx, 8
  store %idx, %p
  %j2 = add %j, 1
  %cj = icmp.slt %j2, 16
  condbr %cj, inner, outer.latch
outer.latch:
  %i2 = add %i, 1
  %ci = icmp.slt %i2, 16
  condbr %ci, outer, exit
exit:
  ret 0
}
)";
    {
        auto parsed = parseOrDie(rowMajor);
        const AccessPatternAnalysis analysis(*parsed.module);
        ASSERT_EQ(analysis.sites().size(), 1u);
        const SiteAccessSummary &site = analysis.sites()[0];
        ASSERT_EQ(site.strides.size(), 1u);
        EXPECT_EQ(site.strides[0].strideBytes, 8);
        EXPECT_EQ(site.strides[0].outerStrideBytes, 128);
        EXPECT_EQ(site.strides[0].loopDepth, 2u);
        EXPECT_TRUE(site.strides[0].rowMajor);
        EXPECT_EQ(site.verdict(), AccessVerdict::Dense);
    }
    {
        auto parsed = parseOrDie(columnMajor);
        const AccessPatternAnalysis analysis(*parsed.module);
        ASSERT_EQ(analysis.sites().size(), 1u);
        const SiteAccessSummary &site = analysis.sites()[0];
        ASSERT_EQ(site.strides.size(), 1u);
        EXPECT_EQ(site.strides[0].strideBytes, 128);
        EXPECT_EQ(site.strides[0].outerStrideBytes, 8);
        EXPECT_FALSE(site.strides[0].rowMajor);
        // 128-byte inner stride exceeds the cache-line threshold.
        EXPECT_EQ(site.verdict(), AccessVerdict::Sparse);
    }
}

TEST(AccessPattern, ReportIsMachineReadable)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const AccessPatternAnalysis analysis(*parsed.module);
    const std::string report = analysis.report();
    EXPECT_NE(report.find("access-report v1"), std::string::npos);
    EXPECT_NE(report.find("site 0 @main"), std::string::npos);
    EXPECT_NE(report.find("verdict dense"), std::string::npos);
    EXPECT_NE(report.find("  stride @main"), std::string::npos);
}

// ---------------------------------------------------------------------
// Allocation profile: serialize/parse/merge (multi-epoch PGO)
// ---------------------------------------------------------------------

AllocSiteProfile::Site
makeSite(std::uint32_t ordinal, const char *function,
         std::uint64_t allocations, std::uint64_t seq, std::uint64_t rand)
{
    AllocSiteProfile::Site site;
    site.ordinal = ordinal;
    site.function = function;
    site.allocations = allocations;
    site.bytesAllocated = allocations * 64;
    site.guardedAccesses = seq + rand;
    site.seqAccesses = seq;
    site.randAccesses = rand;
    return site;
}

TEST(AllocProfile, SerializeParseRoundTrip)
{
    AllocSiteProfile profile;
    profile.sites.push_back(makeSite(0, "main", 3, 90, 10));
    profile.sites.push_back(makeSite(2, "helper", 1, 0, 40));
    const std::string text = profile.serialize();
    EXPECT_NE(text.find("tfm-alloc-profile v2"), std::string::npos);

    AllocSiteProfile parsed;
    ASSERT_TRUE(AllocSiteProfile::parse(text, parsed));
    ASSERT_EQ(parsed.sites.size(), 2u);
    EXPECT_EQ(parsed.sites[0].ordinal, 0u);
    EXPECT_EQ(parsed.sites[0].function, "main");
    EXPECT_EQ(parsed.sites[0].seqAccesses, 90u);
    EXPECT_EQ(parsed.sites[0].randAccesses, 10u);
    EXPECT_EQ(parsed.sites[1].ordinal, 2u);
    EXPECT_EQ(parsed.sites[1].guardedAccesses, 40u);
}

TEST(AllocProfile, ParseAcceptsV1WithoutSeqRandColumns)
{
    const std::string v1 = "tfm-alloc-profile v1\n"
                           "site 0 main 3 192 100\n";
    AllocSiteProfile parsed;
    ASSERT_TRUE(AllocSiteProfile::parse(v1, parsed));
    ASSERT_EQ(parsed.sites.size(), 1u);
    EXPECT_EQ(parsed.sites[0].guardedAccesses, 100u);
    EXPECT_EQ(parsed.sites[0].seqAccesses, 0u);
    EXPECT_EQ(parsed.sites[0].seqFraction(), 0.0);
}

TEST(AllocProfile, ParseRejectsMalformedInputUntouched)
{
    AllocSiteProfile out;
    out.sites.push_back(makeSite(7, "keep", 1, 1, 1));
    EXPECT_FALSE(AllocSiteProfile::parse("not a profile\n", out));
    EXPECT_FALSE(
        AllocSiteProfile::parse("tfm-alloc-profile v2\nsite x\n", out));
    ASSERT_EQ(out.sites.size(), 1u);
    EXPECT_EQ(out.sites[0].ordinal, 7u);
}

TEST(AllocProfile, MergeSumsMatchesAndInsertsLaterEpochSitesInOrder)
{
    AllocSiteProfile base;
    base.sites.push_back(makeSite(0, "main", 2, 10, 0));
    base.sites.push_back(makeSite(4, "main", 1, 0, 5));

    // The later epoch saw site 2 for the first time (code path only
    // exercised under this epoch's input) and more of sites 0 and 4.
    AllocSiteProfile epoch;
    epoch.sites.push_back(makeSite(0, "main", 1, 20, 2));
    epoch.sites.push_back(makeSite(2, "helper", 3, 7, 7));
    epoch.sites.push_back(makeSite(4, "main", 1, 1, 5));

    base.merge(epoch);
    ASSERT_EQ(base.sites.size(), 3u);
    // Stable ordering key: the module ordinal, regardless of which
    // epoch first observed the site.
    EXPECT_EQ(base.sites[0].ordinal, 0u);
    EXPECT_EQ(base.sites[1].ordinal, 2u);
    EXPECT_EQ(base.sites[2].ordinal, 4u);
    EXPECT_EQ(base.sites[0].seqAccesses, 30u);
    EXPECT_EQ(base.sites[0].allocations, 3u);
    EXPECT_EQ(base.sites[1].function, "helper");
    EXPECT_EQ(base.sites[2].randAccesses, 10u);
}

// ---------------------------------------------------------------------
// Path arbiter: routing decisions and IR rewrites
// ---------------------------------------------------------------------

bool
moduleCallsCallee(const ir::Module &module, const char *callee)
{
    for (const auto &function : module.allFunctions())
        for (const auto &block : function->basicBlocks())
            for (const auto &inst : block->instructions())
                if (inst->op() == ir::Opcode::Call &&
                    inst->callee == callee)
                    return true;
    return false;
}

TEST(PathArbiter, DenseSiteGoesToThePagedPlane)
{
    System system(hybridConfig(ArbiterMode::Auto, true));
    CompileResult compiled = system.compile(testprogs::sumProgram);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const ArbiterReport &report = system.arbiterReport();
    ASSERT_EQ(report.decisions.size(), 1u);
    EXPECT_TRUE(report.decisions[0].paged);
    EXPECT_EQ(report.decisions[0].reason, "static-dense");
    EXPECT_EQ(report.pagedSites, 1u);
    EXPECT_TRUE(moduleCallsCallee(compiled.program->ir(), "pg_malloc"));
    EXPECT_TRUE(system.safetyReport().clean());
    const RunResult result = system.run(*compiled.program);
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 499500);
}

TEST(PathArbiter, ChaseSiteStaysOnTheGuardPlane)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(4096)
  store 0, %a
  br loop
loop:
  %p = phi ptr [ %a, entry ], [ %q, loop ]
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %addr = load i64, %p
  %sum = add %addr, 0
  %q = inttoptr %sum to ptr
  %i2 = add %i, 1
  %c = icmp.slt %i2, 1
  condbr %c, loop, exit
exit:
  ret %i2
}
)";
    System system(hybridConfig(ArbiterMode::Auto, true));
    CompileResult compiled = system.compile(text);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const ArbiterReport &report = system.arbiterReport();
    ASSERT_EQ(report.decisions.size(), 1u);
    EXPECT_FALSE(report.decisions[0].paged);
    EXPECT_EQ(report.decisions[0].reason, "static-sparse");
    EXPECT_FALSE(moduleCallsCallee(compiled.program->ir(), "pg_malloc"));
}

TEST(PathArbiter, AliasedSitesNeverSplitPlanes)
{
    const char *text = R"(
func @main(%n: i64) -> i64 {
entry:
  %a = call ptr @malloc(8000)
  %b = call ptr @malloc(8000)
  %c = icmp.slt %n, 3
  condbr %c, l, r
l:
  br join
r:
  br join
join:
  %p = phi ptr [ %a, l ], [ %b, r ]
  br loop
loop:
  %i = phi i64 [ 0, join ], [ %i2, loop ]
  %q = gep %p, %i, 8
  store %i, %q
  %i2 = add %i, 1
  %cc = icmp.slt %i2, 1000
  condbr %cc, loop, exit
exit:
  ret 0
}
)";
    System system(hybridConfig(ArbiterMode::Auto, true));
    CompileResult compiled = system.compile(text);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const ArbiterReport &report = system.arbiterReport();
    ASSERT_EQ(report.decisions.size(), 2u);
    for (const ArbiterDecision &d : report.decisions) {
        EXPECT_FALSE(d.paged);
        EXPECT_EQ(d.reason, "aliases");
    }
    EXPECT_TRUE(system.safetyReport().clean());
}

TEST(PathArbiter, PgoTieBreakUsesTheObservedSeqFraction)
{
    // Straight-line accesses only: statically Unknown, so the profile
    // decides.
    AllocSiteProfile seqHeavy;
    seqHeavy.sites.push_back(makeSite(0, "main", 1, 90, 10));
    AllocSiteProfile randHeavy;
    randHeavy.sites.push_back(makeSite(0, "main", 1, 10, 90));

    {
        SystemConfig config = hybridConfig(ArbiterMode::Auto, true);
        config.passes.arbiterProfile = &seqHeavy;
        System system(config);
        CompileResult compiled =
            system.compile(testprogs::structFieldsProgram);
        ASSERT_TRUE(compiled.ok()) << compiled.error;
        const ArbiterReport &report = system.arbiterReport();
        ASSERT_EQ(report.decisions.size(), 1u);
        EXPECT_TRUE(report.decisions[0].paged);
        EXPECT_EQ(report.decisions[0].reason, "pgo-seq");
        EXPECT_EQ(report.pgoTieBreaks, 1u);
        const RunResult result = system.run(*compiled.program);
        ASSERT_TRUE(result.ok()) << result.trapMessage;
        EXPECT_EQ(result.returnValue, 66);
    }
    {
        SystemConfig config = hybridConfig(ArbiterMode::Auto, true);
        config.passes.arbiterProfile = &randHeavy;
        System system(config);
        CompileResult compiled =
            system.compile(testprogs::structFieldsProgram);
        ASSERT_TRUE(compiled.ok()) << compiled.error;
        ASSERT_EQ(system.arbiterReport().decisions.size(), 1u);
        EXPECT_FALSE(system.arbiterReport().decisions[0].paged);
        EXPECT_EQ(system.arbiterReport().decisions[0].reason,
                  "pgo-rand");
    }
    {
        System system(hybridConfig(ArbiterMode::Auto, true));
        CompileResult compiled =
            system.compile(testprogs::structFieldsProgram);
        ASSERT_TRUE(compiled.ok()) << compiled.error;
        ASSERT_EQ(system.arbiterReport().decisions.size(), 1u);
        EXPECT_FALSE(system.arbiterReport().decisions[0].paged);
        EXPECT_EQ(system.arbiterReport().decisions[0].reason,
                  "no-profile");
    }
}

TEST(PathArbiter, ForceAllPagedIsAnAblationOverride)
{
    System system(hybridConfig(ArbiterMode::ForceAllPaged, true));
    CompileResult compiled = system.compile(testprogs::twoObjectProgram);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const ArbiterReport &report = system.arbiterReport();
    ASSERT_EQ(report.decisions.size(), 2u);
    for (const ArbiterDecision &d : report.decisions) {
        EXPECT_TRUE(d.paged);
        EXPECT_EQ(d.reason, "forced");
    }
    const RunResult result = system.run(*compiled.program);
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 30);
}

TEST(PathArbiter, FreeOfAPagedSiteIsRetagged)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %p = gep %a, %i, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 1000
  condbr %c, loop, exit
exit:
  call void @free(%a)
  ret 0
}
)";
    System system(hybridConfig(ArbiterMode::Auto, true));
    CompileResult compiled = system.compile(text);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    EXPECT_EQ(system.arbiterReport().freesRewritten, 1u);
    EXPECT_TRUE(moduleCallsCallee(compiled.program->ir(), "pg_free"));
    EXPECT_FALSE(moduleCallsCallee(compiled.program->ir(), "tfm_free"));
    const RunResult result = system.run(*compiled.program);
    ASSERT_TRUE(result.ok()) << result.trapMessage;
}

// ---------------------------------------------------------------------
// Mixed-plane safety diagnostic
// ---------------------------------------------------------------------

TEST(MixedPlaneChecker, MergingBothPlanesInOneValueIsFlagged)
{
    // A phi carrying a bit-60 (tfm_malloc) pointer on one edge and a
    // bit-61 (pg_malloc) pointer on the other: no single emission
    // strategy covers the access.
    const char *text = R"(
func @main(%n: i64) -> i64 {
entry:
  %g = call ptr @tfm_malloc(64)
  %p = call ptr @pg_malloc(64)
  %c = icmp.slt %n, 3
  condbr %c, l, r
l:
  br join
r:
  br join
join:
  %m = phi ptr [ %g, l ], [ %p, r ]
  %v = load i64, %m
  ret %v
}
)";
    auto parsed = parseOrDie(text);
    const std::vector<SafetyDiagnostic> diags =
        checkGuardSafety(*parsed.module);
    bool sawMixedPlane = false;
    for (const SafetyDiagnostic &d : diags)
        if (d.kind == SafetyDiagKind::MixedPlane)
            sawMixedPlane = true;
    EXPECT_TRUE(sawMixedPlane)
        << "expected a mixed-plane diagnostic, got " << diags.size()
        << " other diagnostic(s)";
    EXPECT_STREQ(safetyDiagKindName(SafetyDiagKind::MixedPlane),
                 "mixed-plane");
}

TEST(MixedPlaneChecker, SeparatePlanesInSeparateValuesAreLegal)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %g = call ptr @tfm_malloc(64)
  %p = call ptr @pg_malloc(64)
  %gg = guard.w %g
  store 1, %gg
  store 2, %p
  %gr = guard.r %g
  %a = load i64, %gr
  %b = load i64, %p
  %r = add %a, %b
  ret %r
}
)";
    auto parsed = parseOrDie(text);
    const std::vector<SafetyDiagnostic> diags =
        checkGuardSafety(*parsed.module);
    for (const SafetyDiagnostic &d : diags)
        EXPECT_NE(d.kind, SafetyDiagKind::MixedPlane) << d.message;
}

// ---------------------------------------------------------------------
// Corpus gates: differential vs pure guard + verdict agreement
// ---------------------------------------------------------------------

TEST(HybridDifferential, CorpusIsBitExactAgainstPureGuardAtBothOptLevels)
{
    for (const testprogs::CorpusProgram &entry : kCorpus) {
        for (const bool optimize : {false, true}) {
            System pure(hybridConfig(ArbiterMode::Off, optimize));
            CompileResult pureCompiled = pure.compile(entry.source);
            ASSERT_TRUE(pureCompiled.ok())
                << entry.name << ": " << pureCompiled.error;
            const RunResult pureRun = pure.run(*pureCompiled.program);

            System hybrid(hybridConfig(ArbiterMode::Auto, optimize));
            CompileResult hybridCompiled = hybrid.compile(entry.source);
            ASSERT_TRUE(hybridCompiled.ok())
                << entry.name << ": " << hybridCompiled.error;
            EXPECT_TRUE(hybrid.safetyReport().clean())
                << entry.name << " optimize=" << optimize;
            const RunResult hybridRun =
                hybrid.run(*hybridCompiled.program);

            EXPECT_EQ(hybridRun.trapped, pureRun.trapped)
                << entry.name << ": " << hybridRun.trapMessage;
            EXPECT_EQ(hybridRun.returnValue, pureRun.returnValue)
                << entry.name << " optimize=" << optimize;
            EXPECT_EQ(hybridRun.returnValue, entry.expected)
                << entry.name;
            EXPECT_EQ(hybridRun.output, pureRun.output) << entry.name;
            EXPECT_EQ(hybrid.runtime().runtime().heapChecksum(),
                      pure.runtime().runtime().heapChecksum())
                << entry.name << " optimize=" << optimize;
        }
    }
}

TEST(AccessPattern, StaticVerdictsAgreeWithInterpreterObservedPatterns)
{
    // The ISSUE gate: on >= 90% of statically classified (non-Unknown)
    // corpus sites, the static verdict must match what the interpreter
    // actually observed (seq/rand offset deltas per site).
    unsigned classified = 0, agreements = 0;
    for (const testprogs::CorpusProgram &entry : kCorpus) {
        System system(hybridConfig(ArbiterMode::Off, true));
        CompileResult compiled = system.compile(entry.source);
        ASSERT_TRUE(compiled.ok()) << entry.name;
        Interpreter interp(compiled.program->ir(), system.runtime());
        interp.enableAllocationProfiling();
        const RunResult result = interp.run("main");
        ASSERT_TRUE(result.ok())
            << entry.name << ": " << result.trapMessage;
        const AllocSiteProfile profile = interp.allocationProfile();

        const AccessPatternAnalysis analysis(compiled.program->ir());
        for (const SiteAccessSummary &site : analysis.sites()) {
            if (site.verdict() == AccessVerdict::Unknown)
                continue;
            const AllocSiteProfile::Site *observed =
                profile.findByOrdinal(site.ordinal);
            if (!observed ||
                observed->seqAccesses + observed->randAccesses < 2)
                continue; // too few samples to witness a pattern
            classified++;
            const double seq = observed->seqFraction();
            const AccessVerdict witnessed =
                seq >= 0.6   ? AccessVerdict::Dense
                : seq <= 0.4 ? AccessVerdict::Sparse
                             : AccessVerdict::Mixed;
            const bool agree = site.verdict() == witnessed ||
                               site.verdict() == AccessVerdict::Mixed ||
                               witnessed == AccessVerdict::Mixed;
            if (agree)
                agreements++;
            else
                ADD_FAILURE() << entry.name << " site " << site.ordinal
                              << ": static "
                              << accessVerdictName(site.verdict())
                              << " vs observed seqFraction " << seq;
        }
    }
    ASSERT_GT(classified, 0u);
    EXPECT_GE(static_cast<double>(agreements),
              0.9 * static_cast<double>(classified))
        << agreements << "/" << classified;
}

} // namespace
} // namespace tfm
