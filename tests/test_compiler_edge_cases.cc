/**
 * @file
 * Edge-case tests for the compiler: printer/parser round-trip over
 * every opcode, pass behaviour on degenerate CFGs, nested chunked
 * loops through the interpreter, and pipeline failure injection.
 */

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/loop_info.hh"
#include "interp/interpreter.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "passes/o1_passes.hh"
#include "passes/trackfm_passes.hh"

namespace tfm
{
namespace
{

std::unique_ptr<ir::Module>
parseOrDie(const char *text)
{
    auto result = ir::parseModule(text);
    EXPECT_TRUE(result.ok()) << result.error << " at line "
                             << result.errorLine;
    return std::move(result.module);
}

TEST(IrRoundTrip, EveryOpcodeSurvivesPrintParsePrint)
{
    // One function exercising every printable opcode form.
    const char *text = R"(
func @callee(%x: i64) -> i64 {
entry:
  ret %x
}

func @main() -> i64 {
entry:
  %buf = alloca 64
  %h = call ptr @malloc(128)
  %i0 = add 1, 2
  %i1 = sub %i0, 1
  %i2 = mul %i1, 3
  %i3 = sdiv %i2, 2
  %i4 = srem %i3, 5
  %i5 = and %i4, 7
  %i6 = or %i5, 8
  %i7 = xor %i6, 15
  %i8 = shl %i7, 2
  %i9 = lshr %i8, 1
  %f0 = sitofp %i9 to f64
  %f1 = fadd %f0, f1.5
  %f2 = fsub %f1, f0.25
  %f3 = fmul %f2, f2.0
  %f4 = fdiv %f3, f4.0
  %fc = fcmp.olt %f4, f100.0
  %b0 = icmp.eq %i9, 4
  %b1 = icmp.ne %i9, 5
  %b2 = icmp.slt %i9, 6
  %b3 = icmp.sle %i9, 7
  %b4 = icmp.sgt %i9, 1
  %b5 = icmp.sge %i9, 2
  %i10 = fptosi %f4 to i64
  %z = zext %b0 to i64
  %t = trunc %i10 to i32
  %pi = ptrtoint %h to i64
  %pp = inttoptr %pi to ptr
  %g = gep %pp, %z, 8
  store %i10, %g
  %v = load i64, %g
  %cur = chunk.begin %h, 8
  prefetch %h, 4
  %ca = chunk.access.r %cur, %g
  %v2 = load i64, %ca
  %gw = guard.w %g
  store %v2, %gw
  %r = call i64 @callee(%v)
  condbr %b1, a, b
a:
  br join
b:
  br join
join:
  %phi = phi i64 [ %r, a ], [ %v, b ]
  ret %phi
}
)";
    auto module = parseOrDie(text);
    EXPECT_EQ(ir::verifyModule(*module), "");
    const std::string once = ir::moduleToString(*module);
    auto again = ir::parseModule(once);
    ASSERT_TRUE(again.ok()) << again.error;
    EXPECT_EQ(ir::moduleToString(*again.module), once);
}

TEST(InterpEdge, NestedChunkedLoopsReArmCursors)
{
    // An outer loop re-entering an inner chunked loop: chunk.begin
    // re-executes per outer iteration and must re-arm (and unpin) the
    // cursor correctly.
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(65536)
  br init
init:
  %i = phi i64 [ 0, entry ], [ %i2, init ]
  %p = gep %a, %i, 4
  %i32 = trunc %i to i32
  store %i32, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 16384
  condbr %c, init, outer.pre
outer.pre:
  br outer
outer:
  %r = phi i64 [ 0, outer.pre ], [ %r2, inner.done ]
  %acc0 = phi i64 [ 0, outer.pre ], [ %accN, inner.done ]
  br inner
inner:
  %j = phi i64 [ 0, outer ], [ %j2, inner ]
  %acc = phi i64 [ %acc0, outer ], [ %acc2, inner ]
  %q = gep %a, %j, 4
  %v = load i32, %q
  %acc2 = add %acc, %v
  %j2 = add %j, 1
  %jc = icmp.slt %j2, 16384
  condbr %jc, inner, inner.done
inner.done:
  %accN = phi i64 [ %acc2, inner ]
  %r2 = add %r, 1
  %rc = icmp.slt %r2, 3
  condbr %rc, outer, exit
exit:
  ret %accN
}
)";
    auto module = parseOrDie(text);
    PassManager manager;
    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::All;
    addTrackFmPipeline(manager, options);
    ASSERT_TRUE(manager.run(*module).ok());

    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    cfg.objectSizeBytes = 4096;
    TfmRuntime rt(cfg, CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    const std::int64_t per_pass = 16384ll * 16383 / 2;
    EXPECT_EQ(result.returnValue, 3 * per_pass);
    // After completion every pin must be released.
    rt.runtime().evacuateAll();
}

TEST(LoopChunkEdge, LoopWithoutPreheaderIsSkipped)
{
    // The header has two out-of-loop predecessors, so there is no
    // unique preheader; the pass must skip it, not crash.
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(4096)
  condbr 1, pre1, pre2
pre1:
  br loop
pre2:
  br loop
loop:
  %i = phi i64 [ 0, pre1 ], [ 1, pre2 ], [ %i2, loop ]
  %p = gep %a, %i, 4
  %i32 = trunc %i to i32
  store %i32, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 1024
  condbr %c, loop, exit
exit:
  ret 0
}
)";
    auto module = parseOrDie(text);
    GuardPass guards;
    guards.run(*module);
    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::All;
    LoopChunkPass pass(options);
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(pass.loopsChunked(), 0u);
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(LoopChunkEdge, NonContiguousStrideIsRejected)
{
    // Stride 2 elements: the access skips half the elements, so the
    // Fig. 5 rewrite does not apply.
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8192)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %p = gep %a, %i, 4
  %i32 = trunc %i to i32
  store %i32, %p
  %i2 = add %i, 2
  %c = icmp.slt %i2, 2048
  condbr %c, loop, exit
exit:
  ret 0
}
)";
    auto module = parseOrDie(text);
    GuardPass guards;
    guards.run(*module);
    TrackFmPassOptions options;
    options.chunkPolicy = ChunkPolicy::All;
    LoopChunkPass pass(options);
    EXPECT_FALSE(pass.run(*module));
}

TEST(PipelineEdge, EmptyModuleIsFine)
{
    ir::Module module;
    PassManager manager;
    addO1Pipeline(manager);
    addTrackFmPipeline(manager, TrackFmPassOptions{});
    const PipelineReport report = manager.run(module);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.instructionsAfter, 0u);
}

TEST(PipelineEdge, FunctionWithoutMainStillTransforms)
{
    const char *text = R"(
func @helper(%p: ptr) -> i64 {
entry:
  %v = load i64, %p
  ret %v
}
)";
    auto module = parseOrDie(text);
    PassManager manager;
    addTrackFmPipeline(manager, TrackFmPassOptions{});
    const PipelineReport report = manager.run(*module);
    EXPECT_TRUE(report.ok());
    // Unknown-provenance argument still gets guarded (custody check
    // keeps it correct either way).
    bool has_guard = false;
    for (const auto &block :
         module->findFunction("helper")->basicBlocks()) {
        for (const auto &inst : block->instructions())
            has_guard |= (inst->op() == ir::Opcode::Guard);
    }
    EXPECT_TRUE(has_guard);
}

TEST(InterpEdge, SignedRemainderAndDivision)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = sdiv -7, 2
  %b = srem -7, 2
  %c = mul %a, 100
  %d = add %c, %b
  ret %d
}
)";
    auto module = parseOrDie(text);
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    TfmRuntime rt(cfg, CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.returnValue, -301); // -3*100 + -1
}

TEST(InterpEdge, DivisionByZeroTraps)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %z = sub 1, 1
  %a = sdiv 7, %z
  ret %a
}
)";
    auto module = parseOrDie(text);
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    TfmRuntime rt(cfg, CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.trapped);
    EXPECT_NE(result.trapMessage.find("division by zero"),
              std::string::npos);
}

TEST(InterpEdge, TruncMasksHighBits)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %big = shl 1, 40
  %sum = add %big, 255
  %t = trunc %sum to i8
  %z = zext %t to i64
  ret %z
}
)";
    auto module = parseOrDie(text);
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    TfmRuntime rt(cfg, CostParams{});
    Interpreter interp(*module, rt);
    const RunResult result = interp.run("main");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.returnValue, 255);
}

TEST(O1Edge, FoldingDivisionByZeroIsLeftAlone)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  %a = sdiv 7, 0
  ret %a
}
)";
    auto module = parseOrDie(text);
    ConstantFoldPass fold;
    EXPECT_FALSE(fold.run(*module));
    EXPECT_EQ(ir::verifyModule(*module), "");
}

TEST(AnalysisEdge, SelfLoopIsANaturalLoop)
{
    const char *text = R"(
func @main() -> i64 {
entry:
  br spin
spin:
  %i = phi i64 [ 0, entry ], [ %i2, spin ]
  %i2 = add %i, 1
  %c = icmp.slt %i2, 10
  condbr %c, spin, exit
exit:
  ret %i2
}
)";
    auto module = parseOrDie(text);
    const ir::Function *fn = module->findFunction("main");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    const LoopInfo loops(*fn, cfg, dom);
    ASSERT_EQ(loops.loops().size(), 1u);
    EXPECT_EQ(loops.loops()[0]->header, fn->findBlock("spin"));
    EXPECT_EQ(loops.loops()[0]->preheader, fn->findBlock("entry"));
}

} // namespace
} // namespace tfm
