/**
 * @file
 * Miscellaneous coverage: corners of the substrate APIs that the main
 * suites exercise only incidentally.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "aifmlib/remote_array.hh"
#include "fastswap/fastswap_runtime.hh"
#include "net/network_model.hh"
#include "obs/trace_reader.hh"
#include "sim/usr_dist.hh"
#include "tfm/chunk.hh"
#include "tfm/guard_trace.hh"
#include "workloads/backend_config.hh"
#include "workloads/stream.hh"

namespace tfm
{
namespace
{

TEST(NetworkModelMisc, OutboundLinkSerializesWritebacks)
{
    CycleClock clock;
    CostParams costs;
    costs.netBytesPerCycle = 1.0;
    NetworkModel net(clock, costs);
    net.writebackAsync(1000);
    const std::uint64_t first_free = net.outboundFreeAt();
    net.writebackAsync(1000);
    EXPECT_GE(net.outboundFreeAt(), first_free + 1000);
    EXPECT_EQ(net.stats().writebackMessages, 2u);
}

TEST(NetworkModelMisc, ZeroByteFetchStillPaysLatency)
{
    CycleClock clock;
    const CostParams costs;
    NetworkModel net(clock, costs);
    net.fetchSync(0);
    EXPECT_GE(clock.now(), costs.netLatencyCycles);
}

TEST(UsrDistMisc, DeterministicForSameSeed)
{
    UsrSizeDist a(9), b(9);
    for (int i = 0; i < 100; i++) {
        const KvSize sa = a.next();
        const KvSize sb = b.next();
        EXPECT_EQ(sa.keyBytes, sb.keyBytes);
        EXPECT_EQ(sa.valueBytes, sb.valueBytes);
    }
}

TEST(GuardTraceMisc, DumpIsTraceEventJson)
{
    GuardTrace trace;
    trace.enable(4);
    trace.record(tfmEncode(0x100), 50, GuardPath::FastRead);
    trace.record(0x7fff0000, 60, GuardPath::CustodyReject);
    std::ostringstream os;
    trace.dump(os);
    ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(parseTrace(os.str(), parsed, error)) << error;
    // dump() labels the stream with 'M' metadata records; the guard
    // events themselves are the timed ones.
    std::vector<ParsedEvent> timed;
    for (const ParsedEvent &e : parsed.events) {
        if (e.ph != 'M')
            timed.push_back(e);
    }
    ASSERT_EQ(timed.size(), 2u);
    EXPECT_EQ(timed[0].name, "fast-read");
    EXPECT_EQ(timed[0].ph, 'i');
    EXPECT_EQ(timed[0].ts, 50u);
    EXPECT_EQ(timed[0].args.at("addr"), tfmEncode(0x100));
    EXPECT_EQ(timed[1].name, "custody-reject");
    EXPECT_EQ(timed[1].ts, 60u);
}

TEST(FastswapMisc, EvacuateAllFlushesReadaheadState)
{
    FastswapConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    cfg.readaheadEnabled = true;
    FastswapRuntime fs(cfg, CostParams{});
    const std::uint64_t heap = fs.allocate(512 << 10);
    fs.store<std::uint64_t>(heap, 99); // major fault + readahead
    fs.evacuateAll();
    // Inflight readahead pages were dropped cleanly; data survives.
    EXPECT_EQ(fs.load<std::uint64_t>(heap), 99u);
}

TEST(ChunkCursorMisc, ElementSizeMustDivideObjectSize)
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    cfg.objectSizeBytes = 64;
    TfmRuntime rt(cfg, CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(256);
    EXPECT_DEATH(ChunkCursorRaw(rt, addr, 24, false),
                 "divide the object size");
}

TEST(RemoteArrayMisc, WriteIteratorPersists)
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 32 << 10;
    cfg.objectSizeBytes = 256;
    AifmRuntime rt(cfg, CostParams{});
    const int n = 2048;
    RemoteArray<std::int32_t> array(rt, n);
    {
        DerefScope scope(rt);
        auto it = array.begin(scope, /*for_write=*/true);
        for (int i = 0; i < n; i++)
            it.write(i * 11);
    }
    rt.runtime().evacuateAll();
    for (int i = 0; i < n; i += 127)
        EXPECT_EQ(array.peek(static_cast<std::size_t>(i)), i * 11);
}

TEST(BackendMisc, DeallocWorksOnEveryBackend)
{
    for (const SystemKind kind : {SystemKind::Local, SystemKind::TrackFm,
                                  SystemKind::Fastswap, SystemKind::Aifm}) {
        BackendConfig cfg;
        cfg.kind = kind;
        cfg.farHeapBytes = 1 << 20;
        cfg.localMemBytes = 256 << 10;
        auto backend = makeBackend(cfg, CostParams{});
        const std::uint64_t a = backend->alloc(1024);
        backend->dealloc(a);
        const std::uint64_t b = backend->alloc(1024);
        EXPECT_EQ(a, b) << systemName(kind) << " did not recycle";
    }
}

TEST(BackendMisc, GuardEventsAreTrackFmOnly)
{
    for (const SystemKind kind : {SystemKind::Local, SystemKind::Fastswap,
                                  SystemKind::Aifm}) {
        BackendConfig cfg;
        cfg.kind = kind;
        cfg.farHeapBytes = 1 << 20;
        cfg.localMemBytes = 64 << 10;
        auto backend = makeBackend(cfg, CostParams{});
        const std::uint64_t addr = backend->alloc(4096);
        backend->readT<std::uint64_t>(addr, AccessHint::Random);
        EXPECT_EQ(backend->guardEvents(), 0u) << systemName(kind);
    }
}

TEST(StreamWorkloadMisc, TriadValuesVerify)
{
    BackendConfig cfg;
    cfg.kind = SystemKind::Local;
    cfg.farHeapBytes = 4 << 20;
    cfg.localMemBytes = 4 << 20;
    auto backend = makeBackend(cfg, CostParams{});
    StreamWorkload stream(*backend, 1000, 3);
    stream.runCopy(); // b = a
    const StreamResult triad = stream.runTriad(1, 3);
    // c[last] = a[999] + 3 * b[999] = 4 * (999 % 1000 - 500).
    EXPECT_EQ(triad.checksum, 4 * (999 - 500));
}

TEST(StreamWorkloadMisc, FourByteElementsExpectedSumMatches)
{
    BackendConfig cfg;
    cfg.kind = SystemKind::TrackFm;
    cfg.farHeapBytes = 4 << 20;
    cfg.localMemBytes = 1 << 20;
    auto backend = makeBackend(cfg, CostParams{});
    StreamWorkload stream(*backend, 30000, 2, 4);
    EXPECT_EQ(stream.runSum().checksum, stream.expectedSum());
    EXPECT_EQ(stream.elementBytes(), 4u);
    EXPECT_EQ(stream.workingSetBytes(), 2u * 30000 * 4);
}

TEST(RegionAllocatorMisc, ZeroByteRequestYieldsDistinctBlocks)
{
    RegionAllocator alloc(1 << 20, 4096);
    const std::uint64_t a = alloc.allocate(0);
    const std::uint64_t b = alloc.allocate(0);
    EXPECT_NE(a, b);
    EXPECT_GE(alloc.sizeOf(a), 1u);
}

TEST(CycleClockMisc, SecondsConversionRoundTrips)
{
    // 1 ms at 2.4 GHz.
    EXPECT_DOUBLE_EQ(CycleClock::toSeconds(2'400'000, 2.4), 1e-3);
}

} // namespace
} // namespace tfm
