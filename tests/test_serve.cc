/**
 * @file
 * Tests for the traffic-serving subsystem: arrival-process statistics,
 * scheduler queueing-delay accounting under overload, tenant isolation
 * under round-robin dispatch, drain-to-empty termination, determinism,
 * and the serve.* stat export.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "serve/arrival.hh"
#include "serve/scheduler.hh"
#include "sim/cost_params.hh"
#include "sim/stats.hh"

namespace tfm
{
namespace
{

/** Sample mean and variance of @p n exact gaps from @p process. */
void
gapMoments(ArrivalProcess &process, int n, double *mean_out,
           double *var_out)
{
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; i++) {
        const double gap = process.nextGapExact();
        sum += gap;
        sum_sq += gap * gap;
    }
    const double mean = sum / n;
    *mean_out = mean;
    *var_out = sum_sq / n - mean * mean;
}

/**
 * Poisson arrivals: exponential inter-arrival gaps with mean 1/rate and
 * variance 1/rate^2. 200K samples put the sampling error well under
 * the 5% tolerance, and the seed is fixed, so this never flakes.
 */
TEST(Arrival, PoissonGapMeanAndVariance)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Poisson;
    cfg.ratePerCycle = 1e-3;
    ArrivalProcess process(cfg, 77);

    double mean = 0.0, var = 0.0;
    gapMoments(process, 200000, &mean, &var);
    EXPECT_NEAR(mean, 1000.0, 0.05 * 1000.0);
    EXPECT_NEAR(var, 1e6, 0.05 * 1e6);
}

/**
 * MMPP shares the long-run mean rate with Poisson at equal config (the
 * calm/burst rates are derived to make that true) but is
 * over-dispersed: gap variance strictly above the exponential's.
 */
TEST(Arrival, MmppMatchesMeanRateButOverdisperses)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Mmpp;
    cfg.ratePerCycle = 1e-3;
    cfg.burstMultiplier = 8.0;
    cfg.calmDwellCycles = 50000.0;
    cfg.burstDwellCycles = 10000.0;
    ArrivalProcess process(cfg, 78);

    double mean = 0.0, var = 0.0;
    gapMoments(process, 200000, &mean, &var);
    EXPECT_NEAR(mean, 1000.0, 0.08 * 1000.0);
    EXPECT_GT(var, 1.3 * mean * mean);
}

TEST(Arrival, QuantizedGapsAreAtLeastOneCycle)
{
    ArrivalConfig cfg;
    cfg.ratePerCycle = 10.0; // gaps ~0.1 cycle: all would round to 0
    ArrivalProcess process(cfg, 79);
    for (int i = 0; i < 1000; i++)
        EXPECT_GE(process.nextGapCycles(), 1u);
}

TEST(Arrival, ClientIdsCoverThePopulation)
{
    ArrivalConfig cfg;
    cfg.clients = 1000000;
    ArrivalProcess process(cfg, 80);
    std::uint64_t max_seen = 0;
    for (int i = 0; i < 10000; i++) {
        const std::uint64_t c = process.nextClient();
        EXPECT_LT(c, cfg.clients);
        max_seen = std::max(max_seen, c);
    }
    // Uniform over a million ids: the max of 10K draws lands in the
    // top percentile with overwhelming probability.
    EXPECT_GT(max_seen, cfg.clients / 2);
}

/** Small, fast tenant config for scheduler tests. */
TenantConfig
smallTenant(TenantWorkloadKind kind)
{
    TenantConfig t;
    t.workload = kind;
    t.numKeys = 512;
    t.farHeapBytes = 4ull << 20;
    t.localMemBytes = 128ull << 10;
    return t;
}

ServeConfig
baseConfig(double rate_per_cycle, std::uint64_t requests)
{
    ServeConfig sc;
    sc.tenants = {smallTenant(TenantWorkloadKind::Memcached),
                  smallTenant(TenantWorkloadKind::Hashmap)};
    sc.arrivals.ratePerCycle = rate_per_cycle;
    sc.workers = 1;
    sc.totalRequests = requests;
    sc.seed = 99;
    return sc;
}

/**
 * Overload (offered >> capacity): every request completes, queueing
 * delay dwarfs service time, and the sojourn bookkeeping is exact —
 * sum(sojourn) == sum(queue delay) + sum(service) because each
 * request's sojourn is their sum by construction.
 */
TEST(Scheduler, OverloadAccountsQueueingSeparately)
{
    const CostParams costs;
    ServeConfig sc = baseConfig(0.0, 400);
    // Calibrate capacity, then offer 5x it.
    const double mean_service =
        meanServiceCycles(sc.tenants[0], costs, sc.seed, 100);
    sc.arrivals.ratePerCycle = 5.0 / mean_service;

    Scheduler sched(sc, costs);
    const ServeReport report = sched.run();
    const TenantReport &agg = report.aggregate;

    EXPECT_EQ(agg.arrivals, 400u);
    EXPECT_EQ(agg.completions, 400u);
    EXPECT_EQ(agg.sojourn.sum(),
              agg.queueDelay.sum() + agg.serviceTime.sum());
    // 5x overload: mean queue delay must dominate mean service.
    EXPECT_GT(agg.queueDelay.mean(), 3.0 * agg.serviceTime.mean());
    // The queue must actually have built up.
    EXPECT_GT(agg.maxQueueDepth, 20u);
}

/**
 * Tenant isolation: a 20x-hotter tenant saturates the worker, but
 * round-robin dispatch bounds the cold tenant's queueing delay to a
 * handful of service times — the hot tenant's backlog cannot starve
 * it. The hot tenant, by contrast, sees delays orders of magnitude
 * above a single service time.
 */
TEST(Scheduler, HotTenantCannotStarveColdTenant)
{
    const CostParams costs;
    ServeConfig sc = baseConfig(0.0, 1500);
    sc.tenants[0].share = 20.0; // hot
    sc.tenants[1].share = 1.0;  // cold
    const double mean_service =
        meanServiceCycles(sc.tenants[0], costs, sc.seed, 100);
    sc.arrivals.ratePerCycle = 1.5 / mean_service; // 1.5x capacity

    Scheduler sched(sc, costs);
    const ServeReport report = sched.run();
    ASSERT_EQ(report.tenants.size(), 2u);
    const TenantReport &hot = report.tenants[0];
    const TenantReport &cold = report.tenants[1];

    ASSERT_GT(hot.arrivals, 10 * cold.arrivals);
    // The cold tenant's rare requests wait at most ~its queue position
    // times one round of the rotation; the hot tenant's backlog piles
    // up behind its own share of the turns.
    EXPECT_GT(hot.queueDelay.mean(), 5.0 * cold.queueDelay.mean());
    // Cold-tenant p99 stays within a small multiple of the service
    // cost; with no isolation (FIFO over the merged queue) it would
    // match the hot tenant's collapse instead.
    EXPECT_LT(static_cast<double>(cold.queueDelay.percentile(99)),
              0.25 * static_cast<double>(hot.queueDelay.percentile(99)));
    EXPECT_EQ(hot.completions, hot.arrivals);
    EXPECT_EQ(cold.completions, cold.arrivals);
}

/** Drain-to-empty: the run ends only when every arrival completed. */
TEST(Scheduler, DrainsToEmpty)
{
    const CostParams costs;
    ServeConfig sc = baseConfig(1e-5, 300);
    Scheduler sched(sc, costs);
    const ServeReport report = sched.run();

    EXPECT_EQ(report.aggregate.arrivals, 300u);
    EXPECT_EQ(report.aggregate.completions, 300u);
    std::uint64_t tenant_completions = 0;
    for (const TenantReport &t : report.tenants) {
        EXPECT_EQ(t.arrivals, t.completions);
        tenant_completions += t.completions;
    }
    EXPECT_EQ(tenant_completions, 300u);
    EXPECT_GE(report.endCycle, report.lastArrivalCycle);
}

TEST(Scheduler, DeterministicForSameSeed)
{
    const CostParams costs;
    const auto run = [&costs]() {
        ServeConfig sc = baseConfig(2e-5, 250);
        sc.tenants.push_back(
            smallTenant(TenantWorkloadKind::Analytics));
        Scheduler sched(sc, costs);
        return sched.run();
    };
    const ServeReport a = run();
    const ServeReport b = run();
    EXPECT_EQ(a.endCycle, b.endCycle);
    EXPECT_EQ(a.lastArrivalCycle, b.lastArrivalCycle);
    EXPECT_EQ(a.aggregate.sojourn.sum(), b.aggregate.sojourn.sum());
    EXPECT_EQ(a.aggregate.queueDelay.sum(),
              b.aggregate.queueDelay.sum());
    for (std::size_t i = 0; i < a.tenants.size(); i++) {
        EXPECT_EQ(a.tenants[i].serviceTime.sum(),
                  b.tenants[i].serviceTime.sum());
        EXPECT_EQ(a.tenants[i].maxQueueDepth,
                  b.tenants[i].maxQueueDepth);
    }
}

TEST(Scheduler, SloViolationsGateGoodput)
{
    const CostParams costs;
    ServeConfig sc = baseConfig(0.0, 400);
    const double mean_service =
        meanServiceCycles(sc.tenants[0], costs, sc.seed, 100);
    sc.arrivals.ratePerCycle = 3.0 / mean_service; // overload
    sc.sloCycles = static_cast<std::uint64_t>(2.0 * mean_service);

    Scheduler sched(sc, costs);
    const ServeReport report = sched.run();
    const TenantReport &agg = report.aggregate;
    // Overloaded with a tight SLO: some but not all requests violate,
    // and goodput is exactly completions minus violations.
    EXPECT_GT(agg.sloViolations, 0u);
    EXPECT_LT(agg.sloViolations, agg.completions);
    EXPECT_EQ(agg.goodput(), agg.completions - agg.sloViolations);
}

TEST(ServeReport, ExportsServeStats)
{
    const CostParams costs;
    ServeConfig sc = baseConfig(2e-5, 100);
    Scheduler sched(sc, costs);
    const ServeReport report = sched.run();

    StatSet set;
    report.exportStats(set);
    EXPECT_EQ(set.get("serve.arrivals"), 100u);
    EXPECT_EQ(set.get("serve.completions"), 100u);
    EXPECT_NE(set.find("serve.sojourn.p999"), nullptr);
    EXPECT_NE(set.find("serve.queue_delay.p99"), nullptr);
    EXPECT_NE(set.find("serve.service.p50"), nullptr);
    EXPECT_NE(set.find("serve.end_cycle"), nullptr);
    // Per-tenant blocks use the derived "tenant<i>-<workload>" names.
    EXPECT_NE(set.find("serve.tenant0-memcached.completions"), nullptr);
    EXPECT_NE(set.find("serve.tenant1-hashmap.sojourn.p99"), nullptr);
}

TEST(Histogram, SloExportCarriesTailPercentiles)
{
    Histogram h;
    for (int i = 1; i <= 1000; i++)
        h.record(i);
    StatSet set;
    h.exportSloStats(set, "x");
    EXPECT_EQ(set.get("x.count"), 1000u);
    EXPECT_GE(set.get("x.p999"), set.get("x.p99"));
    EXPECT_GE(set.get("x.p99"), set.get("x.p50"));
    EXPECT_NE(set.find("x.mean"), nullptr);
}

} // anonymous namespace
} // namespace tfm
