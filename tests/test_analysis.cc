/**
 * @file
 * Unit tests for the compiler analyses: CFG, dominators, loops,
 * induction variables, heap provenance.
 */

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/heap_provenance.hh"
#include "analysis/induction_variable.hh"
#include "analysis/loop_info.hh"
#include "ir/parser.hh"
#include "ir_test_programs.hh"

namespace tfm
{
namespace
{

ir::ParseResult
parseOrDie(const char *text)
{
    auto result = ir::parseModule(text);
    EXPECT_TRUE(result.ok()) << result.error;
    return result;
}

TEST(CfgAnalysis, RpoStartsAtEntry)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const ir::Function *main_fn = parsed.module->findFunction("main");
    const Cfg cfg(*main_fn);
    ASSERT_FALSE(cfg.reversePostOrder().empty());
    EXPECT_EQ(cfg.reversePostOrder().front(), main_fn->entry());
    EXPECT_EQ(cfg.reversePostOrder().size(), 5u);
}

TEST(CfgAnalysis, PredecessorsAreComplete)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const ir::Function *main_fn = parsed.module->findFunction("main");
    const Cfg cfg(*main_fn);
    ir::BasicBlock *loop = main_fn->findBlock("loop");
    const auto &preds = cfg.predecessors(loop);
    EXPECT_EQ(preds.size(), 2u); // compute + the loop itself
}

TEST(CfgAnalysis, UnreachableBlocksAreReported)
{
    const char *text = R"(
func @f() -> i64 {
entry:
  ret 1
island:
  ret 2
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    EXPECT_TRUE(cfg.reachable(fn->findBlock("entry")));
    EXPECT_FALSE(cfg.reachable(fn->findBlock("island")));
}

TEST(Dominators, EntryDominatesEverything)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const ir::Function *main_fn = parsed.module->findFunction("main");
    const Cfg cfg(*main_fn);
    const DominatorTree dom(*main_fn, cfg);
    for (const auto &block : main_fn->basicBlocks())
        EXPECT_TRUE(dom.dominates(main_fn->entry(), block.get()));
}

TEST(Dominators, LoopHeaderDominatesBody)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const ir::Function *main_fn = parsed.module->findFunction("main");
    const Cfg cfg(*main_fn);
    const DominatorTree dom(*main_fn, cfg);
    EXPECT_TRUE(dom.dominates(main_fn->findBlock("init"),
                              main_fn->findBlock("loop")));
    EXPECT_FALSE(dom.dominates(main_fn->findBlock("loop"),
                               main_fn->findBlock("init")));
    EXPECT_EQ(dom.idom(main_fn->entry()), nullptr);
}

TEST(Dominators, UnreachableBlocksAreOutsideTheTree)
{
    const char *text = R"(
func @f() -> i64 {
entry:
  ret 1
island:
  br island2
island2:
  br island
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    ir::BasicBlock *entry = fn->findBlock("entry");
    ir::BasicBlock *island = fn->findBlock("island");
    EXPECT_FALSE(cfg.reachable(island));
    // Nothing reachable dominates an unreachable block; dominance
    // stays reflexive even off the tree.
    EXPECT_FALSE(dom.dominates(entry, island));
    EXPECT_TRUE(dom.dominates(island, island));
    EXPECT_EQ(dom.idom(island), nullptr);
}

TEST(Dominators, SelfLoopHeader)
{
    const char *text = R"(
func @f(%n: i64) -> i64 {
entry:
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %i2 = add %i, 1
  %c = icmp.slt %i2, %n
  condbr %c, loop, exit
exit:
  ret %i2
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    ir::BasicBlock *loop = fn->findBlock("loop");
    EXPECT_EQ(dom.idom(loop), fn->findBlock("entry"));
    EXPECT_TRUE(dom.dominates(loop, loop));
    EXPECT_TRUE(dom.dominates(loop, fn->findBlock("exit")));
    EXPECT_FALSE(dom.dominates(fn->findBlock("exit"), loop));
}

TEST(Dominators, CriticalEdgeDiamond)
{
    // entry -> join is a critical edge (entry has two successors,
    // join has two predecessors); neither arm may claim the join.
    const char *text = R"(
func @f(%n: i64) -> i64 {
entry:
  %c = icmp.slt %n, 3
  condbr %c, left, join
left:
  br join
join:
  %v = phi i64 [ 1, entry ], [ 2, left ]
  ret %v
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    EXPECT_EQ(dom.idom(fn->findBlock("join")), fn->findBlock("entry"));
    EXPECT_FALSE(
        dom.dominates(fn->findBlock("left"), fn->findBlock("join")));
    EXPECT_TRUE(
        dom.dominates(fn->findBlock("entry"), fn->findBlock("left")));
}

TEST(Dominators, MultiPredJoinIdomIsNearestCommonDominator)
{
    const char *text = R"(
func @f(%n: i64) -> i64 {
entry:
  %c = icmp.slt %n, 3
  condbr %c, a, b
a:
  br join
b:
  %c2 = icmp.slt %n, 5
  condbr %c2, c, join
c:
  br join
join:
  %v = phi i64 [ 1, a ], [ 2, b ], [ 3, c ]
  ret %v
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    ir::BasicBlock *join = fn->findBlock("join");
    EXPECT_EQ(cfg.predecessors(join).size(), 3u);
    EXPECT_EQ(dom.idom(join), fn->findBlock("entry"));
    EXPECT_EQ(dom.idom(fn->findBlock("c")), fn->findBlock("b"));
    EXPECT_TRUE(dom.dominates(fn->findBlock("b"), fn->findBlock("c")));
    EXPECT_FALSE(dom.dominates(fn->findBlock("b"), join));
    EXPECT_FALSE(dom.dominates(fn->findBlock("c"), join));
}

TEST(Loops, FindsBothLoopsWithPreheaders)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const ir::Function *main_fn = parsed.module->findFunction("main");
    const Cfg cfg(*main_fn);
    const DominatorTree dom(*main_fn, cfg);
    const LoopInfo loops(*main_fn, cfg, dom);
    ASSERT_EQ(loops.loops().size(), 2u);
    for (const auto &loop : loops.loops()) {
        EXPECT_NE(loop->preheader, nullptr);
        EXPECT_EQ(loop->blocks.size(), 1u); // single-block loops
        EXPECT_EQ(loop->depth, 1u);
    }
}

TEST(Loops, DetectsNesting)
{
    const char *text = R"(
func @f(%n: i64) -> i64 {
entry:
  br outer
outer:
  %i = phi i64 [ 0, entry ], [ %i2, outer.latch ]
  br inner
inner:
  %j = phi i64 [ 0, outer ], [ %j2, inner ]
  %j2 = add %j, 1
  %cj = icmp.slt %j2, %n
  condbr %cj, inner, outer.latch
outer.latch:
  %i2 = add %i, 1
  %ci = icmp.slt %i2, %n
  condbr %ci, outer, exit
exit:
  ret %i
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    const LoopInfo loops(*fn, cfg, dom);
    ASSERT_EQ(loops.loops().size(), 2u);
    const Loop *inner = loops.innermostLoopFor(fn->findBlock("inner"));
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->header, fn->findBlock("inner"));
    EXPECT_EQ(inner->depth, 2u);
}

TEST(InductionVariablesAnalysis, FindsLoopCounter)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const ir::Function *main_fn = parsed.module->findFunction("main");
    const Cfg cfg(*main_fn);
    const DominatorTree dom(*main_fn, cfg);
    const LoopInfo loops(*main_fn, cfg, dom);

    const Loop *sum_loop =
        loops.innermostLoopFor(main_fn->findBlock("loop"));
    ASSERT_NE(sum_loop, nullptr);
    const InductionVariables ivs(*sum_loop, *main_fn);
    // %j is a basic IV; %acc is also detected structurally only if its
    // step is constant — it is not (step is %v), so exactly one IV.
    ASSERT_EQ(ivs.basicIvs().size(), 1u);
    EXPECT_EQ(ivs.basicIvs()[0].step, 1);
}

TEST(InductionVariablesAnalysis, FindsStridedAccess)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const ir::Function *main_fn = parsed.module->findFunction("main");
    const Cfg cfg(*main_fn);
    const DominatorTree dom(*main_fn, cfg);
    const LoopInfo loops(*main_fn, cfg, dom);

    const Loop *init_loop =
        loops.innermostLoopFor(main_fn->findBlock("init"));
    const InductionVariables ivs(*init_loop, *main_fn);
    ASSERT_EQ(ivs.stridedAccesses().size(), 1u);
    const StridedAccess &access = ivs.stridedAccesses()[0];
    EXPECT_TRUE(access.isWrite);
    EXPECT_EQ(access.strideBytes, 8);
    EXPECT_EQ(access.elementBytes, 8u);
    EXPECT_EQ(access.guard, nullptr); // guards not inserted yet
}

TEST(InductionVariablesAnalysis, LoopInvariantBase)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const ir::Function *main_fn = parsed.module->findFunction("main");
    const Cfg cfg(*main_fn);
    const DominatorTree dom(*main_fn, cfg);
    const LoopInfo loops(*main_fn, cfg, dom);
    const Loop *init_loop =
        loops.innermostLoopFor(main_fn->findBlock("init"));
    const InductionVariables ivs(*init_loop, *main_fn);
    const StridedAccess &access = ivs.stridedAccesses()[0];
    EXPECT_TRUE(ivs.isLoopInvariant(access.base));
    EXPECT_FALSE(ivs.isLoopInvariant(access.iv->phi));
}

TEST(InductionVariablesAnalysis, NegativeStepFromSubUpdate)
{
    const char *text = R"(
func @f() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br loop
loop:
  %i = phi i64 [ 999, entry ], [ %i2, loop ]
  %p = gep %a, %i, 8
  store %i, %p
  %i2 = sub %i, 1
  %c = icmp.slt %i2, 0
  condbr %c, exit, loop
exit:
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    const LoopInfo loops(*fn, cfg, dom);
    const Loop *loop = loops.innermostLoopFor(fn->findBlock("loop"));
    ASSERT_NE(loop, nullptr);
    const InductionVariables ivs(*loop, *fn);
    ASSERT_EQ(ivs.basicIvs().size(), 1u);
    EXPECT_EQ(ivs.basicIvs()[0].step, -1);
    ASSERT_EQ(ivs.stridedAccesses().size(), 1u);
    EXPECT_EQ(ivs.stridedAccesses()[0].strideBytes, -8);
}

TEST(InductionVariablesAnalysis, NonUnitConstantStep)
{
    const char *text = R"(
func @f() -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %p = gep %a, %i, 8
  store %i, %p
  %i2 = add %i, 3
  %c = icmp.slt %i2, 999
  condbr %c, loop, exit
exit:
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    const LoopInfo loops(*fn, cfg, dom);
    const Loop *loop = loops.innermostLoopFor(fn->findBlock("loop"));
    ASSERT_NE(loop, nullptr);
    const InductionVariables ivs(*loop, *fn);
    ASSERT_EQ(ivs.basicIvs().size(), 1u);
    EXPECT_EQ(ivs.basicIvs()[0].step, 3);
    ASSERT_EQ(ivs.stridedAccesses().size(), 1u);
    EXPECT_EQ(ivs.stridedAccesses()[0].strideBytes, 24);
}

TEST(InductionVariablesAnalysis, MultiBlockUpdateIsConservativelyMissed)
{
    // The phi's loop-carried value is itself a phi over two updates
    // (+1 or +2 picked per iteration): not a basic IV. The analysis
    // must stay conservative — no IV, no strided access — rather than
    // guess a step.
    const char *text = R"(
func @f(%n: i64) -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i3, latch ]
  %p = gep %a, %i, 8
  store %i, %p
  %c = icmp.slt %i, %n
  condbr %c, fast, slow
fast:
  %if = add %i, 1
  br latch
slow:
  %is = add %i, 2
  br latch
latch:
  %i3 = phi i64 [ %if, fast ], [ %is, slow ]
  %c2 = icmp.slt %i3, 1000
  condbr %c2, loop, exit
exit:
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    const LoopInfo loops(*fn, cfg, dom);
    const Loop *loop = loops.innermostLoopFor(fn->findBlock("loop"));
    ASSERT_NE(loop, nullptr);
    const InductionVariables ivs(*loop, *fn);
    EXPECT_TRUE(ivs.basicIvs().empty());
    EXPECT_TRUE(ivs.stridedAccesses().empty());
}

TEST(InductionVariablesAnalysis, RuntimeBoundedTripCountStillAnalyzes)
{
    // The bound is a function argument: the trip count is unknown at
    // compile time, but the IV structure (phi + constant step) and the
    // byte stride are still fully derivable.
    const char *text = R"(
func @f(%n: i64) -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %p = gep %a, %i, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, %n
  condbr %c, loop, exit
exit:
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    const LoopInfo loops(*fn, cfg, dom);
    const Loop *loop = loops.innermostLoopFor(fn->findBlock("loop"));
    ASSERT_NE(loop, nullptr);
    const InductionVariables ivs(*loop, *fn);
    ASSERT_EQ(ivs.basicIvs().size(), 1u);
    EXPECT_EQ(ivs.basicIvs()[0].step, 1);
    EXPECT_TRUE(ivs.isLoopInvariant(fn->arguments()[0].get()));
    ASSERT_EQ(ivs.stridedAccesses().size(), 1u);
    EXPECT_EQ(ivs.stridedAccesses()[0].strideBytes, 8);
}

TEST(InductionVariablesAnalysis, InterchangedNestingKeepsIvsPerLoop)
{
    // Inner loop over %j, but the access is driven by the outer %i:
    // from the inner loop's perspective the address is loop-invariant
    // (no strided access); from the outer loop's it strides by 8.
    const char *text = R"(
func @f(%n: i64) -> i64 {
entry:
  %a = call ptr @malloc(8000)
  br outer
outer:
  %i = phi i64 [ 0, entry ], [ %i2, outer.latch ]
  br inner
inner:
  %j = phi i64 [ 0, outer ], [ %j2, inner ]
  %p = gep %a, %i, 8
  store %j, %p
  %j2 = add %j, 1
  %cj = icmp.slt %j2, %n
  condbr %cj, inner, outer.latch
outer.latch:
  %i2 = add %i, 1
  %ci = icmp.slt %i2, %n
  condbr %ci, outer, exit
exit:
  ret 0
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const Cfg cfg(*fn);
    const DominatorTree dom(*fn, cfg);
    const LoopInfo loops(*fn, cfg, dom);
    const Loop *inner = loops.innermostLoopFor(fn->findBlock("inner"));
    const Loop *outer = loops.innermostLoopFor(fn->findBlock("outer"));
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, outer);

    const InductionVariables innerIvs(*inner, *fn);
    ASSERT_EQ(innerIvs.basicIvs().size(), 1u);
    EXPECT_EQ(innerIvs.basicIvs()[0].phi->name(), "j");
    // %i is defined outside the inner loop: invariant there, so the
    // access does not stride in the inner nest.
    EXPECT_TRUE(innerIvs.isLoopInvariant(
        fn->findBlock("outer")->instructions().front().get()));
    EXPECT_TRUE(innerIvs.stridedAccesses().empty());

    const InductionVariables outerIvs(*outer, *fn);
    ASSERT_EQ(outerIvs.basicIvs().size(), 1u);
    EXPECT_EQ(outerIvs.basicIvs()[0].phi->name(), "i");
}

TEST(HeapProvenanceAnalysis, MallocIsHeapAllocaIsNot)
{
    auto parsed = parseOrDie(testprogs::sumProgram);
    const ir::Function *main_fn = parsed.module->findFunction("main");
    const HeapProvenance provenance(*main_fn);
    // %a = call @malloc: Heap. Derived geps: Heap.
    for (const auto &block : main_fn->basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            if (inst->op() == ir::Opcode::Call) {
                EXPECT_EQ(provenance.of(inst.get()), Provenance::Heap);
            }
            if (inst->op() == ir::Opcode::Gep) {
                EXPECT_TRUE(provenance.needsGuard(inst.get()));
                EXPECT_EQ(provenance.of(inst.get()), Provenance::Heap);
            }
        }
    }
}

TEST(HeapProvenanceAnalysis, StackAccessesNeedNoGuard)
{
    auto parsed = parseOrDie(testprogs::stackProgram);
    const ir::Function *main_fn = parsed.module->findFunction("main");
    const HeapProvenance provenance(*main_fn);
    for (const auto &block : main_fn->basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            if (inst->op() == ir::Opcode::Alloca ||
                inst->op() == ir::Opcode::Gep) {
                EXPECT_FALSE(provenance.needsGuard(inst.get()));
            }
        }
    }
}

TEST(HeapProvenanceAnalysis, ArgumentsAreUnknown)
{
    const char *text = R"(
func @f(%p: ptr) -> i64 {
entry:
  %v = load i64, %p
  ret %v
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const HeapProvenance provenance(*fn);
    const ir::Value *arg = fn->arguments()[0].get();
    EXPECT_EQ(provenance.of(arg), Provenance::Unknown);
    EXPECT_TRUE(provenance.needsGuard(arg)); // custody check decides
}

TEST(HeapProvenanceAnalysis, PhiMergesToUnknown)
{
    const char *text = R"(
func @f(%c: i64) -> i64 {
entry:
  %h = call ptr @malloc(64)
  %s = alloca 64
  condbr %c, a, b
a:
  br join
b:
  br join
join:
  %p = phi ptr [ %h, a ], [ %s, b ]
  %v = load i64, %p
  ret %v
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const HeapProvenance provenance(*fn);
    const ir::BasicBlock *join = fn->findBlock("join");
    const ir::Instruction *phi = join->instructions().front().get();
    EXPECT_EQ(provenance.of(phi), Provenance::Unknown);
    EXPECT_TRUE(provenance.needsGuard(phi));
}

TEST(HeapProvenanceAnalysis, IntCastsPreserveCustody)
{
    // The paper: "even if a pointer is cast to an integer type ... the
    // resulting load/store will still be properly guarded".
    const char *text = R"(
func @f() -> i64 {
entry:
  %h = call ptr @malloc(64)
  %as_int = ptrtoint %h to i64
  %bumped = add %as_int, 8
  %back = inttoptr %bumped to ptr
  %v = load i64, %back
  ret %v
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const HeapProvenance provenance(*fn);
    for (const auto &inst : fn->entry()->instructions()) {
        if (inst->name() == "back") {
            EXPECT_EQ(provenance.of(inst.get()), Provenance::Heap);
        }
    }
}

TEST(HeapProvenanceAnalysis, RevalAndChunkTranslateTheRawPointer)
{
    // guard.reval and chunk.access carry the guard/cursor in operand 0
    // and the raw pointer in operand 1; provenance must follow the
    // pointer, not the translation machinery.
    const char *text = R"(
func @f() -> i64 {
entry:
  %p = call ptr @malloc(32)
  %g = guard.w %p, epoch
  store 1, %g
  %cur = chunk.begin %p, 8
  br loop
loop:
  %h = guard.reval.r %g, %p
  %v = load i64, %h
  %ca = chunk.access.r %cur, %p
  %w = load i64, %ca
  %c = icmp.slt %v, %w
  condbr %c, loop, exit
exit:
  ret %v
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const HeapProvenance provenance(*fn);
    for (const auto &block : fn->basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            if (inst->op() == ir::Opcode::Guard ||
                inst->op() == ir::Opcode::GuardReval ||
                inst->op() == ir::Opcode::ChunkAccess) {
                EXPECT_EQ(provenance.of(inst.get()), Provenance::Heap)
                    << "%" << inst->name();
            }
        }
    }
}

TEST(HeapProvenanceAnalysis, SelfReferentialPhiStaysGuardable)
{
    // A pointer-chase phi feeding its own gep: the pessimistic seed
    // makes the cycle converge to Unknown, which still takes a guard —
    // the analysis may lose precision but never soundness.
    const char *text = R"(
func @f(%n: i64) -> i64 {
entry:
  %h = call ptr @malloc(64)
  br loop
loop:
  %p = phi ptr [ %h, entry ], [ %p2, loop ]
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %p2 = gep %p, 1, 8
  %i2 = add %i, 1
  %c = icmp.slt %i2, %n
  condbr %c, loop, exit
exit:
  %v = load i64, %p
  ret %v
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const HeapProvenance provenance(*fn);
    const ir::Instruction *phi =
        fn->findBlock("loop")->instructions().front().get();
    ASSERT_EQ(phi->op(), ir::Opcode::Phi);
    EXPECT_EQ(provenance.of(phi), Provenance::Unknown);
    EXPECT_TRUE(provenance.needsGuard(phi));
}

TEST(HeapProvenanceAnalysis, AllHeapJoinStaysHeap)
{
    const char *text = R"(
func @f(%n: i64) -> i64 {
entry:
  %a = call ptr @malloc(8)
  %b = call ptr @malloc(8)
  %c = icmp.slt %n, 3
  condbr %c, l, r
l:
  br join
r:
  br join
join:
  %p = phi ptr [ %a, l ], [ %b, r ]
  %v = load i64, %p
  ret %v
}
)";
    auto parsed = parseOrDie(text);
    const ir::Function *fn = parsed.module->findFunction("f");
    const HeapProvenance provenance(*fn);
    const ir::Instruction *phi =
        fn->findBlock("join")->instructions().front().get();
    EXPECT_EQ(provenance.of(phi), Provenance::Heap);
}

} // namespace
} // namespace tfm
