/**
 * @file
 * Property-based tests: parameterized sweeps asserting invariants that
 * must hold across the whole configuration space — allocator layout
 * laws, runtime conservation laws, cost-model monotonicity, and
 * cross-system result agreement under randomized access patterns.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "runtime/far_mem_runtime.hh"
#include "sim/rng.hh"
#include "tfm/cost_model.hh"
#include "tfm/tfm_runtime.hh"
#include "workloads/backend_config.hh"

namespace tfm
{
namespace
{

// ---------------------------------------------------------------------
// Allocator layout laws across object sizes and request sizes.
// ---------------------------------------------------------------------

class AllocatorLaws
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>>
{
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocatorLaws,
    ::testing::Combine(::testing::Values(64u, 256u, 1024u, 4096u),
                       ::testing::Values(1, 2, 3)));

TEST_P(AllocatorLaws, BlocksNeverOverlapOrStraddle)
{
    const auto [object_size, seed] = GetParam();
    RegionAllocator alloc(8 << 20, object_size);
    Rng rng(static_cast<std::uint64_t>(seed));

    struct Block
    {
        std::uint64_t offset;
        std::uint64_t size;
    };
    std::vector<Block> live;

    for (int step = 0; step < 500; step++) {
        if (!live.empty() && rng.below(3) == 0) {
            const std::size_t victim = rng.below(live.size());
            alloc.deallocate(live[victim].offset);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(victim));
            continue;
        }
        const std::uint64_t request = 1 + rng.below(3 * object_size);
        const std::uint64_t offset = alloc.allocate(request);
        ASSERT_NE(offset, RegionAllocator::badOffset);
        const std::uint64_t rounded = alloc.sizeOf(offset);
        ASSERT_GE(rounded, request);

        // Law 1: no overlap with any live block.
        for (const Block &block : live) {
            const bool disjoint = offset + rounded <= block.offset ||
                                  block.offset + block.size <= offset;
            ASSERT_TRUE(disjoint)
                << "overlap at " << offset << "+" << rounded;
        }
        // Law 2: sub-object blocks never straddle an object boundary.
        if (rounded < object_size) {
            ASSERT_EQ(offset / object_size,
                      (offset + rounded - 1) / object_size);
        } else {
            // Law 3: multi-object blocks are object-aligned.
            ASSERT_EQ(offset % object_size, 0u);
        }
        live.push_back({offset, rounded});
    }
}

// ---------------------------------------------------------------------
// Runtime conservation laws under randomized access patterns.
// ---------------------------------------------------------------------

class RuntimeLaws : public ::testing::TestWithParam<std::uint32_t>
{
};

INSTANTIATE_TEST_SUITE_P(ObjectSizes, RuntimeLaws,
                         ::testing::Values(64u, 256u, 1024u, 4096u));

TEST_P(RuntimeLaws, DataSurvivesArbitraryEvictionSchedules)
{
    const std::uint32_t object_size = GetParam();
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 8ull * object_size; // brutal pressure
    cfg.objectSizeBytes = object_size;
    cfg.prefetchEnabled = true;
    cfg.prefetchDepth = 4;
    TfmRuntime rt(cfg, CostParams{});

    const std::uint64_t words = (256 << 10) / 8;
    const std::uint64_t addr = rt.tfmMalloc(words * 8);
    Rng rng(99);

    // Shadow model in host memory.
    std::vector<std::uint64_t> shadow(words, 0);
    for (int step = 0; step < 4000; step++) {
        const std::uint64_t index = rng.below(words);
        if (rng.below(2) == 0) {
            const std::uint64_t value = rng();
            rt.store<std::uint64_t>(addr + index * 8, value);
            shadow[index] = value;
        } else {
            ASSERT_EQ(rt.load<std::uint64_t>(addr + index * 8),
                      shadow[index])
                << "at index " << index << " step " << step;
        }
    }
}

TEST_P(RuntimeLaws, FetchesAndNetworkBytesAgree)
{
    const std::uint32_t object_size = GetParam();
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 16ull * object_size;
    cfg.objectSizeBytes = object_size;
    cfg.prefetchEnabled = false;
    FarMemRuntime rt(cfg, CostParams{});

    const std::uint64_t offset = rt.allocate(512 << 10);
    Rng rng(7);
    for (int i = 0; i < 1000; i++)
        rt.localize(offset + rng.below(512 << 10), rng.below(2) == 0);

    // Drain the coalescing buffer so deferred writebacks are on the
    // wire before checking conservation.
    rt.flushWritebacks();

    // Conservation: every byte fetched belongs to a demand fetch of
    // exactly one object (prefetch disabled). Objects resurrected from
    // the writeback buffer moved no bytes at all.
    EXPECT_EQ(rt.net().stats().bytesFetched,
              rt.stats().demandFetches * object_size);
    // Every dirty writeback moved exactly one object, whether it went
    // out alone or coalesced into a batch.
    EXPECT_EQ(rt.net().stats().bytesWrittenBack,
              (rt.stats().dirtyWritebacks - rt.stats().writebackBufferHits) *
                  object_size);
    // Evictions never exceed frame fills (frames are conserved); a
    // fill is either a demand fetch or a writeback-buffer resurrection.
    EXPECT_LE(rt.stats().evictions,
              rt.stats().demandFetches + rt.stats().writebackBufferHits);
}

TEST_P(RuntimeLaws, ResidentObjectsNeverExceedFrames)
{
    const std::uint32_t object_size = GetParam();
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 8ull * object_size;
    cfg.objectSizeBytes = object_size;
    cfg.prefetchEnabled = true;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t offset = rt.allocate(512 << 10);

    Rng rng(13);
    for (int i = 0; i < 500; i++) {
        rt.localize(offset + rng.below(512 << 10), false);
        std::uint64_t resident = 0;
        for (std::uint64_t obj = 0; obj < rt.stateTable().numObjects();
             obj++) {
            resident += rt.stateTable()[obj].present();
        }
        ASSERT_LE(resident, rt.frameCache().numFrames());
        ASSERT_EQ(resident, rt.frameCache().usedFrames());
    }
}

// ---------------------------------------------------------------------
// Cost model monotonicity.
// ---------------------------------------------------------------------

TEST(CostModelLaws, NaiveCostGrowsFasterThanChunked)
{
    const ChunkCostModel model;
    double previous_gap = -1e18;
    for (std::uint64_t d = 2; d <= 4096; d *= 2) {
        const double gap = model.naiveCostPerObject(d) -
                           model.chunkedCostPerObject(d);
        EXPECT_GT(gap, previous_gap);
        previous_gap = gap;
    }
}

TEST(CostModelLaws, DecisionIsMonotoneInDensity)
{
    const ChunkCostModel model;
    bool chunking = false;
    for (std::uint64_t d = 1; d <= 8192; d++) {
        const bool now = model.shouldChunk(d);
        // Once chunking becomes profitable it stays profitable.
        EXPECT_TRUE(!chunking || now) << "non-monotone at d=" << d;
        chunking = now;
    }
    EXPECT_TRUE(chunking);
}

// ---------------------------------------------------------------------
// Cross-system agreement under randomized mixed workloads.
// ---------------------------------------------------------------------

class CrossSystemAgreement : public ::testing::TestWithParam<int>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSystemAgreement,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_P(CrossSystemAgreement, RandomProgramsAgreeEverywhere)
{
    const int seed = GetParam();
    // A randomized mixed read/write/stream workload executed on every
    // backend must produce bit-identical checksums.
    std::uint64_t reference = 0;
    bool have_reference = false;
    for (const SystemKind kind : {SystemKind::Local, SystemKind::TrackFm,
                                  SystemKind::Fastswap, SystemKind::Aifm}) {
        BackendConfig cfg;
        cfg.kind = kind;
        cfg.farHeapBytes = 8 << 20;
        cfg.localMemBytes = 512 << 10;
        cfg.objectSizeBytes = 256;
        auto backend = makeBackend(cfg, CostParams{});

        const std::uint64_t words = 32768;
        const std::uint64_t addr = backend->alloc(words * 8);
        for (std::uint64_t i = 0; i < words; i++)
            backend->initT<std::uint64_t>(addr + i * 8, i * 2654435761u);
        backend->dropCaches();

        Rng rng(static_cast<std::uint64_t>(seed));
        std::uint64_t checksum = 0;
        for (int op = 0; op < 3000; op++) {
            const std::uint64_t index = rng.below(words);
            switch (rng.below(3)) {
              case 0:
                checksum ^= backend->readT<std::uint64_t>(
                    addr + index * 8, AccessHint::Random);
                break;
              case 1:
                backend->writeT<std::uint64_t>(addr + index * 8,
                                               checksum + op,
                                               AccessHint::Random);
                break;
              default: {
                const std::uint64_t count = 1 + rng.below(64);
                const std::uint64_t start =
                    rng.below(words - count);
                auto stream = backend->stream(addr + start * 8, 8,
                                              count, StreamMode::Read);
                for (std::uint64_t i = 0; i < count; i++) {
                    std::uint64_t value;
                    stream->read(&value);
                    checksum += value;
                }
                break;
              }
            }
        }
        if (!have_reference) {
            reference = checksum;
            have_reference = true;
        }
        EXPECT_EQ(checksum, reference) << systemName(kind);
    }
}

} // namespace
} // namespace tfm
