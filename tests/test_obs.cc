/**
 * @file
 * Observability-layer tests: histogram bucket/percentile math, epoch
 * time-series alignment, trace emission -> parse round trips, the
 * process-wide default sink, and end-to-end traces recorded by the real
 * runtimes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include "aifmlib/aifm_runtime.hh"
#include "fastswap/fastswap_runtime.hh"
#include "obs/obs.hh"
#include "obs/trace_reader.hh"
#include "runtime/far_mem_runtime.hh"
#include "sim/stats.hh"
#include "tfm/guard_trace.hh"
#include "tfm/tfm_runtime.hh"

namespace tfm
{
namespace
{

// ---------------------------------------------------------------- Histogram

TEST(Histogram, BucketBoundaries)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0);
    EXPECT_EQ(Histogram::bucketOf(1), 1);
    for (int k = 2; k < Histogram::numBuckets; k++) {
        // Every bucket's own bounds map back to it, and the value one
        // below the lower bound lands in the previous bucket.
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLo(k)), k);
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketHi(k)), k);
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLo(k) - 1), k - 1);
    }
    EXPECT_EQ(Histogram::bucketLo(1), 1u);
    EXPECT_EQ(Histogram::bucketHi(1), 1u);
    EXPECT_EQ(Histogram::bucketLo(5), 16u);
    EXPECT_EQ(Histogram::bucketHi(5), 31u);
}

TEST(Histogram, SingleValueDistributionIsExact)
{
    Histogram h;
    for (int i = 0; i < 100; i++)
        h.record(7);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.min(), 7u);
    EXPECT_EQ(h.max(), 7u);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
    // Min/max clamping makes every percentile exact here even though 7
    // shares bucket 3 with 4..7.
    EXPECT_EQ(h.percentile(1), 7u);
    EXPECT_EQ(h.percentile(50), 7u);
    EXPECT_EQ(h.percentile(99), 7u);
    EXPECT_EQ(h.percentile(100), 7u);
}

TEST(Histogram, PercentilesOfUniformRange)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; v++)
        h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(100), 100u);
    EXPECT_EQ(h.percentile(1), 1u);
    // Rank 50 lands in bucket [32, 63]; interpolation stays inside it.
    EXPECT_GE(h.percentile(50), 32u);
    EXPECT_LE(h.percentile(50), 63u);
    // p99 (rank 99) lands in the [64, 100] sub-range of bucket 7.
    EXPECT_GE(h.percentile(99), 64u);
    EXPECT_LE(h.percentile(99), 100u);
    // Percentiles never decrease as p grows.
    std::uint64_t prev = 0;
    for (double p = 5; p <= 100; p += 5) {
        const std::uint64_t q = h.percentile(p);
        EXPECT_GE(q, prev);
        prev = q;
    }
}

TEST(Histogram, EmptyHistogramIsAllZero)
{
    const Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ExportStatsPublishesPercentiles)
{
    Histogram h;
    h.record(10);
    h.record(20);
    StatSet set;
    h.exportStats(set, "obs.test");
    ASSERT_NE(set.find("obs.test.count"), nullptr);
    EXPECT_EQ(*set.find("obs.test.count"), 2u);
    ASSERT_NE(set.find("obs.test.p50"), nullptr);
    ASSERT_NE(set.find("obs.test.p99"), nullptr);
    ASSERT_NE(set.find("obs.test.max"), nullptr);
    EXPECT_EQ(*set.find("obs.test.max"), 20u);
}

// -------------------------------------------------------------- Time series

TEST(TimeSeries, EpochAlignmentAndSparseness)
{
    TimeSeriesSampler s(100);
    EXPECT_TRUE(s.enabled());
    // First snapshot is due immediately for any stream.
    EXPECT_TRUE(s.due(0, 5));
    s.record(0, 5, "depth", 42);
    s.advance(0, 5);
    // Inside the same epoch: not due again.
    EXPECT_FALSE(s.due(0, 99));
    EXPECT_TRUE(s.due(0, 100));
    // A jump across several epochs produces one aligned row, not
    // backfill for the skipped epochs.
    s.record(0, 357, "depth", 43);
    s.advance(0, 357);
    EXPECT_FALSE(s.due(0, 399));
    EXPECT_TRUE(s.due(0, 400));
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.all()[0].epochStart, 0u);
    EXPECT_EQ(s.all()[0].at, 5u);
    EXPECT_EQ(s.all()[1].epochStart, 300u);
    EXPECT_EQ(s.all()[1].at, 357u);
    // Streams are independent.
    EXPECT_TRUE(s.due(7, 0));
}

TEST(TimeSeries, DisabledSamplerIsNeverDue)
{
    TimeSeriesSampler s(0);
    EXPECT_FALSE(s.enabled());
    EXPECT_FALSE(s.due(0, 12345));
}

TEST(TimeSeries, ObservabilityCounterSampleMirrorsToTrace)
{
    ObsConfig cfg;
    cfg.trace = true;
    cfg.epochCycles = 1000;
    Observability obs(cfg);
    const std::uint32_t stream = obs.registerStream("test");
    ASSERT_TRUE(obs.seriesDue(stream, 50));
    obs.counterSample(stream, 50, {{"depth", 3}, {"bytes", 4096}});
    EXPECT_FALSE(obs.seriesDue(stream, 999));
    EXPECT_TRUE(obs.seriesDue(stream, 1000));
    EXPECT_EQ(obs.series().size(), 2u);
    // Each metric also became a 'C' trace event.
    std::size_t counters = 0;
    for (const TraceEvent &e : obs.trace().all()) {
        if (e.ph == 'C')
            counters++;
    }
    EXPECT_EQ(counters, 2u);
}

// ------------------------------------------------------- Trace round trips

TEST(TraceEvent, EmitParseRoundTrip)
{
    ObsConfig cfg;
    cfg.trace = true;
    Observability obs(cfg);
    const std::uint32_t s = obs.registerStream("unit");
    TraceSink &sink = obs.trace();
    sink.complete(s, TrackNetIn, "net.fetch", "net", 100, 50);
    sink.arg("bytes", 4096);
    sink.arg("payloads", 2);
    sink.begin(s, TrackApp, "demand-fetch", "runtime", 200);
    sink.instant(s, TrackApp, "evict", "runtime", 210);
    sink.arg("obj", 9);
    sink.end(s, TrackApp, "demand-fetch", "runtime", 250);
    sink.counter(s, "frames_used", 300, 17);

    std::ostringstream os;
    obs.writeTrace(os);
    ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(parseTrace(os.str(), parsed, error)) << error;
    EXPECT_EQ(parsed.dropped, 0u);

    // registerStream() labels the stream with 'M' metadata records;
    // keep only the timed events for the shape assertions.
    std::vector<ParsedEvent> timed;
    for (const ParsedEvent &e : parsed.events) {
        if (e.ph != 'M')
            timed.push_back(e);
    }
    ASSERT_EQ(timed.size(), 5u);

    const ParsedEvent &fetch = timed[0];
    EXPECT_EQ(fetch.ph, 'X');
    EXPECT_EQ(fetch.name, "net.fetch");
    EXPECT_EQ(fetch.ts, 100u);
    EXPECT_EQ(fetch.dur, 50u);
    EXPECT_EQ(fetch.args.at("bytes"), 4096u);
    EXPECT_EQ(fetch.args.at("payloads"), 2u);
    EXPECT_EQ(timed[1].ph, 'B');
    EXPECT_EQ(timed[2].ph, 'i');
    EXPECT_EQ(timed[2].args.at("obj"), 9u);
    EXPECT_EQ(timed[3].ph, 'E');
    EXPECT_EQ(timed[4].ph, 'C');
    EXPECT_EQ(timed[4].args.at("value"), 17u);

    // Timestamps non-decreasing per (pid, tid) in buffer order — the
    // invariant Perfetto needs for span nesting.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> last;
    for (const ParsedEvent &e : timed) {
        const auto track = std::make_pair(e.pid, e.tid);
        const auto it = last.find(track);
        if (it != last.end()) {
            EXPECT_GE(e.ts, it->second) << e.name;
        }
        last[track] = e.ts;
    }
}

TEST(TraceEvent, BoundedSinkCountsDrops)
{
    TraceSink sink(2);
    sink.instant(0, 0, "a", "t", 1);
    sink.instant(0, 0, "b", "t", 2);
    sink.instant(0, 0, "c", "t", 3); // over capacity
    sink.arg("x", 1);                // must not corrupt event "b"
    EXPECT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.dropped(), 1u);
    EXPECT_EQ(sink.all()[1].argName[0], nullptr);
}

TEST(TraceEvent, DisabledSinkRecordsNothing)
{
    ObsConfig cfg;
    cfg.trace = false;
    Observability obs(cfg);
    EXPECT_FALSE(obs.trace().enabled());
    obs.trace().instant(0, 0, "x", "t", 1);
    EXPECT_EQ(obs.trace().size(), 0u);
    // Histograms still work without a trace buffer.
    obs.fetchLatency.record(10);
    EXPECT_EQ(obs.fetchLatency.count(), 1u);
}

TEST(TraceEvent, JsonStringsAreEscaped)
{
    TraceSink sink(4);
    sink.instant(0, 0, "quote\"back\\slash", "t", 1);
    std::ostringstream os;
    sink.write(os);
    ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(parseTrace(os.str(), parsed, error)) << error;
    ASSERT_EQ(parsed.events.size(), 1u);
    EXPECT_EQ(parsed.events[0].name, "quote\"back\\slash");
}

// ----------------------------------------------------------- Default sink

TEST(DefaultSink, InstallAndClear)
{
    EXPECT_EQ(obs::defaultSink(), nullptr);
    Observability sink;
    obs::setDefaultSink(&sink);
    EXPECT_EQ(obs::defaultSink(), &sink);
    // A runtime constructed with no explicit sink picks up the default.
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 256 << 10;
    FarMemRuntime rt(cfg, CostParams{});
    EXPECT_EQ(rt.obs(), &sink);
    obs::setDefaultSink(nullptr);
    EXPECT_EQ(obs::defaultSink(), nullptr);
    FarMemRuntime bare(cfg, CostParams{});
    EXPECT_EQ(bare.obs(), nullptr);
}

// --------------------------------------------------- End-to-end (runtimes)

TEST(RuntimeTrace, FarMemDemandMissesProduceSpans)
{
    Observability obs;
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    cfg.obs = &obs;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t base = rt.allocate(512 << 10);
    // Stream through enough objects to force demand misses, prefetch
    // issue, evictions, and writeback flushes.
    for (std::uint64_t off = 0; off < (512u << 10); off += 4096) {
        std::uint64_t value = off;
        std::memcpy(rt.localize(base + off, true), &value, sizeof(value));
    }
    rt.flushWritebacks();

    EXPECT_GT(obs.demandFetch.count(), 0u);
    EXPECT_GT(obs.fetchLatency.count(), 0u);
    EXPECT_GT(obs.fetchLatency.percentile(50), 0u);
    EXPECT_GT(obs.interMissDist.count(), 0u);
    EXPECT_GT(obs.wbResidency.count(), 0u);

    std::ostringstream os;
    obs.writeTrace(os);
    ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(parseTrace(os.str(), parsed, error)) << error;

    std::map<std::string, std::size_t> byName;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> last;
    for (const ParsedEvent &e : parsed.events) {
        byName[e.name]++;
        const auto track = std::make_pair(e.pid, e.tid);
        const auto it = last.find(track);
        if (it != last.end()) {
            ASSERT_GE(e.ts, it->second)
                << e.name << " at ts " << e.ts;
        }
        last[track] = e.ts;
    }
    EXPECT_GT(byName["demand-fetch"], 0u);
    EXPECT_GT(byName["net.fetch"], 0u);
    EXPECT_GT(byName["evict"], 0u);
    EXPECT_GT(byName["remote.fetch"], 0u);
    EXPECT_GT(byName["net.writeback"], 0u);

    // The stats export carries the histogram summaries.
    StatSet set;
    rt.exportStats(set);
    ASSERT_NE(set.find("obs.fetch_latency.p50"), nullptr);
    EXPECT_GT(*set.find("obs.fetch_latency.p50"), 0u);
}

TEST(RuntimeTrace, TfmGuardSlowPathsAreTraced)
{
    Observability obs;
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    cfg.obs = &obs;
    TfmRuntime tfm(cfg, CostParams{});
    const std::uint64_t arr = tfm.tfmMalloc(256 << 10);
    for (std::uint64_t off = 0; off < (256u << 10); off += 4096)
        tfm.store<std::uint64_t>(arr + off, off);

    std::size_t slow = 0;
    for (const TraceEvent &e : obs.trace().all()) {
        if (std::string(e.cat) == "guard")
            slow++;
    }
    EXPECT_GT(slow, 0u);
    EXPECT_GT(tfm.guardStats().slowRemoteWrites, 0u);
}

TEST(RuntimeTrace, FastswapFaultsProduceSpans)
{
    Observability obs;
    FastswapConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    cfg.obs = &obs;
    FastswapRuntime fs(cfg, CostParams{});
    const std::uint64_t heap = fs.allocate(512 << 10);
    for (std::uint64_t off = 0; off < (512u << 10); off += 4096)
        fs.store<std::uint64_t>(heap + off, off);

    EXPECT_GT(obs.faultLatency.count(), 0u);
    EXPECT_GT(obs.faultLatency.percentile(99), 0u);

    std::map<std::string, std::size_t> byName;
    for (const TraceEvent &e : obs.trace().all())
        byName[e.name]++;
    EXPECT_GT(byName["major-fault"], 0u);
    EXPECT_GT(byName["readahead"], 0u);
    EXPECT_GT(byName["minor-fault"], 0u);
    EXPECT_GT(byName["reclaim"], 0u);
}

TEST(RuntimeTrace, StreamsGetDistinctPids)
{
    Observability obs;
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 64 << 10;
    cfg.obs = &obs;
    TfmRuntime a(cfg, CostParams{});
    AifmRuntime b(cfg, CostParams{});
    EXPECT_NE(a.runtime().obsStream(), b.runtime().obsStream());
}

// ----------------------------------------------------------- Guard paths

TEST(GuardPathNames, EveryPathHasAName)
{
    const GuardPath paths[] = {
        GuardPath::CustodyReject,  GuardPath::FastRead,
        GuardPath::FastWrite,      GuardPath::SlowLocalRead,
        GuardPath::SlowLocalWrite, GuardPath::SlowRemoteRead,
        GuardPath::SlowRemoteWrite, GuardPath::LocalityLocal,
        GuardPath::LocalityRemote,  GuardPath::Revalidate,
    };
    std::map<std::string, int> seen;
    for (const GuardPath p : paths)
        seen[guardPathName(p)]++;
    // Ten paths, ten distinct non-placeholder names.
    EXPECT_EQ(seen.size(), 10u);
    EXPECT_EQ(seen.count("?"), 0u);
    EXPECT_EQ(seen["custody-reject"], 1);
    EXPECT_EQ(seen["fast-read"], 1);
    EXPECT_EQ(seen["fast-write"], 1);
    EXPECT_EQ(seen["slow-local-read"], 1);
    EXPECT_EQ(seen["slow-local-write"], 1);
    EXPECT_EQ(seen["slow-remote-read"], 1);
    EXPECT_EQ(seen["slow-remote-write"], 1);
    EXPECT_EQ(seen["locality-local"], 1);
    EXPECT_EQ(seen["locality-remote"], 1);
    EXPECT_EQ(seen["revalidate"], 1);
}

} // anonymous namespace
} // namespace tfm
