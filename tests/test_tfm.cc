/**
 * @file
 * Unit tests for the TrackFM layer: tagged pointers, custody checks,
 * guards, the malloc family, loop chunking, and the cost model.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "tfm/chunk.hh"
#include "tfm/cost_model.hh"
#include "tfm/far_ptr.hh"
#include "tfm/tagged_ptr.hh"
#include "tfm/tfm_runtime.hh"

namespace tfm
{
namespace
{

RuntimeConfig
smallConfig(std::uint32_t object_size = 4096, std::uint64_t frames = 16)
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 4 << 20;
    cfg.localMemBytes = frames * object_size;
    cfg.objectSizeBytes = object_size;
    cfg.prefetchEnabled = false;
    return cfg;
}

TEST(TaggedPtr, EncodeSetsBit60)
{
    const std::uint64_t addr = tfmEncode(0x1234);
    EXPECT_TRUE(tfmIsTagged(addr));
    EXPECT_EQ(tfmOffsetOf(addr), 0x1234u);
    EXPECT_EQ(addr, (1ull << 60) | 0x1234u);
}

TEST(TaggedPtr, PlainAddressesAreUntagged)
{
    int on_stack = 0;
    EXPECT_FALSE(tfmIsTagged(reinterpret_cast<std::uint64_t>(&on_stack)));
    EXPECT_FALSE(tfmIsTagged(0));
}

TEST(TaggedPtr, ArithmeticPreservesTag)
{
    std::uint64_t addr = tfmEncode(4096);
    addr += 8 * 100; // offset math through an integer cast
    EXPECT_TRUE(tfmIsTagged(addr));
    EXPECT_EQ(tfmOffsetOf(addr), 4096u + 800u);
}

TEST(TfmRuntime, MallocReturnsTaggedPointers)
{
    TfmRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(100);
    EXPECT_TRUE(tfmIsTagged(addr));
}

TEST(TfmRuntime, LoadStoreRoundTrip)
{
    TfmRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.store<std::uint64_t>(addr + 16, 0xfeedfacecafebeefull);
    EXPECT_EQ(rt.load<std::uint64_t>(addr + 16), 0xfeedfacecafebeefull);
}

TEST(TfmRuntime, FirstAccessIsSlowPathThenFast)
{
    TfmRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.load<std::uint32_t>(addr);
    EXPECT_EQ(rt.guardStats().slowRemoteReads, 1u);
    EXPECT_EQ(rt.guardStats().fastReads, 0u);
    rt.load<std::uint32_t>(addr);
    EXPECT_EQ(rt.guardStats().fastReads, 1u);
}

TEST(TfmRuntime, GuardCostsMatchTable1)
{
    const CostParams c;
    // Measure the raw Table 1 guard: the last-object inline cache would
    // otherwise serve the repeated accesses at its cheaper hit cost.
    RuntimeConfig cfg = smallConfig();
    cfg.guardCacheEnabled = false;
    TfmRuntime rt(cfg, c);
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.load<std::uint32_t>(addr); // localize (slow path + fetch)

    std::uint64_t before = rt.clock().now();
    rt.load<std::uint32_t>(addr);
    EXPECT_EQ(rt.clock().now() - before, c.fastPathReadCycles);

    before = rt.clock().now();
    rt.store<std::uint32_t>(addr, 1);
    EXPECT_EQ(rt.clock().now() - before, c.fastPathWriteCycles);
}

TEST(TfmRuntime, RevalidateFastPathHitsAndMisses)
{
    const CostParams c;
    TfmRuntime rt(smallConfig(), c);
    const std::uint64_t addr = rt.tfmMalloc(64);
    rt.guardWrite(addr); // arm: localize and capture the epoch
    const std::uint64_t epoch = rt.runtime().evictionEpoch();

    const std::uint64_t before = rt.clock().now();
    EXPECT_TRUE(rt.revalidate(addr, epoch));
    EXPECT_EQ(rt.clock().now() - before, c.revalidateCycles);
    EXPECT_EQ(rt.guardStats().revalidations, 1u);
    EXPECT_EQ(rt.guardStats().revalidationHits, 1u);
    EXPECT_EQ(rt.guardStats().revalidationMisses, 0u);

    // Any unmap bumps the eviction epoch and invalidates the arming.
    rt.runtime().evacuateAll();
    EXPECT_FALSE(rt.revalidate(addr, epoch));
    EXPECT_EQ(rt.guardStats().revalidations, 2u);
    EXPECT_EQ(rt.guardStats().revalidationHits, 1u);
    EXPECT_EQ(rt.guardStats().revalidationMisses, 1u);

    // Re-arming at the new epoch restores the fast path.
    rt.guardWrite(addr);
    EXPECT_TRUE(rt.revalidate(addr, rt.runtime().evictionEpoch()));
    EXPECT_EQ(rt.guardStats().revalidationHits, 2u);
}

TEST(TfmRuntime, CustodyCheckPassesHostPointersThrough)
{
    TfmRuntime rt(smallConfig(), CostParams{});
    std::uint64_t host_value = 99;
    const auto host_addr = reinterpret_cast<std::uint64_t>(&host_value);
    EXPECT_EQ(rt.load<std::uint64_t>(host_addr), 99u);
    EXPECT_EQ(rt.guardStats().custodyRejects, 1u);
    EXPECT_EQ(rt.guardStats().fastReads, 0u);
    EXPECT_EQ(rt.guardStats().slowTotal(), 0u);
}

TEST(TfmRuntime, WritesSurviveEvictionAndRefetch)
{
    TfmRuntime rt(smallConfig(4096, 2), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(32 * 4096);
    rt.store<std::uint64_t>(addr, 4242);
    // Push the first object out with reads of other objects.
    for (int i = 1; i < 8; i++)
        rt.load<std::uint64_t>(addr + i * 4096);
    EXPECT_EQ(rt.load<std::uint64_t>(addr), 4242u);
}

TEST(TfmRuntime, ReadGuardedStraddlesObjectBoundary)
{
    TfmRuntime rt(smallConfig(64), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(256);
    std::uint8_t data[128];
    for (int i = 0; i < 128; i++)
        data[i] = static_cast<std::uint8_t>(i);
    rt.rawWrite(addr, data, sizeof(data));

    std::uint8_t out[128] = {};
    rt.readGuarded(addr, out, sizeof(out));
    EXPECT_EQ(std::memcmp(data, out, sizeof(out)), 0);
    // 128 bytes over 64 B objects = accesses to 2 objects.
    EXPECT_EQ(rt.guardStats().slowRemoteReads, 2u);
}

TEST(TfmRuntime, CallocZeroes)
{
    TfmRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t addr = rt.tfmCalloc(100, 8);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(rt.load<std::uint64_t>(addr + i * 8), 0u);
}

TEST(TfmRuntime, CallocOverflowReturnsNull)
{
    TfmRuntime rt(smallConfig(), CostParams{});
    // count * size wraps std::size_t: calloc(3) semantics require a
    // clean failure, not a tiny allocation with a huge apparent extent.
    const std::size_t huge = std::numeric_limits<std::size_t>::max() / 8 + 1;
    EXPECT_EQ(rt.tfmCalloc(huge, 16), 0u);
    EXPECT_EQ(rt.tfmCalloc(16, huge), 0u);
    // The allocator is untouched and still usable afterwards.
    const std::uint64_t addr = rt.tfmCalloc(4, 8);
    EXPECT_TRUE(tfmIsTagged(addr));
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(rt.load<std::uint64_t>(addr + i * 8), 0u);
}

TEST(TfmRuntime, ReallocPreservesPrefix)
{
    TfmRuntime rt(smallConfig(), CostParams{});
    std::uint64_t addr = rt.tfmMalloc(64);
    rt.store<std::uint64_t>(addr, 111);
    rt.store<std::uint64_t>(addr + 8, 222);
    addr = rt.tfmRealloc(addr, 4096);
    EXPECT_TRUE(tfmIsTagged(addr));
    EXPECT_EQ(rt.load<std::uint64_t>(addr), 111u);
    EXPECT_EQ(rt.load<std::uint64_t>(addr + 8), 222u);
}

TEST(TfmRuntime, FreeRecyclesFarMemory)
{
    TfmRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t a = rt.tfmMalloc(128);
    rt.tfmFree(a);
    const std::uint64_t b = rt.tfmMalloc(128);
    EXPECT_EQ(a, b);
}

TEST(FarPtr, TypedAccessors)
{
    TfmRuntime rt(smallConfig(), CostParams{});
    auto array = FarPtr<std::int32_t>::alloc(rt, 1000);
    for (int i = 0; i < 1000; i++)
        array.init(rt, i, i * 3);
    for (int i = 0; i < 1000; i += 97)
        EXPECT_EQ(array.get(rt, i), i * 3);
    array.set(rt, 5, -7);
    EXPECT_EQ(array.get(rt, 5), -7);
    EXPECT_EQ((array + 5).get(rt), -7);
}

TEST(ChunkCursor, ReadsSequentiallyAcrossObjects)
{
    TfmRuntime rt(smallConfig(256), CostParams{});
    const int n = 512; // 8 objects of 64 elements (int32)
    auto array = FarPtr<std::int32_t>::alloc(rt, n);
    for (int i = 0; i < n; i++)
        array.init(rt, i, i);

    ChunkCursor<std::int32_t> cursor(rt, array.raw(), false);
    std::int64_t sum = 0;
    for (int i = 0; i < n; i++)
        sum += cursor.read();
    EXPECT_EQ(sum, static_cast<std::int64_t>(n) * (n - 1) / 2);
}

TEST(ChunkCursor, UsesLocalityGuardsNotFastPaths)
{
    TfmRuntime rt(smallConfig(256), CostParams{});
    const int n = 512;
    auto array = FarPtr<std::int32_t>::alloc(rt, n);
    for (int i = 0; i < n; i++)
        array.init(rt, i, i);
    {
        ChunkCursor<std::int32_t> cursor(rt, array.raw(), false);
        for (int i = 0; i < n; i++)
            cursor.read();
    }
    const GuardStats &g = rt.guardStats();
    EXPECT_EQ(g.fastReads, 0u);
    // One locality guard per object touched (512 * 4 / 256 = 8), plus
    // possibly one more for the boundary after the last element.
    EXPECT_GE(g.localityGuards, 8u);
    EXPECT_LE(g.localityGuards, 9u);
    EXPECT_EQ(g.boundaryChecks, static_cast<std::uint64_t>(n));
}

TEST(ChunkCursor, WritesArePersisted)
{
    TfmRuntime rt(smallConfig(256, 4), CostParams{});
    const int n = 1024;
    auto array = FarPtr<std::int32_t>::alloc(rt, n);
    {
        ChunkCursor<std::int32_t> cursor(rt, array.raw(), true);
        for (int i = 0; i < n; i++)
            cursor.write(i * 2);
    }
    rt.runtime().evacuateAll();
    for (int i = 0; i < n; i += 61)
        EXPECT_EQ(array.peek(rt, i), i * 2);
}

TEST(ChunkCursor, PinIsReleasedOnDestruction)
{
    TfmRuntime rt(smallConfig(4096, 4), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(8 * 4096);
    {
        ChunkCursor<std::int64_t> cursor(rt, addr, false);
        cursor.read();
    }
    // After destruction nothing is pinned, so evacuateAll succeeds.
    rt.runtime().evacuateAll();
    SUCCEED();
}

TEST(ChunkCostModel, BreakEvenNearPaperCrossover)
{
    ChunkCostModel model;
    // Fig. 6: chunking becomes advantageous around ~730 elements/object.
    EXPECT_NEAR(model.breakEvenDensity(), 730.0, 10.0);
    EXPECT_FALSE(model.shouldChunk(512));
    EXPECT_TRUE(model.shouldChunk(1024));
}

TEST(ChunkCostModel, CostsCrossAtBreakEven)
{
    ChunkCostModel model;
    const auto d = static_cast<std::uint64_t>(model.breakEvenDensity());
    EXPECT_GT(model.chunkedCostPerObject(d - 100),
              model.naiveCostPerObject(d - 100));
    EXPECT_LT(model.chunkedCostPerObject(d + 100),
              model.naiveCostPerObject(d + 100));
}

TEST(ChunkCostModel, DensityFromSizes)
{
    EXPECT_EQ(ChunkCostModel::density(4096, 4), 1024u);
    EXPECT_EQ(ChunkCostModel::density(4096, 8), 512u);
    EXPECT_EQ(ChunkCostModel::density(64, 64), 1u);
}

TEST(TfmRuntime, StatsExportIncludesGuards)
{
    TfmRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.load<std::uint32_t>(addr);
    rt.load<std::uint32_t>(addr);
    StatSet set;
    rt.exportStats(set);
    EXPECT_EQ(set.get("guard.fast_reads"), 1u);
    EXPECT_EQ(set.get("guard.slow_remote_reads"), 1u);
}

} // namespace
} // namespace tfm
