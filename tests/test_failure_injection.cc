/**
 * @file
 * Failure-injection and stress tests: resource exhaustion must fail
 * loudly (never corrupt), misuse must be caught, and the guard trace
 * must tell the truth about what happened.
 */

#include <gtest/gtest.h>

#include "net/network_model.hh"
#include "remote/remote_node.hh"
#include "sim/cost_params.hh"
#include "sim/cycle_clock.hh"
#include "sim/rng.hh"
#include "tfm/chunk.hh"
#include "tfm/guard_trace.hh"
#include "tfm/tfm_runtime.hh"
#include "workloads/backend_config.hh"
#include "workloads/trace_replay.hh"

namespace tfm
{
namespace
{

RuntimeConfig
tinyConfig(std::uint64_t frames = 4, std::uint32_t object_size = 4096)
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = frames * object_size;
    cfg.objectSizeBytes = object_size;
    cfg.prefetchEnabled = false;
    return cfg;
}

TEST(FailureInjection, FarHeapExhaustionPanics)
{
    TfmRuntime rt(tinyConfig(), CostParams{});
    rt.tfmMalloc(512 << 10);
    EXPECT_DEATH(rt.tfmMalloc(1 << 20), "far heap exhausted");
}

TEST(FailureInjection, DoubleFreeIsCaught)
{
    TfmRuntime rt(tinyConfig(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(128);
    rt.tfmFree(addr);
    EXPECT_DEATH(rt.tfmFree(addr), "unknown far pointer");
}

TEST(FailureInjection, FreeOfWildPointerIsCaught)
{
    TfmRuntime rt(tinyConfig(), CostParams{});
    rt.tfmMalloc(128);
    EXPECT_DEATH(rt.tfmFree(tfmEncode(77777)), "unknown far pointer");
}

TEST(FailureInjection, AllFramesPinnedPanicsOnNextMiss)
{
    // Pin every frame through chunk cursors, then demand another
    // object: the runtime must refuse loudly.
    TfmRuntime rt(tinyConfig(2), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(16 * 4096);
    ChunkCursor<std::int64_t> first(rt, addr, false);
    first.read(); // pins object 0
    ChunkCursor<std::int64_t> second(rt, addr + 4096, false);
    second.read(); // pins object 1 — both frames now pinned
    EXPECT_DEATH(rt.load<std::int64_t>(addr + 2 * 4096),
                 "every frame is pinned");
}

TEST(FailureInjection, UnpinWithoutPinIsCaught)
{
    TfmRuntime rt(tinyConfig(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.load<std::int64_t>(addr);
    EXPECT_DEATH(rt.runtime().unpinObject(0), "unpinning an unpinned");
}

TEST(FailureInjection, OutOfTableObjectAccessIsCaught)
{
    TfmRuntime rt(tinyConfig(), CostParams{});
    // An address past the far heap maps to no state-table entry.
    EXPECT_DEATH(rt.load<std::int64_t>(tfmEncode(8 << 20)),
                 "out of table range");
}

TEST(GuardTraceTest, RecordsPathsInOrder)
{
    TfmRuntime rt(tinyConfig(), CostParams{});
    rt.guardTrace().enable(16);
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.load<std::int64_t>(addr);  // slow remote
    rt.load<std::int64_t>(addr);  // fast
    rt.store<std::int64_t>(addr, 5); // fast write
    std::uint64_t host_value = 1;
    rt.load<std::uint64_t>(reinterpret_cast<std::uint64_t>(&host_value));

    const auto events = rt.guardTrace().chronological();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].path, GuardPath::SlowRemoteRead);
    EXPECT_EQ(events[1].path, GuardPath::FastRead);
    EXPECT_EQ(events[2].path, GuardPath::FastWrite);
    EXPECT_EQ(events[3].path, GuardPath::CustodyReject);
    // Cycles are non-decreasing.
    for (std::size_t i = 1; i < events.size(); i++)
        EXPECT_GE(events[i].cycle, events[i - 1].cycle);
}

TEST(GuardTraceTest, RingBufferKeepsNewest)
{
    TfmRuntime rt(tinyConfig(), CostParams{});
    rt.guardTrace().enable(8);
    const std::uint64_t addr = rt.tfmMalloc(4096);
    for (int i = 0; i < 50; i++)
        rt.load<std::int64_t>(addr);
    EXPECT_TRUE(rt.guardTrace().overflowed());
    const auto events = rt.guardTrace().chronological();
    ASSERT_EQ(events.size(), 8u);
    for (const GuardEvent &event : events)
        EXPECT_EQ(event.path, GuardPath::FastRead);
}

TEST(GuardTraceTest, DisabledTraceCostsNothing)
{
    TfmRuntime rt(tinyConfig(), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.load<std::int64_t>(addr);
    EXPECT_EQ(rt.guardTrace().size(), 0u);
    EXPECT_FALSE(rt.guardTrace().enabled());
}

TEST(GuardTraceTest, LocalityPathsAreTraced)
{
    TfmRuntime rt(tinyConfig(8, 256), CostParams{});
    rt.guardTrace().enable(64);
    const std::uint64_t addr = rt.tfmMalloc(1024);
    {
        ChunkCursor<std::int32_t> cursor(rt, addr, false);
        for (int i = 0; i < 256; i++)
            cursor.read();
    }
    int locality_events = 0;
    for (const GuardEvent &event : rt.guardTrace().chronological()) {
        locality_events += (event.path == GuardPath::LocalityRemote ||
                            event.path == GuardPath::LocalityLocal);
    }
    EXPECT_EQ(locality_events, 4); // 1024 B / 256 B objects
}

TEST(TraceReplayTest, ChecksumsAgreeAcrossBackends)
{
    const auto trace = TraceReplayer::phased(6, 300, 1 << 20, 5);
    std::uint64_t reference = 0;
    bool have_reference = false;
    for (const SystemKind kind : {SystemKind::Local, SystemKind::TrackFm,
                                  SystemKind::Fastswap, SystemKind::Aifm}) {
        BackendConfig cfg;
        cfg.kind = kind;
        cfg.farHeapBytes = 4 << 20;
        cfg.localMemBytes = 256 << 10;
        cfg.objectSizeBytes = 1024;
        auto backend = makeBackend(cfg, CostParams{});
        TraceReplayer replayer(*backend, 1 << 20);
        const TraceReplayResult result = replayer.replay(trace);
        EXPECT_EQ(result.operations, trace.size()) << systemName(kind);
        if (!have_reference) {
            reference = result.checksum;
            have_reference = true;
        }
        EXPECT_EQ(result.checksum, reference) << systemName(kind);
    }
}

TEST(TraceReplayTest, GeneratorsProduceBoundedOffsets)
{
    for (const auto &trace :
         {TraceReplayer::uniform(500, 1 << 20, 30, 1),
          TraceReplayer::zipfian(500, 1 << 20, 4096, 1.1, 2),
          TraceReplayer::phased(4, 100, 1 << 20, 3)}) {
        for (const TraceOp &op : trace)
            EXPECT_LT(op.offset, 1u << 20);
    }
    const auto sweeps =
        TraceReplayer::sequentialSweeps(3, 1 << 20, 8, false);
    EXPECT_EQ(sweeps.size(), 3u);
    EXPECT_EQ(sweeps[0].count, (1u << 20) / 8);
}

TEST(TraceReplayTest, ZipfTraceFavorsSmallObjectsOnTrackFm)
{
    // End-to-end: a zipfian trace shows the Fig. 9 object-size effect
    // through the replayer as well.
    const auto trace =
        TraceReplayer::zipfian(20000, 2 << 20, 64, 1.05, 11);
    std::uint64_t small_cycles = 0, large_cycles = 0;
    for (const std::uint32_t objsize : {256u, 4096u}) {
        BackendConfig cfg;
        cfg.kind = SystemKind::TrackFm;
        cfg.farHeapBytes = 8 << 20;
        cfg.localMemBytes = 256 << 10;
        cfg.objectSizeBytes = objsize;
        cfg.prefetchEnabled = false;
        auto backend = makeBackend(cfg, CostParams{});
        TraceReplayer replayer(*backend, 2 << 20);
        replayer.replay(trace); // warm
        const TraceReplayResult result = replayer.replay(trace);
        (objsize == 256 ? small_cycles : large_cycles) =
            result.delta.cycles;
    }
    EXPECT_LT(small_cycles, large_cycles);
}

TEST(StressTest, MallocFreeChurnUnderPressure)
{
    // Allocation churn with live data verification, at 8 frames.
    TfmRuntime rt(tinyConfig(8, 256), CostParams{});
    Rng rng(21);
    struct Live
    {
        std::uint64_t addr;
        std::uint64_t stamp;
        std::uint32_t words;
    };
    std::vector<Live> live;
    for (int step = 0; step < 2000; step++) {
        if (!live.empty() && rng.below(2) == 0) {
            const std::size_t index = rng.below(live.size());
            const Live item = live[index];
            for (std::uint32_t w = 0; w < item.words; w++) {
                ASSERT_EQ(rt.load<std::uint64_t>(item.addr + w * 8),
                          item.stamp + w);
            }
            rt.tfmFree(item.addr);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(index));
        } else if (live.size() < 64) {
            Live item;
            item.words = 1 + static_cast<std::uint32_t>(rng.below(32));
            item.addr = rt.tfmMalloc(item.words * 8);
            item.stamp = rng();
            for (std::uint32_t w = 0; w < item.words; w++)
                rt.store<std::uint64_t>(item.addr + w * 8,
                                        item.stamp + w);
            live.push_back(item);
        }
    }
}

TEST(FailureInjection, RemoteSegmentStraddlingCapacityNamesOffset)
{
    // A segment that starts in bounds but runs past the end of the
    // backing store must die loudly and name the offending offset, not
    // silently truncate or scribble past the store.
    CycleClock clock;
    const CostParams costs;
    NetworkModel net(clock, costs);
    RemoteNode node(1024);
    std::vector<std::byte> frame(128);
    std::vector<RemoteFetchSeg> segs{{960, frame.data(), 128}};
    EXPECT_DEATH(node.fetchBatchAsync(net, segs), "offset 960");
    EXPECT_DEATH(node.fetch(net, 960, frame.data(), 128),
                 "offset 960 len 128 capacity 1024");
}

} // namespace
} // namespace tfm
