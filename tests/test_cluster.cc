/**
 * @file
 * Tests for the sharded remote tier (src/cluster): shard-map routing,
 * single-shard equivalence with the single-node backend, read-one/
 * write-all replication, failover, and re-replication after an
 * injected shard death.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/remote_backend.hh"
#include "cluster/sharded_cluster.hh"
#include "runtime/far_mem_runtime.hh"
#include "sim/cost_params.hh"
#include "sim/cycle_clock.hh"

namespace tfm
{
namespace
{

constexpr std::uint32_t kObj = 4096;

void
expectSameNetStats(const NetStats &a, const NetStats &b)
{
    EXPECT_EQ(a.bytesFetched, b.bytesFetched);
    EXPECT_EQ(a.bytesWrittenBack, b.bytesWrittenBack);
    EXPECT_EQ(a.fetchMessages, b.fetchMessages);
    EXPECT_EQ(a.writebackMessages, b.writebackMessages);
    EXPECT_EQ(a.fetchPayloads, b.fetchPayloads);
    EXPECT_EQ(a.writebackPayloads, b.writebackPayloads);
    EXPECT_EQ(a.fetchBatches, b.fetchBatches);
    EXPECT_EQ(a.writebackBatches, b.writebackBatches);
    EXPECT_EQ(a.maxFetchBatch, b.maxFetchBatch);
    EXPECT_EQ(a.maxWritebackBatch, b.maxWritebackBatch);
}

/** Fill @p n bytes at @p seed with a recognizable per-offset pattern. */
void
fillPattern(std::vector<std::byte> &buf, std::uint64_t seed)
{
    for (std::size_t i = 0; i < buf.size(); i++)
        buf[i] = static_cast<std::byte>((seed + i) * 2654435761u >> 16);
}

TEST(ShardMap, StripedPlacementRoutesByStripe)
{
    CycleClock clock;
    const CostParams costs;
    ClusterConfig cfg;
    cfg.shardCount = 4;
    ShardedCluster cluster(clock, costs, 1 << 20, kObj, cfg);

    EXPECT_EQ(cluster.stripeBytes(), kObj);
    for (std::uint64_t obj = 0; obj < 16; obj++) {
        EXPECT_EQ(cluster.primaryShardOf(obj * kObj), obj % 4);
        // Every byte of the object routes like its first byte.
        EXPECT_EQ(cluster.primaryShardOf(obj * kObj + kObj - 1), obj % 4);
    }
}

TEST(ShardMap, ObjectExactlyOnStripeBoundary)
{
    // Two objects per stripe: the object starting exactly at a stripe
    // boundary belongs to the next stripe, not the previous one.
    CycleClock clock;
    const CostParams costs;
    ClusterConfig cfg;
    cfg.shardCount = 4;
    cfg.stripeBytes = 2 * kObj;
    ShardedCluster cluster(clock, costs, 1 << 20, kObj, cfg);

    EXPECT_EQ(cluster.primaryShardOf(0), 0u);
    EXPECT_EQ(cluster.primaryShardOf(2 * kObj - 1), 0u);
    EXPECT_EQ(cluster.primaryShardOf(2 * kObj), 1u);
    EXPECT_EQ(cluster.primaryShardOf(4 * kObj), 2u);
    EXPECT_EQ(cluster.primaryShardOf(8 * kObj), 0u); // wraps around
}

TEST(ShardMap, ReplicaSetIsRingSuccessors)
{
    CycleClock clock;
    const CostParams costs;
    ClusterConfig cfg;
    cfg.shardCount = 4;
    cfg.replicationFactor = 2;
    ShardedCluster cluster(clock, costs, 1 << 20, kObj, cfg);

    const auto set = cluster.replicasOf(3 * kObj); // primary shard 3
    ASSERT_EQ(set.count, 2u);
    EXPECT_EQ(set.shard[0], 3u);
    EXPECT_EQ(set.shard[1], 0u); // wraps around the ring
}

TEST(ShardMap, HashedPlacementCoversAllShards)
{
    CycleClock clock;
    const CostParams costs;
    ClusterConfig cfg;
    cfg.shardCount = 4;
    cfg.placement = PlacementKind::Hashed;
    ShardedCluster cluster(clock, costs, 1 << 20, kObj, cfg);

    std::vector<std::uint32_t> hits(4, 0);
    for (std::uint64_t obj = 0; obj < 256; obj++)
        hits[cluster.primaryShardOf(obj * kObj)]++;
    for (std::uint32_t s = 0; s < 4; s++)
        EXPECT_GT(hits[s], 0u) << "shard " << s << " never primary";
}

TEST(ShardMap, InvalidConfigsPanic)
{
    CycleClock clock;
    const CostParams costs;
    ClusterConfig repl;
    repl.shardCount = 2;
    repl.replicationFactor = 3;
    EXPECT_DEATH(ShardedCluster(clock, costs, 1 << 20, kObj, repl),
                 "replication factor");

    ClusterConfig stripe;
    stripe.shardCount = 2;
    stripe.stripeBytes = kObj + 512; // not a multiple of the object size
    EXPECT_DEATH(ShardedCluster(clock, costs, 1 << 20, kObj, stripe),
                 "multiple of the object");

    ClusterConfig plan;
    plan.shardCount = 2;
    plan.failures.killShard(7, 1000);
    EXPECT_DEATH(ShardedCluster(clock, costs, 1 << 20, kObj, plan),
                 "outside the cluster");
}

TEST(ClusterEquivalence, OneShardMatchesSingleNodeByteForByte)
{
    // The same operation sequence against the single-node backend and a
    // 1-shard/1-copy cluster must produce identical NetStats (every
    // field) and identical clocks: sharding is free when degenerate.
    const CostParams costs;
    const std::uint64_t cap = 1 << 20;

    const auto drive = [](RemoteBackend &b, CycleClock &clock,
                          NetStats &out) {
        std::vector<std::byte> init(8 * kObj);
        fillPattern(init, 17);
        b.rawWrite(0, init.data(), init.size());

        std::vector<std::byte> buf(kObj);
        b.fetch(0, buf.data(), kObj);
        const std::uint64_t a1 = b.fetchAsync(kObj, buf.data(), kObj);
        clock.advanceTo(a1);

        std::vector<std::byte> f2(kObj), f3(kObj), f4(kObj);
        std::vector<RemoteFetchSeg> segs{{2 * kObj, f2.data(), kObj},
                                         {3 * kObj, f3.data(), kObj},
                                         {4 * kObj, f4.data(), kObj}};
        std::vector<std::uint64_t> arrivals;
        clock.advanceTo(b.fetchBatchAsync(segs, &arrivals));

        b.writeback(5 * kObj, buf.data(), kObj);
        std::vector<RemoteWriteSeg> wsegs{{6 * kObj, f2.data(), kObj},
                                          {7 * kObj, f3.data(), kObj}};
        b.writebackBatch(wsegs);
        out = b.netStats();
    };

    CycleClock singleClock;
    SingleNodeBackend single(singleClock, costs, cap);
    NetStats singleStats;
    drive(single, singleClock, singleStats);

    CycleClock clusterClock;
    ClusterConfig cfg;
    cfg.forceCluster = true;
    ShardedCluster cluster(clusterClock, costs, cap, kObj, cfg);
    EXPECT_EQ(cluster.shardCount(), 1u);
    NetStats clusterStats;
    drive(cluster, clusterClock, clusterStats);

    expectSameNetStats(singleStats, clusterStats);
    EXPECT_EQ(singleClock.now(), clusterClock.now());
}

TEST(ClusterEquivalence, RuntimeWithForcedClusterMatchesDefault)
{
    // End-to-end: the full runtime (prefetcher, writeback coalescing,
    // eviction) over the forced 1-shard cluster reproduces the default
    // backend's NetStats and final clock exactly.
    const auto run = [](bool force, NetStats &net, std::uint64_t &cycles,
                        std::uint64_t &checksum) {
        RuntimeConfig cfg;
        cfg.farHeapBytes = 1 << 20;
        cfg.localMemBytes = 16 * kObj;
        cfg.objectSizeBytes = kObj;
        cfg.cluster.forceCluster = force;
        FarMemRuntime rt(cfg, CostParams{});
        const std::uint64_t base = rt.allocate(128 * kObj);
        for (std::uint64_t i = 0; i < 128; i++) {
            auto *p = rt.localize(base + i * kObj, true);
            std::memcpy(p, &i, sizeof(i));
        }
        checksum = 0;
        for (std::uint64_t i = 0; i < 128; i++) {
            std::uint64_t v = 0;
            std::memcpy(&v, rt.localize(base + i * kObj, false),
                        sizeof(v));
            checksum += v * (i + 1);
        }
        rt.flushWritebacks();
        net = rt.backend().netStats();
        cycles = rt.clock().now();
    };

    NetStats defNet, cluNet;
    std::uint64_t defCycles = 0, cluCycles = 0;
    std::uint64_t defSum = 0, cluSum = 0;
    run(false, defNet, defCycles, defSum);
    run(true, cluNet, cluCycles, cluSum);

    expectSameNetStats(defNet, cluNet);
    EXPECT_EQ(defCycles, cluCycles);
    EXPECT_EQ(defSum, cluSum);
}

TEST(ClusterReplication, WriteAllReadOne)
{
    CycleClock clock;
    const CostParams costs;
    ClusterConfig cfg;
    cfg.shardCount = 2;
    cfg.replicationFactor = 2;
    ShardedCluster cluster(clock, costs, 1 << 20, kObj, cfg);

    std::vector<std::byte> data(kObj);
    fillPattern(data, 42);
    cluster.writeback(0, data.data(), kObj);

    // Write-all: both shards absorbed the payload...
    std::vector<std::byte> check(kObj);
    for (std::uint32_t s = 0; s < 2; s++) {
        cluster.node(s).rawRead(0, check.data(), kObj);
        EXPECT_EQ(std::memcmp(check.data(), data.data(), kObj), 0)
            << "shard " << s << " missing the replica";
        EXPECT_EQ(cluster.shardNetStats(s).bytesWrittenBack, kObj);
    }

    // ...but read-one: a fetch touches only the primary's link.
    cluster.fetch(0, check.data(), kObj);
    EXPECT_EQ(std::memcmp(check.data(), data.data(), kObj), 0);
    EXPECT_EQ(cluster.shardNetStats(0).bytesFetched, kObj);
    EXPECT_EQ(cluster.shardNetStats(1).bytesFetched, 0u);
    EXPECT_EQ(cluster.clusterStats().degradedReads, 0u);
}

TEST(ClusterReplication, AggregateStatsSumShards)
{
    CycleClock clock;
    const CostParams costs;
    ClusterConfig cfg;
    cfg.shardCount = 4;
    ShardedCluster cluster(clock, costs, 1 << 20, kObj, cfg);

    std::vector<std::byte> buf(kObj);
    for (std::uint64_t obj = 0; obj < 8; obj++)
        cluster.fetch(obj * kObj, buf.data(), kObj);

    const NetStats total = cluster.netStats();
    EXPECT_EQ(total.bytesFetched, 8ull * kObj);
    EXPECT_EQ(total.fetchMessages, 8u);
    for (std::uint32_t s = 0; s < 4; s++)
        EXPECT_EQ(cluster.shardNetStats(s).bytesFetched, 2ull * kObj);
    EXPECT_EQ(cluster.remoteStats().fetchRequests, 8u);
}

TEST(ClusterReplication, SplitBatchKeepsPerShardCoalescing)
{
    // An 8-object host batch over 4 shards must become exactly one
    // 2-payload coalesced message per shard, not 8 singletons.
    CycleClock clock;
    const CostParams costs;
    ClusterConfig cfg;
    cfg.shardCount = 4;
    ShardedCluster cluster(clock, costs, 1 << 20, kObj, cfg);

    std::vector<std::byte> frames(8 * kObj);
    std::vector<RemoteFetchSeg> segs;
    for (std::uint64_t obj = 0; obj < 8; obj++)
        segs.push_back({obj * kObj, frames.data() + obj * kObj, kObj});
    std::vector<std::uint64_t> arrivals;
    clock.advanceTo(cluster.fetchBatchAsync(segs, &arrivals));
    ASSERT_EQ(arrivals.size(), segs.size());

    for (std::uint32_t s = 0; s < 4; s++) {
        EXPECT_EQ(cluster.shardNetStats(s).fetchMessages, 1u);
        EXPECT_EQ(cluster.shardNetStats(s).fetchPayloads, 2u);
    }
    EXPECT_DOUBLE_EQ(cluster.netStats().fetchCoalescing(), 2.0);
    EXPECT_EQ(cluster.clusterStats().splitFetchBatches, 1u);
}

TEST(ClusterFailover, ReadsRerouteToReplicaAndDataSurvives)
{
    CycleClock clock;
    const CostParams costs;
    ClusterConfig cfg;
    cfg.shardCount = 4;
    cfg.replicationFactor = 2;
    cfg.failures.killShard(1, 1); // dies at the first post-cycle-1 op
    ShardedCluster cluster(clock, costs, 1 << 20, kObj, cfg);

    std::vector<std::byte> data(kObj);
    fillPattern(data, 7);
    cluster.rawWrite(1 * kObj, data.data(), kObj); // primary: shard 1

    clock.advance(10);
    std::vector<std::byte> check(kObj);
    cluster.fetch(1 * kObj, check.data(), kObj);

    EXPECT_FALSE(cluster.shardAlive(1));
    EXPECT_EQ(cluster.clusterStats().shardFailures, 1u);
    EXPECT_GE(cluster.clusterStats().degradedReads, 1u);
    EXPECT_EQ(std::memcmp(check.data(), data.data(), kObj), 0);
    // The read was actually served by the ring successor's link.
    EXPECT_EQ(cluster.shardNetStats(1).bytesFetched, 0u);
    EXPECT_EQ(cluster.shardNetStats(2).bytesFetched, kObj);
}

TEST(ClusterFailover, DeathTriggersReReplicationOntoSurvivors)
{
    CycleClock clock;
    const CostParams costs;
    const std::uint64_t cap = 64 * kObj;
    ClusterConfig cfg;
    cfg.shardCount = 3;
    cfg.replicationFactor = 2;
    cfg.failures.killShard(0, 1);
    ShardedCluster cluster(clock, costs, cap, kObj, cfg);

    std::vector<std::byte> stripe(kObj);
    for (std::uint64_t obj = 0; obj < cap / kObj; obj++) {
        fillPattern(stripe, obj);
        cluster.rawWrite(obj * kObj, stripe.data(), kObj);
    }

    clock.advance(10);
    std::vector<std::byte> probe(kObj);
    cluster.fetch(0, probe.data(), kObj); // polls the failure plan

    EXPECT_FALSE(cluster.shardAlive(0));
    EXPECT_GT(cluster.clusterStats().reReplicatedStripes, 0u);
    EXPECT_EQ(cluster.clusterStats().reReplicatedBytes,
              cluster.clusterStats().reReplicatedStripes * kObj);

    // Every stripe is back to 2 live replicas and each holds the data.
    std::vector<std::byte> expect(kObj), got(kObj);
    for (std::uint64_t obj = 0; obj < cap / kObj; obj++) {
        const auto set = cluster.replicasOf(obj * kObj);
        ASSERT_EQ(set.count, 2u) << "object " << obj;
        fillPattern(expect, obj);
        for (std::uint32_t i = 0; i < set.count; i++) {
            EXPECT_NE(set.shard[i], 0u);
            cluster.node(set.shard[i]).rawRead(obj * kObj, got.data(),
                                               kObj);
            EXPECT_EQ(std::memcmp(got.data(), expect.data(), kObj), 0)
                << "object " << obj << " replica on shard "
                << set.shard[i];
        }
    }
}

TEST(ClusterFailover, MidWritebackFailureLeavesNoObjectUnreplicated)
{
    // Drive the full runtime with a failure injected mid-workload while
    // dirty objects cycle through the coalescing writeback buffer. At
    // the end, every object's latest bytes must sit on every live
    // replica of its stripe — nothing may be left single-copy or stale.
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = 8 * kObj;
    cfg.objectSizeBytes = kObj;
    cfg.prefetchEnabled = false;
    cfg.cluster.shardCount = 4;
    cfg.cluster.replicationFactor = 2;
    cfg.cluster.failures.killShard(2, 2'000'000);
    FarMemRuntime rt(cfg, CostParams{});
    ASSERT_STREQ(rt.backend().kind(), "sharded");

    const std::uint64_t objects = 64;
    const std::uint64_t base = rt.allocate(objects * kObj);
    // Two dirtying passes so evictions interleave with the failure.
    for (std::uint64_t pass = 0; pass < 2; pass++) {
        for (std::uint64_t i = 0; i < objects; i++) {
            auto *p = rt.localize(base + i * kObj, true);
            const std::uint64_t v = pass * 1000003 + i;
            std::memcpy(p, &v, sizeof(v));
        }
    }
    rt.flushWritebacks();
    rt.evacuateAll();
    ASSERT_GT(rt.clock().now(), 2'000'000u) << "failure never fired";

    auto &cluster = static_cast<ShardedCluster &>(rt.backend());
    EXPECT_FALSE(cluster.shardAlive(2));
    EXPECT_EQ(cluster.clusterStats().shardFailures, 1u);

    for (std::uint64_t i = 0; i < objects; i++) {
        const std::uint64_t off = base + i * kObj;
        const std::uint64_t expect = 1 * 1000003 + i;
        const auto set = cluster.replicasOf(off);
        ASSERT_EQ(set.count, 2u) << "object " << i;
        for (std::uint32_t r = 0; r < set.count; r++) {
            std::uint64_t v = 0;
            cluster.node(set.shard[r])
                .rawRead(off, reinterpret_cast<std::byte *>(&v),
                         sizeof(v));
            EXPECT_EQ(v, expect) << "object " << i << " on shard "
                                 << set.shard[r];
        }
    }
}

TEST(ClusterFailover, UnreplicatedStripeLossIsLoud)
{
    // replication factor 1: losing a shard loses data, and reading it
    // must panic instead of returning the newcomer's zero-filled store.
    CycleClock clock;
    const CostParams costs;
    ClusterConfig cfg;
    cfg.shardCount = 2;
    cfg.failures.killShard(0, 1);
    ShardedCluster cluster(clock, costs, 1 << 20, kObj, cfg);

    std::vector<std::byte> data(kObj);
    fillPattern(data, 3);
    cluster.rawWrite(0, data.data(), kObj); // stripe 0: only on shard 0

    clock.advance(10);
    std::vector<std::byte> buf(kObj);
    // Stripe 1 lives on the surviving shard and still reads fine...
    cluster.fetch(1 * kObj, buf.data(), kObj);
    EXPECT_FALSE(cluster.shardAlive(0));
    // ...but stripe 0 died with shard 0.
    EXPECT_DEATH(cluster.fetch(0, buf.data(), kObj), "lost");

    // A full overwrite re-homes the stripe on the survivors.
    cluster.writeback(0, data.data(), kObj);
    cluster.fetch(0, buf.data(), kObj);
    EXPECT_EQ(std::memcmp(buf.data(), data.data(), kObj), 0);
}

TEST(ClusterKnobs, PerShardBandwidthOverrideSlowsTransfers)
{
    const CostParams costs;
    const auto fetchCycles = [&](double bw) {
        CycleClock clock;
        ClusterConfig cfg;
        cfg.shardCount = 2;
        cfg.shardBytesPerCycle = bw;
        ShardedCluster cluster(clock, costs, 1 << 20, kObj, cfg);
        std::vector<std::byte> buf(kObj);
        cluster.fetch(0, buf.data(), kObj);
        return clock.now();
    };
    EXPECT_GT(fetchCycles(costs.netBytesPerCycle / 4),
              fetchCycles(costs.netBytesPerCycle));
}

} // anonymous namespace
} // namespace tfm
