/**
 * @file
 * Integration tests for the application workloads: identical results on
 * every memory system, plus the qualitative properties each paper
 * figure depends on.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "workloads/backend_config.hh"
#include "workloads/dataframe.hh"
#include "workloads/hashmap.hh"
#include "workloads/kmeans.hh"
#include "workloads/memcached.hh"
#include "workloads/nas.hh"

namespace tfm
{
namespace
{

BackendConfig
baseConfig(SystemKind kind)
{
    BackendConfig cfg;
    cfg.kind = kind;
    cfg.farHeapBytes = 64 << 20;
    cfg.localMemBytes = 4 << 20;
    cfg.objectSizeBytes = 4096;
    return cfg;
}

const SystemKind allSystems[] = {SystemKind::Local, SystemKind::TrackFm,
                                 SystemKind::Fastswap, SystemKind::Aifm};

TEST(HashmapWorkload, AllLookupsHitOnEveryBackend)
{
    HashmapParams params;
    params.numKeys = 20000;
    params.numOps = 50000;
    for (const SystemKind kind : allSystems) {
        auto backend = makeBackend(baseConfig(kind), CostParams{});
        HashmapWorkload workload(*backend, params);
        const HashmapResult r = workload.run();
        EXPECT_EQ(r.hits, params.numOps) << systemName(kind);
        EXPECT_GE(r.probes, r.hits) << systemName(kind);
    }
}

TEST(HashmapWorkload, SmallObjectsReduceDataTransferred)
{
    // Fig. 9/13's mechanism: zipf lookups at 4 B granularity fetch less
    // with small objects.
    HashmapParams params;
    params.numKeys = 50000;
    params.numOps = 50000;
    std::uint64_t bytes_small = 0, bytes_large = 0;
    for (const std::uint32_t objsize : {256u, 4096u}) {
        auto cfg = baseConfig(SystemKind::TrackFm);
        cfg.objectSizeBytes = objsize;
        cfg.localMemBytes = 1 << 20; // heavy pressure
        cfg.prefetchEnabled = false;
        auto backend = makeBackend(cfg, CostParams{});
        HashmapWorkload workload(*backend, params);
        const HashmapResult r = workload.run();
        (objsize == 256 ? bytes_small : bytes_large) =
            r.delta.bytesFetched;
    }
    EXPECT_LT(bytes_small * 2, bytes_large);
}

TEST(KMeansWorkload, ClusterSizesAgreeAcrossBackends)
{
    KMeansParams params;
    params.numPoints = 5000;
    params.iterations = 1;
    std::vector<std::uint64_t> reference;
    for (const SystemKind kind : allSystems) {
        auto backend = makeBackend(baseConfig(kind), CostParams{});
        KMeansWorkload workload(*backend, params);
        const KMeansResult r = workload.run();
        std::uint64_t total = 0;
        for (const auto count : r.clusterSizes)
            total += count;
        EXPECT_EQ(total, params.numPoints) << systemName(kind);
        if (reference.empty())
            reference = r.clusterSizes;
        else
            EXPECT_EQ(r.clusterSizes, reference) << systemName(kind);
    }
}

TEST(KMeansWorkload, ChunkingAllLoopsIsHarmful)
{
    // Fig. 8: indiscriminate chunking of the low-density nested loops
    // slows k-means down; the cost model avoids it.
    KMeansParams params;
    params.numPoints = 5000;
    params.iterations = 1;

    std::uint64_t cycles_by_policy[3] = {};
    const ChunkPolicy policies[] = {ChunkPolicy::None, ChunkPolicy::All,
                                    ChunkPolicy::CostModel};
    for (int i = 0; i < 3; i++) {
        auto cfg = baseConfig(SystemKind::TrackFm);
        cfg.chunkPolicy = policies[i];
        auto backend = makeBackend(cfg, CostParams{});
        KMeansWorkload workload(*backend, params);
        cycles_by_policy[i] = workload.run().delta.cycles;
    }
    // All-loops must be clearly slower than the naive baseline...
    EXPECT_GT(cycles_by_policy[1], cycles_by_policy[0] * 2);
    // ...and the cost model must beat the baseline.
    EXPECT_LT(cycles_by_policy[2], cycles_by_policy[0]);
}

TEST(MemcachedWorkload, GetsHitAndVerifyOnEveryBackend)
{
    MemcachedParams params;
    params.numKeys = 10000;
    params.numGets = 20000;
    for (const SystemKind kind : allSystems) {
        auto cfg = baseConfig(kind);
        cfg.objectSizeBytes = (kind == SystemKind::TrackFm ||
                               kind == SystemKind::Aifm)
                                  ? 64
                                  : 4096;
        auto backend = makeBackend(cfg, CostParams{});
        MemcachedWorkload workload(*backend, params);
        const MemcachedResult r = workload.run();
        EXPECT_EQ(r.hits, params.numGets) << systemName(kind);
        EXPECT_GT(r.valueBytesRead, 0u) << systemName(kind);
    }
}

TEST(MemcachedWorkload, FastswapAmplifiesIoVersusTrackFm)
{
    // Fig. 16c: page-granularity transfers amplify I/O massively for
    // tiny key/value pairs; 64 B objects keep it modest.
    MemcachedParams params;
    params.numKeys = 50000;
    params.numGets = 20000;
    params.zipfSkew = 1.02;

    // Local memory an order of magnitude below the working set: at
    // 64 B granularity the hot items fit, at page granularity every hot
    // item drags 4 KB of cold neighbours along and thrashes.
    auto tfm_cfg = baseConfig(SystemKind::TrackFm);
    tfm_cfg.objectSizeBytes = 64;
    tfm_cfg.localMemBytes = 512 << 10;
    tfm_cfg.prefetchEnabled = false;
    auto fsw_cfg = baseConfig(SystemKind::Fastswap);
    fsw_cfg.localMemBytes = 512 << 10;
    fsw_cfg.prefetchEnabled = false;

    auto tfm_backend = makeBackend(tfm_cfg, CostParams{});
    auto fsw_backend = makeBackend(fsw_cfg, CostParams{});
    MemcachedWorkload tfm_workload(*tfm_backend, params);
    MemcachedWorkload fsw_workload(*fsw_backend, params);
    const MemcachedResult tr = tfm_workload.run();
    const MemcachedResult fr = fsw_workload.run();
    EXPECT_EQ(tr.hits, fr.hits);
    EXPECT_LT(tr.delta.bytesFetched * 4, fr.delta.bytesFetched);
    EXPECT_LT(tr.delta.cycles, fr.delta.cycles);
}

TEST(MemcachedWorkload, SetThenGetRoundTrip)
{
    auto backend = makeBackend(baseConfig(SystemKind::TrackFm),
                               CostParams{});
    MemcachedParams params;
    params.numKeys = 100;
    params.numGets = 10;
    MemcachedWorkload workload(*backend, params);
    const std::uint8_t payload[5] = {9, 8, 7, 6, 5};
    workload.set(1000000, payload, sizeof(payload));
    std::uint8_t out[16];
    const int len = workload.get(1000000, out, sizeof(out));
    ASSERT_EQ(len, 5);
    EXPECT_EQ(std::memcmp(out, payload, 5), 0);
}

TEST(DataframeWorkload, AnswersMatchReferenceOnEveryBackend)
{
    DataframeParams params;
    params.numRows = 20000;
    for (const SystemKind kind : allSystems) {
        auto backend = makeBackend(baseConfig(kind), CostParams{});
        DataframeWorkload workload(*backend, params);
        const DataframeResult r = workload.run();
        const DataframeAnswers &expected = workload.expected();
        EXPECT_EQ(r.answers.tripsWithManyPassengers,
                  expected.tripsWithManyPassengers)
            << systemName(kind);
        EXPECT_EQ(r.answers.longTrips, expected.longTrips)
            << systemName(kind);
        EXPECT_EQ(r.answers.groupAggregate, expected.groupAggregate)
            << systemName(kind);
        for (int h = 0; h < 24; h++) {
            EXPECT_EQ(r.answers.totalFareByHour[h],
                      expected.totalFareByHour[h])
                << systemName(kind) << " hour " << h;
        }
    }
}

TEST(DataframeWorkload, ChunkingAllLoopsHurtsOnRowGroups)
{
    // Fig. 15: the aggregation query's tiny row-group loops make the
    // All policy slower than the cost-model policy.
    DataframeParams params;
    params.numRows = 20000;
    std::uint64_t all_cycles = 0, model_cycles = 0;
    for (const ChunkPolicy policy :
         {ChunkPolicy::All, ChunkPolicy::CostModel}) {
        auto cfg = baseConfig(SystemKind::TrackFm);
        cfg.chunkPolicy = policy;
        auto backend = makeBackend(cfg, CostParams{});
        DataframeWorkload workload(*backend, params);
        const std::uint64_t cycles = workload.run().delta.cycles;
        (policy == ChunkPolicy::All ? all_cycles : model_cycles) = cycles;
    }
    EXPECT_GT(all_cycles, model_cycles);
}

class NasKernels : public ::testing::TestWithParam<const char *>
{
};

INSTANTIATE_TEST_SUITE_P(AllKernels, NasKernels,
                         ::testing::Values("cg", "ft", "is", "mg", "sp"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST_P(NasKernels, ChecksumMatchesLocalBaseline)
{
    NasParams params;
    params.scale = 8;
    double local_checksum = 0;
    for (const SystemKind kind :
         {SystemKind::Local, SystemKind::TrackFm, SystemKind::Fastswap}) {
        auto backend = makeBackend(baseConfig(kind), CostParams{});
        auto kernel = makeNasKernel(GetParam(), *backend, params);
        const NasResult r = kernel->run();
        if (kind == SystemKind::Local)
            local_checksum = r.checksum;
        else
            EXPECT_DOUBLE_EQ(r.checksum, local_checksum)
                << systemName(kind);
    }
}

TEST_P(NasKernels, FarMemoryCostsMoreThanLocal)
{
    NasParams params;
    params.scale = 8;
    auto local_cfg = baseConfig(SystemKind::Local);
    auto tfm_cfg = baseConfig(SystemKind::TrackFm);
    tfm_cfg.localMemBytes = 256 << 10;
    auto local_backend = makeBackend(local_cfg, CostParams{});
    auto tfm_backend = makeBackend(tfm_cfg, CostParams{});
    auto local_kernel = makeNasKernel(GetParam(), *local_backend, params);
    auto tfm_kernel = makeNasKernel(GetParam(), *tfm_backend, params);
    EXPECT_GT(tfm_kernel->run().delta.cycles,
              local_kernel->run().delta.cycles);
}

TEST(NasO1, PreOptimizationCutsGuardsForFtAndSp)
{
    // Fig. 17b: running the O1 pipeline before the TrackFM passes
    // removes redundant loads and their guards.
    for (const char *name : {"ft", "sp"}) {
        NasParams naive;
        naive.scale = 8;
        NasParams optimized = naive;
        optimized.preOptimized = true;

        auto naive_backend = makeBackend(baseConfig(SystemKind::TrackFm),
                                         CostParams{});
        auto opt_backend = makeBackend(baseConfig(SystemKind::TrackFm),
                                       CostParams{});
        auto naive_kernel = makeNasKernel(name, *naive_backend, naive);
        auto opt_kernel = makeNasKernel(name, *opt_backend, optimized);
        const NasResult rn = naive_kernel->run();
        const NasResult ro = opt_kernel->run();
        EXPECT_DOUBLE_EQ(rn.checksum, ro.checksum) << name;
        EXPECT_GT(rn.delta.guardEvents, ro.delta.guardEvents * 2) << name;
        EXPECT_GT(rn.delta.cycles, ro.delta.cycles) << name;
    }
}

TEST(NasFactory, RejectsUnknownKernels)
{
    auto backend = makeBackend(baseConfig(SystemKind::Local), CostParams{});
    EXPECT_EXIT(makeNasKernel("bogus", *backend, NasParams{}),
                ::testing::ExitedWithCode(1), "unknown NAS kernel");
}

} // namespace
} // namespace tfm
