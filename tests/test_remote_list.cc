/**
 * @file
 * Tests for the remote linked list and, through it, the pointer-chase
 * access pattern on far memory — including the section 2 claim that
 * list nodes want small (64 B) objects.
 */

#include <gtest/gtest.h>

#include <vector>

#include "aifmlib/remote_list.hh"
#include "sim/rng.hh"
#include "tfm/tfm_runtime.hh"

namespace tfm
{
namespace
{

RuntimeConfig
listConfig(std::uint32_t object_size = 64, std::uint64_t local_kb = 64)
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 8 << 20;
    cfg.localMemBytes = local_kb << 10;
    cfg.objectSizeBytes = object_size;
    cfg.prefetchEnabled = false;
    return cfg;
}

TEST(RemoteList, PushPopFrontLifoOrder)
{
    AifmRuntime rt(listConfig(), CostParams{});
    RemoteList<std::int64_t> list(rt);
    DerefScope scope(rt);
    for (int i = 0; i < 100; i++)
        list.pushFront(scope, i);
    EXPECT_EQ(list.size(), 100u);
    EXPECT_EQ(list.front(scope), 99);
    for (int i = 99; i >= 0; i--)
        EXPECT_EQ(list.popFront(scope), i);
    EXPECT_TRUE(list.empty());
}

TEST(RemoteList, TraversalVisitsEveryNodeUnderPressure)
{
    // 4000 nodes x 16 B ~ 64 KB of nodes with only 16 KB local.
    AifmRuntime rt(listConfig(64, 16), CostParams{});
    RemoteList<std::int64_t> list(rt);
    for (int i = 0; i < 4000; i++)
        list.initPushFront(i);
    rt.runtime().evacuateAll();

    DerefScope scope(rt);
    std::int64_t sum = 0;
    std::uint64_t visited = 0;
    list.forEach(scope, [&](std::int64_t value) {
        sum += value;
        visited++;
    });
    EXPECT_EQ(visited, 4000u);
    EXPECT_EQ(sum, 4000ll * 3999 / 2);
    EXPECT_GT(rt.runtime().stats().evictions, 0u);
}

TEST(RemoteList, ContainsFindsAndRejects)
{
    AifmRuntime rt(listConfig(), CostParams{});
    RemoteList<std::uint32_t> list(rt);
    DerefScope scope(rt);
    for (std::uint32_t i = 0; i < 50; i++)
        list.pushFront(scope, i * 7);
    EXPECT_TRUE(list.contains(scope, 49u * 7));
    EXPECT_TRUE(list.contains(scope, 0u));
    EXPECT_FALSE(list.contains(scope, 5u));
}

TEST(RemoteList, PopOnEmptyDies)
{
    AifmRuntime rt(listConfig(), CostParams{});
    RemoteList<std::int64_t> list(rt);
    DerefScope scope(rt);
    EXPECT_DEATH(list.popFront(scope), "empty RemoteList");
}

TEST(RemoteList, SmallObjectsBeatPagesForPointerChase)
{
    // Section 2: a linked list wants node-sized (64 B) objects. A
    // traversal with 4 KB objects drags 4 KB per node fetched.
    // A fresh list allocates nodes contiguously, so big objects would
    // accidentally batch successors; real lists are scattered by
    // allocator churn. Model that: pre-allocate a padded node pool,
    // then link a random permutation of it.
    std::uint64_t small_cycles = 0, page_cycles = 0;
    for (const std::uint32_t objsize : {64u, 4096u}) {
        TfmRuntime rt(listConfig(objsize, 32), CostParams{});
        struct Node
        {
            std::uint64_t next;
            std::int64_t value;
        };
        const int n = 3000;
        std::vector<std::uint64_t> nodes;
        for (int i = 0; i < n; i++) {
            nodes.push_back(rt.tfmMalloc(sizeof(Node)));
            rt.tfmMalloc(48); // churn padding between nodes
        }
        Rng rng(3);
        for (int i = n - 1; i > 0; i--)
            std::swap(nodes[static_cast<std::size_t>(i)],
                      nodes[rng.below(static_cast<std::uint64_t>(i) + 1)]);
        for (int i = 0; i < n; i++) {
            const Node node{i + 1 < n ? nodes[static_cast<std::size_t>(
                                            i + 1)]
                                      : 0,
                            i};
            rt.rawWrite(nodes[static_cast<std::size_t>(i)], &node,
                        sizeof(node));
        }
        rt.runtime().evacuateAll();

        const std::uint64_t before = rt.clock().now();
        std::int64_t sum = 0;
        std::uint64_t cursor = nodes[0];
        while (cursor != 0) {
            const Node node = rt.load<Node>(cursor);
            sum += node.value;
            cursor = node.next;
        }
        EXPECT_EQ(sum, static_cast<std::int64_t>(n) * (n - 1) / 2);
        (objsize == 64 ? small_cycles : page_cycles) =
            rt.clock().now() - before;
    }
    EXPECT_LT(small_cycles, page_cycles);
}

TEST(RemoteList, TrackFmGuardedPointerChaseMatches)
{
    // The same pointer chase through TrackFM guards (the compiler's
    // view of a recursive structure): build the list with tagged
    // pointers and chase it with guarded loads.
    TfmRuntime rt(listConfig(64, 16), CostParams{});
    struct Node
    {
        std::uint64_t next;
        std::int64_t value;
    };
    std::uint64_t head = 0; // 0 = nil (offset 0 is never allocated-0?)
    // Build front-to-back with explicit nil = 0 sentinel: allocate a
    // dummy first so no real node sits at tagged offset 0.
    rt.tfmMalloc(sizeof(Node));
    for (int i = 0; i < 2000; i++) {
        const std::uint64_t node = rt.tfmMalloc(sizeof(Node));
        Node fresh{head, i};
        rt.rawWrite(node, &fresh, sizeof(fresh));
        head = node;
    }
    rt.runtime().evacuateAll();

    std::int64_t sum = 0;
    std::uint64_t cursor = head;
    std::uint64_t hops = 0;
    while (cursor != 0) {
        const Node node = rt.load<Node>(cursor);
        sum += node.value;
        cursor = node.next;
        hops++;
    }
    EXPECT_EQ(hops, 2000u);
    EXPECT_EQ(sum, 2000ll * 1999 / 2);
    // Every hop is a guard; under pressure many are slow-path.
    EXPECT_GE(rt.guardStats().guardTotal(), 2000u);
    EXPECT_GT(rt.guardStats().slowRemoteReads, 100u);
}

} // namespace
} // namespace tfm
