/**
 * @file
 * Tests for the paper's proposed extensions implemented here: the
 * object-size autotuner (section 3.2) and profile-guided allocation-
 * site pruning (section 5).
 */

#include <gtest/gtest.h>

#include "core/autotuner.hh"
#include "core/system.hh"
#include "interp/interpreter.hh"
#include "ir/parser.hh"
#include "passes/hot_alloc_pruning.hh"
#include "passes/trackfm_passes.hh"

namespace tfm
{
namespace
{

/**
 * A program with one hot small array (10k passes over 64 elements) and
 * one cold large array (touched once): the textbook pruning candidate.
 */
const char *const hotColdProgram = R"(
func @main() -> i64 {
entry:
  %hot = call ptr @malloc(512)
  %cold = call ptr @malloc(262144)
  br coldinit
coldinit:
  %i = phi i64 [ 0, entry ], [ %i2, coldinit ]
  %p = gep %cold, %i, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 32768
  condbr %c, coldinit, hotinit
hotinit:
  %h = phi i64 [ 0, coldinit ], [ %h2, hotinit ]
  %hp = gep %hot, %h, 8
  store %h, %hp
  %h2 = add %h, 1
  %hc = icmp.slt %h2, 64
  condbr %hc, hotinit, outer
outer:
  %r = phi i64 [ 0, hotinit ], [ %r2, inner.done ]
  %acc0 = phi i64 [ 0, hotinit ], [ %acc.out, inner.done ]
  br inner
inner:
  %j = phi i64 [ 0, outer ], [ %j2, inner ]
  %acc = phi i64 [ %acc0, outer ], [ %acc2, inner ]
  %q = gep %hot, %j, 8
  %v = load i64, %q
  %acc2 = add %acc, %v
  %j2 = add %j, 1
  %jc = icmp.slt %j2, 64
  condbr %jc, inner, inner.done
inner.done:
  %acc.out = phi i64 [ %acc2, inner ]
  %r2 = add %r, 1
  %rc = icmp.slt %r2, 1000
  condbr %rc, outer, exit
exit:
  ret %acc.out
}
)";

constexpr std::int64_t hotColdExpected = 64 * 63 / 2 * 1000; // sum accumulates over 1000 passes

SystemConfig
pressuredConfig()
{
    SystemConfig config;
    config.runtime.farHeapBytes = 4 << 20;
    config.runtime.localMemBytes = 64 << 10;
    config.runtime.objectSizeBytes = 4096;
    return config;
}

TEST(Autotuner, PicksSmallObjectsForRandomAccess)
{
    // Zipf-free stand-in: strided far-apart accesses are random at
    // object granularity, so small objects minimize I/O amplification.
    const char *program = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(1048576)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %idx = mul %i, 5003
  %wrapped = srem %idx, 131072
  %p = gep %a, %wrapped, 8
  store %i, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 3000
  condbr %c, loop, exit
exit:
  ret 0
}
)";
    AutotuneConfig config;
    config.system = pressuredConfig();
    const AutotuneResult result = autotuneObjectSize(program, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.trials.size(), 7u); // 64..4096
    // Latency dominates transfers at this sparsity, so the exact
    // winner varies among the small sizes; it must not be page-sized.
    EXPECT_LE(result.bestObjectSizeBytes, 1024u);
    // Trials are complete and all ran.
    for (const AutotuneTrial &trial : result.trials) {
        EXPECT_TRUE(trial.compiled);
        EXPECT_TRUE(trial.ran);
        EXPECT_GT(trial.cycles, 0u);
    }
}

TEST(Autotuner, PicksLargeObjectsForSequentialAccess)
{
    const char *program = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(1048576)
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %p = gep %a, %i, 4
  %i32 = trunc %i to i32
  store %i32, %p
  %i2 = add %i, 1
  %c = icmp.slt %i2, 262144
  condbr %c, loop, exit
exit:
  ret 0
}
)";
    AutotuneConfig config;
    config.system = pressuredConfig();
    const AutotuneResult result = autotuneObjectSize(program, config);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.bestObjectSizeBytes, 2048u);
}

TEST(Autotuner, RespectsExplicitCandidateList)
{
    AutotuneConfig config;
    config.system = pressuredConfig();
    config.candidates = {256, 4096};
    const AutotuneResult result =
        autotuneObjectSize(hotColdProgram, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.trials.size(), 2u);
    EXPECT_TRUE(result.bestObjectSizeBytes == 256 ||
                result.bestObjectSizeBytes == 4096);
}

TEST(Autotuner, ReportsCompileFailures)
{
    AutotuneConfig config;
    config.system = pressuredConfig();
    const AutotuneResult result =
        autotuneObjectSize("func @broken(", config);
    EXPECT_FALSE(result.ok());
    for (const AutotuneTrial &trial : result.trials)
        EXPECT_FALSE(trial.compiled);
}

AllocSiteProfile
profileHotCold(System &system, const CompiledProgram &program)
{
    Interpreter interp(program.ir(), system.runtime());
    interp.enableAllocationProfiling();
    const RunResult result = interp.run("main");
    EXPECT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, hotColdExpected);
    return interp.allocationProfile();
}

TEST(AllocProfiling, DistinguishesHotFromCold)
{
    System system(pressuredConfig());
    CompileResult compiled = system.compile(hotColdProgram);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const AllocSiteProfile profile =
        profileHotCold(system, *compiled.program);

    ASSERT_EQ(profile.sites.size(), 2u);
    const AllocSiteProfile::Site *hot = profile.findByOrdinal(0);
    const AllocSiteProfile::Site *cold = profile.findByOrdinal(1);
    ASSERT_NE(hot, nullptr);
    ASSERT_NE(cold, nullptr);
    EXPECT_EQ(hot->bytesAllocated, 512u);
    EXPECT_EQ(cold->bytesAllocated, 262144u);
    // The hot array sees ~64k accesses over 512 bytes; the cold one
    // sees one write per element.
    EXPECT_GT(hot->accessesPerByte(), 50.0);
    EXPECT_LT(cold->accessesPerByte(), 1.0);
}

TEST(HotAllocPruning, PrunesOnlyHotSitesAndPreservesSemantics)
{
    // 1. Profile the transformed program.
    System profiler(pressuredConfig());
    CompileResult first = profiler.compile(hotColdProgram);
    ASSERT_TRUE(first.ok());
    const AllocSiteProfile profile =
        profileHotCold(profiler, *first.program);

    // 2. Recompile with pruning: hot sites stay local.
    auto module = ir::parseModule(hotColdProgram).module;
    ASSERT_NE(module, nullptr);
    PassManager manager;
    manager.emplace<LibcTransformPass>();
    HotAllocPruningPass *prune_pass = nullptr;
    {
        auto pass =
            std::make_unique<HotAllocPruningPass>(profile, 10.0);
        prune_pass = pass.get();
        manager.add(std::move(pass));
    }
    manager.emplace<GuardPass>();
    ASSERT_TRUE(manager.run(*module).ok());
    EXPECT_EQ(prune_pass->sitesPruned(), 1u);

    // 3. The pruned program computes the same result with fewer
    //    far-memory guard events than the unpruned one.
    TfmRuntime pruned_rt(pressuredConfig().runtime, CostParams{});
    Interpreter pruned(*module, pruned_rt);
    const RunResult result = pruned.run("main");
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, hotColdExpected);

    // The hot array's ~64k accesses became custody rejections.
    EXPECT_GT(pruned_rt.guardStats().custodyRejects, 60000u);
    EXPECT_LT(pruned_rt.guardStats().fastTotal(), 40000u);

    // And the pruned run is faster than the unpruned run under the
    // same configuration.
    System unpruned(pressuredConfig());
    CompileResult reference = unpruned.compile(hotColdProgram);
    ASSERT_TRUE(reference.ok());
    const RunResult ref_run = unpruned.run(*reference.program);
    ASSERT_TRUE(ref_run.ok());
    EXPECT_EQ(ref_run.returnValue, hotColdExpected);
    EXPECT_LT(pruned_rt.clock().now(), unpruned.cycles());
}

TEST(HotAllocPruning, NoProfileMeansNoChanges)
{
    auto module = ir::parseModule(hotColdProgram).module;
    ASSERT_NE(module, nullptr);
    const AllocSiteProfile empty;
    HotAllocPruningPass pass(empty, 1.0);
    EXPECT_FALSE(pass.run(*module));
    EXPECT_EQ(pass.sitesPruned(), 0u);
}

TEST(HotAllocPruning, ThresholdControlsAggressiveness)
{
    System profiler(pressuredConfig());
    CompileResult compiled = profiler.compile(hotColdProgram);
    ASSERT_TRUE(compiled.ok());
    const AllocSiteProfile profile =
        profileHotCold(profiler, *compiled.program);

    // Threshold 0: everything is "hot" -> both sites pruned.
    auto module = ir::parseModule(hotColdProgram).module;
    HotAllocPruningPass prune_all(profile, 0.0);
    prune_all.run(*module);
    EXPECT_EQ(prune_all.sitesPruned(), 2u);

    // Absurd threshold: nothing pruned.
    auto module2 = ir::parseModule(hotColdProgram).module;
    HotAllocPruningPass prune_none(profile, 1e12);
    EXPECT_FALSE(prune_none.run(*module2));
}

} // namespace
} // namespace tfm
