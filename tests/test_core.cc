/**
 * @file
 * Tests for the top-level System facade: compile, run, error handling,
 * configuration plumbing, statistics.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "ir_test_programs.hh"

namespace tfm
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.runtime.farHeapBytes = 4 << 20;
    config.runtime.localMemBytes = 256 << 10;
    config.runtime.objectSizeBytes = 4096;
    return config;
}

TEST(System, CompileAndRunQuickstart)
{
    System system(smallConfig());
    CompileResult compiled = system.compile(testprogs::sumProgram);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const RunResult result = system.run(*compiled.program);
    ASSERT_TRUE(result.ok()) << result.trapMessage;
    EXPECT_EQ(result.returnValue, 499500);
}

TEST(System, CompileReportsPipelineStages)
{
    System system(smallConfig());
    CompileResult compiled = system.compile(testprogs::sumProgram);
    ASSERT_TRUE(compiled.ok());
    const PipelineReport &report = compiled.program->pipelineReport();
    // O1 (4 passes) + TrackFM (5 base passes + 4 guard-opt stages).
    EXPECT_EQ(report.entries.size(), 13u);
    EXPECT_TRUE(report.ok());
}

TEST(System, PreOptimizeCanBeDisabled)
{
    SystemConfig config = smallConfig();
    config.preOptimize = false;
    System system(config);
    CompileResult compiled = system.compile(testprogs::sumProgram);
    ASSERT_TRUE(compiled.ok());
    EXPECT_EQ(compiled.program->pipelineReport().entries.size(), 9u);
    const RunResult result = system.run(*compiled.program);
    EXPECT_EQ(result.returnValue, 499500);
}

TEST(System, ParseOnlyRunsUntransformed)
{
    System system(smallConfig());
    CompileResult parsed = system.parseOnly(testprogs::sumProgram);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const RunResult result = system.run(*parsed.program);
    EXPECT_EQ(result.returnValue, 499500);
    // Untransformed: nothing was guarded.
    EXPECT_EQ(system.runtime().guardStats().guardTotal(), 0u);
}

TEST(System, CompileErrorsAreReported)
{
    System system(smallConfig());
    const CompileResult bad = system.compile("func @f( garbage");
    EXPECT_FALSE(bad.ok());
    EXPECT_NE(bad.error.find("parse error"), std::string::npos);
}

TEST(System, InvalidModuleIsRejected)
{
    System system(smallConfig());
    // Block without terminator.
    const CompileResult bad =
        system.compile("func @f() -> i64 {\nentry:\n  %x = add 1, 2\n}\n");
    EXPECT_FALSE(bad.ok());
    EXPECT_NE(bad.error.find("invalid module"), std::string::npos);
}

TEST(System, DisassembleShowsTransformedIr)
{
    System system(smallConfig());
    CompileResult compiled = system.compile(testprogs::sumProgram);
    ASSERT_TRUE(compiled.ok());
    const std::string text = compiled.program->disassemble();
    EXPECT_NE(text.find("guard"), std::string::npos);
    EXPECT_NE(text.find("tfm_malloc"), std::string::npos);
    EXPECT_NE(text.find("tfm_runtime_init"), std::string::npos);
}

TEST(System, StatsAggregateGuardAndRuntimeCounters)
{
    System system(smallConfig());
    CompileResult compiled = system.compile(testprogs::sumProgram);
    ASSERT_TRUE(compiled.ok());
    system.run(*compiled.program);
    const StatSet stats = system.stats();
    EXPECT_GT(stats.get("guard.fast_reads") +
                  stats.get("guard.boundary_checks"),
              0u);
    EXPECT_GT(stats.get("net.bytes_fetched"), 0u);
    EXPECT_GT(system.cycles(), 0u);
    EXPECT_GT(system.seconds(), 0.0);
}

TEST(System, ObjectSizeFlowsFromRuntimeToPasses)
{
    SystemConfig config = smallConfig();
    config.runtime.objectSizeBytes = 256;
    System system(config);
    EXPECT_EQ(system.config().passes.objectSizeBytes, 256u);
}

TEST(System, MemoryPressureDoesNotChangeAnswers)
{
    // Property: for any local-memory budget, the transformed program
    // computes the same result; only the cycle count changes.
    std::int64_t reference = 0;
    std::uint64_t previous_cycles = 0;
    for (const std::uint64_t frames : {2ull, 4ull, 16ull, 64ull}) {
        SystemConfig config = smallConfig();
        config.runtime.localMemBytes = frames * 4096;
        System system(config);
        CompileResult compiled = system.compile(testprogs::sumProgram);
        ASSERT_TRUE(compiled.ok());
        const RunResult result = system.run(*compiled.program);
        ASSERT_TRUE(result.ok()) << result.trapMessage;
        if (reference == 0)
            reference = result.returnValue;
        EXPECT_EQ(result.returnValue, reference);
        // More memory never hurts in this monotone workload.
        if (previous_cycles > 0) {
            EXPECT_LE(system.cycles(), previous_cycles);
        }
        previous_cycles = system.cycles();
    }
}

TEST(System, RunMissingFunctionTraps)
{
    System system(smallConfig());
    CompileResult compiled = system.compile(testprogs::stackProgram);
    ASSERT_TRUE(compiled.ok());
    const RunResult result = system.run(*compiled.program, "nope");
    EXPECT_TRUE(result.trapped);
}

} // namespace
} // namespace tfm
