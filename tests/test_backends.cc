/**
 * @file
 * Integration tests for the MemBackend layer across all four systems,
 * plus the STREAM workload's correctness on each.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/rng.hh"
#include "workloads/backend_config.hh"
#include "workloads/stream.hh"

namespace tfm
{
namespace
{

BackendConfig
smallConfig(SystemKind kind)
{
    BackendConfig cfg;
    cfg.kind = kind;
    cfg.farHeapBytes = 8 << 20;
    cfg.localMemBytes = 1 << 20;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = true;
    return cfg;
}

class AllBackends : public ::testing::TestWithParam<SystemKind>
{
};

INSTANTIATE_TEST_SUITE_P(
    Systems, AllBackends,
    ::testing::Values(SystemKind::Local, SystemKind::TrackFm,
                      SystemKind::Fastswap, SystemKind::Aifm),
    [](const ::testing::TestParamInfo<SystemKind> &info) {
        return systemName(info.param);
    });

TEST_P(AllBackends, ReadWriteRoundTrip)
{
    auto backend = makeBackend(smallConfig(GetParam()), CostParams{});
    const std::uint64_t addr = backend->alloc(64 * 1024);
    backend->writeT<std::uint64_t>(addr + 128, 0xabcdefull,
                                   AccessHint::Random);
    EXPECT_EQ(backend->readT<std::uint64_t>(addr + 128, AccessHint::Random),
              0xabcdefull);
}

TEST_P(AllBackends, InitIsUnmetered)
{
    auto backend = makeBackend(smallConfig(GetParam()), CostParams{});
    const std::uint64_t addr = backend->alloc(4096);
    const std::uint64_t before = backend->cycles();
    backend->initT<std::uint64_t>(addr, 42);
    EXPECT_EQ(backend->cycles(), before);
    EXPECT_EQ(backend->peekT<std::uint64_t>(addr), 42u);
}

TEST_P(AllBackends, StreamWritesThenReads)
{
    auto backend = makeBackend(smallConfig(GetParam()), CostParams{});
    const std::uint64_t n = 10000;
    const std::uint64_t addr = backend->alloc(n * 8);
    {
        auto out = backend->stream(addr, 8, n, StreamMode::Write);
        for (std::uint64_t i = 0; i < n; i++) {
            const std::int64_t v = static_cast<std::int64_t>(i) * 3;
            out->write(&v);
        }
    }
    backend->dropCaches();
    {
        auto in = backend->stream(addr, 8, n, StreamMode::Read);
        for (std::uint64_t i = 0; i < n; i++) {
            std::int64_t v;
            in->read(&v);
            ASSERT_EQ(v, static_cast<std::int64_t>(i) * 3);
        }
    }
}

TEST_P(AllBackends, CyclesAdvanceWithWork)
{
    auto backend = makeBackend(smallConfig(GetParam()), CostParams{});
    const std::uint64_t addr = backend->alloc(4096);
    const std::uint64_t before = backend->cycles();
    backend->readT<std::uint64_t>(addr, AccessHint::Random);
    EXPECT_GT(backend->cycles(), before);
}

TEST_P(AllBackends, ComputeChargesExactly)
{
    auto backend = makeBackend(smallConfig(GetParam()), CostParams{});
    const std::uint64_t before = backend->cycles();
    backend->compute(12345);
    EXPECT_EQ(backend->cycles() - before, 12345u);
}

TEST_P(AllBackends, SnapshotDeltasAreWindowed)
{
    auto backend = makeBackend(smallConfig(GetParam()), CostParams{});
    const std::uint64_t addr = backend->alloc(4096);
    backend->readT<std::uint64_t>(addr, AccessHint::Random);
    const BackendSnapshot a = snapshot(*backend);
    backend->readT<std::uint64_t>(addr, AccessHint::Random);
    const BackendSnapshot b = snapshot(*backend);
    const BackendSnapshot d = deltaSince(a, b);
    EXPECT_GT(d.cycles, 0u);
    EXPECT_LE(d.cycles, b.cycles);
}

TEST(BackendCosts, FarBackendsChargeMoreThanLocal)
{
    const std::uint64_t n = 20000;
    std::uint64_t local_cycles = 0;
    for (const SystemKind kind :
         {SystemKind::Local, SystemKind::TrackFm, SystemKind::Fastswap,
          SystemKind::Aifm}) {
        auto cfg = smallConfig(kind);
        cfg.localMemBytes = 256 << 10; // pressure: 1/8 of heap... approx
        auto backend = makeBackend(cfg, CostParams{});
        StreamWorkload stream(*backend, n);
        const StreamResult r = stream.runSum();
        EXPECT_EQ(r.checksum, stream.expectedSum())
            << systemName(kind) << " computed a wrong sum";
        if (kind == SystemKind::Local)
            local_cycles = r.delta.cycles;
        else
            EXPECT_GT(r.delta.cycles, local_cycles) << systemName(kind);
    }
    EXPECT_GT(local_cycles, 0u);
}

TEST(BackendCosts, TrackFmTransfersLessThanFastswapOnSmallObjects)
{
    // Random 8-byte reads over a heap: Fastswap moves 4 KB per miss,
    // TrackFM with 256 B objects moves 16x less (Fig. 13's mechanism).
    const std::uint64_t heap = 4 << 20;
    auto tfm_cfg = smallConfig(SystemKind::TrackFm);
    tfm_cfg.objectSizeBytes = 256;
    tfm_cfg.localMemBytes = 256 << 10;
    tfm_cfg.prefetchEnabled = false;
    auto fsw_cfg = smallConfig(SystemKind::Fastswap);
    fsw_cfg.localMemBytes = 256 << 10;
    fsw_cfg.prefetchEnabled = false;

    auto run = [&](MemBackend &backend) {
        const std::uint64_t addr = backend.alloc(heap / 2);
        Rng rng(5);
        for (int i = 0; i < 20000; i++) {
            const std::uint64_t at = (rng.below(heap / 2 / 8)) * 8;
            backend.readT<std::uint64_t>(addr + at, AccessHint::Random);
        }
        return backend.bytesFetched();
    };

    auto tfm_backend = makeBackend(tfm_cfg, CostParams{});
    auto fsw_backend = makeBackend(fsw_cfg, CostParams{});
    const std::uint64_t tfm_bytes = run(*tfm_backend);
    const std::uint64_t fsw_bytes = run(*fsw_backend);
    EXPECT_LT(tfm_bytes * 4, fsw_bytes);
}

TEST(StreamWorkload, CopyVerifiesOnAllBackends)
{
    for (const SystemKind kind :
         {SystemKind::Local, SystemKind::TrackFm, SystemKind::Fastswap,
          SystemKind::Aifm}) {
        auto backend = makeBackend(smallConfig(kind), CostParams{});
        StreamWorkload stream(*backend, 50000);
        stream.runCopy();
        EXPECT_TRUE(stream.verifyCopy()) << systemName(kind);
    }
}

TEST(StreamWorkload, TriadRuns)
{
    auto backend = makeBackend(smallConfig(SystemKind::TrackFm),
                               CostParams{});
    StreamWorkload stream(*backend, 20000, 3);
    const StreamResult r = stream.runTriad();
    EXPECT_GT(r.delta.cycles, 0u);
    EXPECT_GT(r.bytesTouched, 0u);
}

TEST(StreamWorkload, ChunkingReducesGuardsOnTrackFm)
{
    auto naive_cfg = smallConfig(SystemKind::TrackFm);
    naive_cfg.chunkPolicy = ChunkPolicy::None;
    auto chunk_cfg = smallConfig(SystemKind::TrackFm);
    chunk_cfg.chunkPolicy = ChunkPolicy::All;

    const std::uint64_t n = 100000;
    auto naive_backend = makeBackend(naive_cfg, CostParams{});
    auto chunk_backend = makeBackend(chunk_cfg, CostParams{});
    StreamWorkload naive(*naive_backend, n);
    StreamWorkload chunked(*chunk_backend, n);

    const StreamResult rn = naive.runSum();
    const StreamResult rc = chunked.runSum();
    EXPECT_EQ(rn.checksum, rc.checksum);
    // Naive: one guard per element. Chunked: none (boundary checks and
    // locality guards instead).
    EXPECT_GE(rn.delta.guardEvents, n);
    EXPECT_LT(rc.delta.guardEvents, n / 100);
    // And chunking is faster at this density (1024 > break-even 730).
    EXPECT_LT(rc.delta.cycles, rn.delta.cycles);
}

TEST(StreamWorkload, PrefetchSpeedsUpColdSweep)
{
    auto on_cfg = smallConfig(SystemKind::TrackFm);
    on_cfg.localMemBytes = 512 << 10; // heavy pressure: 1/3 of data
    auto off_cfg = on_cfg;
    off_cfg.prefetchEnabled = false;

    const std::uint64_t n = 100000; // 800 KB per array
    auto on_backend = makeBackend(on_cfg, CostParams{});
    auto off_backend = makeBackend(off_cfg, CostParams{});
    StreamWorkload with_prefetch(*on_backend, n);
    StreamWorkload without_prefetch(*off_backend, n);

    const StreamResult r_on = with_prefetch.runSum();
    const StreamResult r_off = without_prefetch.runSum();
    EXPECT_EQ(r_on.checksum, r_off.checksum);
    EXPECT_LT(r_on.delta.cycles, r_off.delta.cycles);
}

TEST(BackendFactory, NamesAreStable)
{
    EXPECT_STREQ(systemName(SystemKind::Local), "Local");
    EXPECT_STREQ(systemName(SystemKind::TrackFm), "TrackFM");
    EXPECT_STREQ(systemName(SystemKind::Fastswap), "Fastswap");
    EXPECT_STREQ(systemName(SystemKind::Aifm), "AIFM");
    for (const SystemKind kind :
         {SystemKind::Local, SystemKind::TrackFm, SystemKind::Fastswap,
          SystemKind::Aifm}) {
        auto backend = makeBackend(smallConfig(kind), CostParams{});
        EXPECT_EQ(backend->name(), systemName(kind));
    }
}

} // namespace
} // namespace tfm
