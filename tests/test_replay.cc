/**
 * @file
 * Flight-recorder tests: binary log round-trips (empty logs, ring
 * wraparound, truncation, schema and checksum validation), record →
 * replay bit-exactness over the differential corpus under both
 * interpreter engines, divergence pinpointing (stream + seq of the
 * first mismatch), replay of a cluster run with an injected shard
 * failure, and the Histogram/StatSet merge primitives that tfm-stat
 * uses to aggregate per-stream spans.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/system.hh"
#include "interp/interpreter.hh"
#include "ir_test_programs.hh"
#include "obs/flight_recorder.hh"
#include "obs/histogram.hh"
#include "runtime/far_mem_runtime.hh"
#include "sim/stats.hh"

namespace tfm
{
namespace
{

/** A per-test temp path, cleaned up on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_((std::filesystem::temp_directory_path() /
                 ("tfm_replay_test_" + name))
                    .string())
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kEventBytes = 48;

// ---------------------------------------------------------------------
// Binary log round-trips and validation.
// ---------------------------------------------------------------------

TEST(FrLog, EmptyLogRoundTrip)
{
    TempFile file("empty.tfr");
    FrLog log;
    log.version = frSchemaVersion;
    log.wallTime = 12345;
    std::string error;
    ASSERT_TRUE(saveFrLog(file.path(), log, error)) << error;

    FrLog loaded;
    ASSERT_TRUE(loadFrLog(file.path(), loaded, error)) << error;
    EXPECT_EQ(loaded.version, frSchemaVersion);
    EXPECT_EQ(loaded.flags, 0u);
    EXPECT_EQ(loaded.wallTime, 12345u);
    EXPECT_TRUE(loaded.events.empty());
}

TEST(FrLog, EventRoundTripPreservesEverything)
{
    TempFile file("roundtrip.tfr");
    FlightRecorder rec;
    const std::uint16_t inst = rec.registerInstance();
    for (std::uint64_t i = 0; i < 5; i++)
        rec.note(inst, FrCat::Evac, FrKind::EvacVictim, 100 + i, i,
                 i * 2, i % 2, 7);
    std::string error;
    ASSERT_TRUE(rec.save(file.path(), error)) << error;

    FrLog loaded;
    ASSERT_TRUE(loadFrLog(file.path(), loaded, error)) << error;
    ASSERT_EQ(loaded.events.size(), 5u);
    for (std::uint64_t i = 0; i < 5; i++) {
        const FrEvent &e = loaded.events[i];
        EXPECT_EQ(e.seq, i);
        EXPECT_EQ(e.cycle, 100 + i);
        EXPECT_EQ(e.arg[0], i);
        EXPECT_EQ(e.arg[1], i * 2);
        EXPECT_EQ(e.arg[2], i % 2);
        EXPECT_EQ(e.arg[3], 7u);
    }
}

TEST(FrLog, RingWrapsAtExactlyCapacity)
{
    constexpr std::size_t kCap = 4;
    FlightRecorder rec(kCap);
    EXPECT_TRUE(rec.ring());
    const std::uint16_t inst = rec.registerInstance();
    // Record capacity + 3 events: the oldest 3 must fall out.
    for (std::uint64_t i = 0; i < kCap + 3; i++)
        rec.note(inst, FrCat::Evac, FrKind::EvacVictim, i, i);
    EXPECT_EQ(rec.size(), kCap);
    EXPECT_EQ(rec.ringDropped(), 3u);
    const std::vector<FrEvent> kept = rec.snapshot();
    ASSERT_EQ(kept.size(), kCap);
    // The survivors are the *last* kCap events, seq numbers intact.
    for (std::size_t i = 0; i < kCap; i++) {
        EXPECT_EQ(kept[i].seq, 3 + i);
        EXPECT_EQ(kept[i].arg[0], 3 + i);
    }

    // A ring dump declares itself on disk and is rejected for replay
    // (its head is gone, so sequence-exact re-injection is impossible).
    TempFile file("ring.tfr");
    std::string error;
    ASSERT_TRUE(rec.save(file.path(), error)) << error;
    FrLog loaded;
    ASSERT_TRUE(loadFrLog(file.path(), loaded, error)) << error;
    EXPECT_EQ(loaded.flags & 1u, 1u);
    EXPECT_EQ(loaded.ringCapacity, kCap);
    auto replay = FlightRecorder::loadForReplay(file.path(), error);
    EXPECT_EQ(replay, nullptr);
    EXPECT_NE(error.find("ring"), std::string::npos) << error;
}

TEST(FrLog, ExactlyCapacityEventsDropsNothing)
{
    constexpr std::size_t kCap = 4;
    FlightRecorder rec(kCap);
    const std::uint16_t inst = rec.registerInstance();
    for (std::uint64_t i = 0; i < kCap; i++)
        rec.note(inst, FrCat::Evac, FrKind::EvacVictim, i, i);
    EXPECT_EQ(rec.size(), kCap);
    EXPECT_EQ(rec.ringDropped(), 0u);
}

TEST(FrLog, TruncatedFileNamesLastValidEvent)
{
    TempFile file("trunc.tfr");
    FlightRecorder rec;
    const std::uint16_t inst = rec.registerInstance();
    for (std::uint64_t i = 0; i < 3; i++)
        rec.note(inst, FrCat::Evac, FrKind::EvacVictim, i, i);
    std::string error;
    ASSERT_TRUE(rec.save(file.path(), error)) << error;

    // Cut the file mid third event: events 0 and 1 survive intact.
    std::vector<char> bytes = readAll(file.path());
    bytes.resize(kHeaderBytes + 2 * kEventBytes + kEventBytes / 2);
    writeAll(file.path(), bytes);

    FrLog loaded;
    EXPECT_FALSE(loadFrLog(file.path(), loaded, error));
    const std::uint16_t evacStream = static_cast<std::uint16_t>(
        inst * frCatSlots + static_cast<std::uint16_t>(FrCat::Evac));
    EXPECT_NE(error.find("seq 1"), std::string::npos) << error;
    EXPECT_NE(error.find(frStreamName(evacStream)), std::string::npos)
        << error;
}

TEST(FrLog, SchemaVersionMismatchRejected)
{
    TempFile file("schema.tfr");
    FlightRecorder rec;
    const std::uint16_t inst = rec.registerInstance();
    rec.note(inst, FrCat::Evac, FrKind::EvacVictim, 1, 1);
    std::string error;
    ASSERT_TRUE(rec.save(file.path(), error)) << error;

    // The u32 version lives at offset 8; the checksum covers only the
    // event bytes, so this is a pure schema mismatch.
    std::vector<char> bytes = readAll(file.path());
    bytes[8] = static_cast<char>(frSchemaVersion + 1);
    writeAll(file.path(), bytes);

    FrLog loaded;
    EXPECT_FALSE(loadFrLog(file.path(), loaded, error));
    EXPECT_NE(error.find("schema version"), std::string::npos) << error;
}

TEST(FrLog, ChecksumCatchesFlippedEventByte)
{
    TempFile file("cksum.tfr");
    FlightRecorder rec;
    const std::uint16_t inst = rec.registerInstance();
    rec.note(inst, FrCat::Evac, FrKind::EvacVictim, 1, 1);
    std::string error;
    ASSERT_TRUE(rec.save(file.path(), error)) << error;

    // Flip one bit in the event's first argument without re-patching
    // the FNV trailer.
    std::vector<char> bytes = readAll(file.path());
    bytes[kHeaderBytes + 16] ^= 0x40;
    writeAll(file.path(), bytes);

    FrLog loaded;
    EXPECT_FALSE(loadFrLog(file.path(), loaded, error));
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// Record → replay bit-exactness over the corpus.
// ---------------------------------------------------------------------

/** FNV-1a over the whole far heap (same constants as the runtime's). */
std::uint64_t
frHeapChecksum(FarMemRuntime &rt)
{
    return rt.heapChecksum();
}

/** Everything observable from one interpreter run. */
struct ReplayRecord
{
    RunResult result;
    std::uint64_t cycles = 0;
    std::uint64_t heap = 0;
    GuardStats guards;
};

ReplayRecord
runWithRecorder(const CompiledProgram &program,
                const SystemConfig &config, InterpEngine engine,
                FlightRecorder &rec)
{
    RuntimeConfig rcfg = config.runtime;
    rcfg.recorder = &rec;
    TfmRuntime rt(rcfg, config.costs);
    Interpreter interp(program.ir(), rt);
    interp.engine = engine;
    ReplayRecord record;
    record.result = interp.run("main");
    record.cycles = rt.clock().now();
    record.heap = frHeapChecksum(rt.runtime());
    record.guards = rt.guardStats();
    return record;
}

void
expectBitExact(const ReplayRecord &rec, const ReplayRecord &rep,
               const std::string &label)
{
    EXPECT_EQ(rec.result.trapped, rep.result.trapped) << label;
    EXPECT_EQ(rec.result.trapMessage, rep.result.trapMessage) << label;
    EXPECT_EQ(rec.result.returnValue, rep.result.returnValue) << label;
    EXPECT_EQ(rec.result.output, rep.result.output) << label;
    EXPECT_EQ(rec.cycles, rep.cycles) << label;
    EXPECT_EQ(rec.heap, rep.heap) << label;
    EXPECT_EQ(rec.guards.fastReads, rep.guards.fastReads) << label;
    EXPECT_EQ(rec.guards.slowRemoteReads, rep.guards.slowRemoteReads)
        << label;
    EXPECT_EQ(rec.guards.slowRemoteWrites, rep.guards.slowRemoteWrites)
        << label;
    EXPECT_EQ(rec.guards.revalidations, rep.guards.revalidations)
        << label;
    EXPECT_EQ(rec.guards.revalidationMisses,
              rep.guards.revalidationMisses)
        << label;
    EXPECT_EQ(rec.guards.prefetchCalls, rep.guards.prefetchCalls)
        << label;
}

SystemConfig
replayConfig()
{
    SystemConfig config;
    // Small tiers so the corpus actually evicts and fetches: replay
    // must reproduce remote traffic and evacuations, not just the
    // resident fast path.
    config.runtime.farHeapBytes = 4 << 20;
    config.runtime.localMemBytes = 256 << 10;
    return config;
}

TEST(RecordReplay, CorpusBitExactUnderBothEngines)
{
    for (const testprogs::CorpusProgram &entry : testprogs::kCorpus) {
        TempFile file(std::string("corpus_") + entry.name + ".tfr");
        SystemConfig config = replayConfig();
        System system(config);
        CompileResult compiled = system.compile(entry.source);
        ASSERT_TRUE(compiled.ok()) << entry.name << ": "
                                   << compiled.error;

        FlightRecorder recorder;
        const ReplayRecord recorded =
            runWithRecorder(*compiled.program, config,
                            InterpEngine::Bytecode, recorder);
        if (!recorded.result.trapped) {
            EXPECT_EQ(recorded.result.returnValue, entry.expected)
                << entry.name;
        }
        std::string error;
        ASSERT_TRUE(recorder.save(file.path(), error)) << error;

        // The log records runtime nondeterminism, not engine
        // internals: either engine must replay it bit-exactly.
        for (const InterpEngine engine :
             {InterpEngine::Bytecode, InterpEngine::Reference}) {
            auto replayer =
                FlightRecorder::loadForReplay(file.path(), error);
            ASSERT_NE(replayer, nullptr) << error;
            const ReplayRecord replayed = runWithRecorder(
                *compiled.program, config, engine, *replayer);
            expectBitExact(recorded, replayed, entry.name);
            // finishReplay validates every consumed stream drained;
            // context streams (net, cluster) are never consumed.
            EXPECT_NO_THROW(replayer->finishReplay()) << entry.name;
        }
    }
}

TEST(RecordReplay, TrapTextReplaysBitExact)
{
    // Far-memory traffic (forced evacuations) followed by a trap: the
    // replay must reproduce both the recorded events and the exact
    // trap text.
    const char *const source = R"(
func @main() -> i64 {
entry:
  %a = call ptr @malloc(8)
  store 0, %a
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %i2, loop ]
  %v = load i64, %a
  %v2 = add %v, %i
  store %v2, %a
  call void @tfm_evacuate_all()
  %i2 = add %i, 1
  %c = icmp.slt %i2, 10
  condbr %c, loop, exit
exit:
  %z = load i64, %a
  %zero = icmp.slt %z, 0
  %r = sdiv %z, %zero
  ret %r
}
)";
    TempFile file("trap.tfr");
    SystemConfig config = replayConfig();
    System system(config);
    CompileResult compiled = system.compile(source);
    ASSERT_TRUE(compiled.ok()) << compiled.error;

    FlightRecorder recorder;
    const ReplayRecord recorded = runWithRecorder(
        *compiled.program, config, InterpEngine::Bytecode, recorder);
    ASSERT_TRUE(recorded.result.trapped);
    EXPECT_EQ(recorded.result.trapMessage, "division by zero");
    std::string error;
    ASSERT_TRUE(recorder.save(file.path(), error)) << error;

    for (const InterpEngine engine :
         {InterpEngine::Bytecode, InterpEngine::Reference}) {
        auto replayer =
            FlightRecorder::loadForReplay(file.path(), error);
        ASSERT_NE(replayer, nullptr) << error;
        const ReplayRecord replayed = runWithRecorder(
            *compiled.program, config, engine, *replayer);
        expectBitExact(recorded, replayed, "trap");
        EXPECT_NO_THROW(replayer->finishReplay());
    }
}

TEST(RecordReplay, TamperedArgDivergesAtStreamAndSeq)
{
    TempFile file("tamper.tfr");
    SystemConfig config = replayConfig();
    System system(config);
    CompileResult compiled =
        system.compile(testprogs::kCorpus[0].source);
    ASSERT_TRUE(compiled.ok()) << compiled.error;

    FlightRecorder recorder;
    runWithRecorder(*compiled.program, config, InterpEngine::Bytecode,
                    recorder);
    std::string error;
    ASSERT_TRUE(recorder.save(file.path(), error)) << error;

    // Corrupt the second backend-stream event's offset argument (a
    // checked input), re-saving so the trailer stays valid.
    FrLog log;
    ASSERT_TRUE(loadFrLog(file.path(), log, error)) << error;
    const std::uint16_t backendStream = static_cast<std::uint16_t>(
        0 * frCatSlots + static_cast<std::uint16_t>(FrCat::Backend));
    std::size_t hits = 0;
    std::uint32_t tamperedSeq = 0;
    for (FrEvent &e : log.events) {
        if (e.stream != backendStream)
            continue;
        if (++hits == 2) {
            e.arg[0] ^= 0x1000;
            tamperedSeq = e.seq;
            break;
        }
    }
    ASSERT_EQ(hits, 2u) << "corpus run produced <2 backend events";
    ASSERT_TRUE(saveFrLog(file.path(), log, error)) << error;

    auto replayer = FlightRecorder::loadForReplay(file.path(), error);
    ASSERT_NE(replayer, nullptr) << error;
    try {
        runWithRecorder(*compiled.program, config,
                        InterpEngine::Bytecode, *replayer);
        FAIL() << "tampered log replayed without divergence";
    } catch (const ReplayDivergence &d) {
        EXPECT_EQ(d.stream, backendStream);
        EXPECT_EQ(d.seq, tamperedSeq);
        EXPECT_NE(std::string(d.what()).find("first mismatch"),
                  std::string::npos)
            << d.what();
    }
}

TEST(RecordReplay, FinishReplayThrowsOnUnconsumedEvents)
{
    TempFile file("unconsumed.tfr");
    FlightRecorder rec;
    const std::uint16_t inst = rec.registerInstance();
    rec.note(inst, FrCat::Evac, FrKind::EvacVictim, 5, 1, 2, 0, 0);
    std::string error;
    ASSERT_TRUE(rec.save(file.path(), error)) << error;

    auto replayer = FlightRecorder::loadForReplay(file.path(), error);
    ASSERT_NE(replayer, nullptr) << error;
    EXPECT_THROW(replayer->finishReplay(), ReplayDivergence);
}

// ---------------------------------------------------------------------
// Cluster runs: shard failure captured and replayed.
// ---------------------------------------------------------------------

/** A small RMW scan over a sharded backend with a mid-run shard kill. */
std::pair<std::uint64_t, std::uint64_t>
clusterScan(FlightRecorder *rec)
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 4ull << 20;
    cfg.localMemBytes = 256 << 10;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = true;
    cfg.cluster.shardCount = 4;
    cfg.cluster.replicationFactor = 2;
    cfg.cluster.failures.killShard(1, 200000);
    cfg.recorder = rec;

    const CostParams costs;
    FarMemRuntime rt(cfg, costs);
    constexpr std::uint64_t kObjects = 256;
    const std::uint64_t base = rt.allocate(kObjects * 4096);
    for (std::uint64_t i = 0; i < kObjects; i++)
        rt.rawWrite(base + i * 4096, &i, sizeof(i));
    std::uint64_t sum = 0;
    for (std::uint64_t pass = 0; pass < 2; pass++) {
        for (std::uint64_t i = 0; i < kObjects; i++) {
            auto *p = rt.localize(base + i * 4096, true);
            std::uint64_t v = 0;
            std::memcpy(&v, p, sizeof(v));
            sum += v;
            v++;
            std::memcpy(p, &v, sizeof(v));
        }
    }
    rt.flushWritebacks();
    // Exercise the interface stats so the replay path re-injects them.
    const ClusterStats cstats = rt.backend().clusterStats();
    return {sum + cstats.shardFailures * 1000003ull,
            rt.clock().now() ^ rt.heapChecksum()};
}

TEST(RecordReplay, ClusterShardFailureReplaysBitExact)
{
    TempFile file("cluster.tfr");
    FlightRecorder recorder;
    const auto recorded = clusterScan(&recorder);
    EXPECT_GT(recorder.categoryCount(FrCat::Cluster), 0u)
        << "shard kill did not reach the cluster stream";
    std::string error;
    ASSERT_TRUE(recorder.save(file.path(), error)) << error;

    auto replayer = FlightRecorder::loadForReplay(file.path(), error);
    ASSERT_NE(replayer, nullptr) << error;
    const auto replayed = clusterScan(replayer.get());
    EXPECT_EQ(recorded.first, replayed.first);
    EXPECT_EQ(recorded.second, replayed.second);
    EXPECT_NO_THROW(replayer->finishReplay());
}

// ---------------------------------------------------------------------
// tfm-stat aggregation primitives.
// ---------------------------------------------------------------------

TEST(HistogramMerge, MergedPercentilesMatchSingleHistogram)
{
    Histogram all, a, b;
    for (std::uint64_t v = 1; v <= 1000; v++) {
        all.record(v);
        (v % 3 == 0 ? a : b).record(v);
    }
    Histogram merged;
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_EQ(merged.sum(), all.sum());
    EXPECT_EQ(merged.min(), all.min());
    EXPECT_EQ(merged.max(), all.max());
    for (const double p : {50.0, 90.0, 99.0})
        EXPECT_EQ(merged.percentile(p), all.percentile(p)) << p;
}

TEST(HistogramMerge, MergeIntoEmptyAndWithEmpty)
{
    Histogram a, empty;
    a.record(7);
    a.record(11);
    Histogram dst;
    dst.merge(a);
    dst.merge(empty); // must not disturb min/max
    EXPECT_EQ(dst.count(), 2u);
    EXPECT_EQ(dst.min(), 7u);
    EXPECT_EQ(dst.max(), 11u);
}

TEST(StatSetMerge, SumsByNameAndAppendsUnknown)
{
    StatSet a, b;
    a.add("fetches", 10);
    a.add("evictions", 3);
    b.add("fetches", 5);
    b.add("writebacks", 2);
    a.merge(b);
    EXPECT_EQ(a.get("fetches"), 15u);
    EXPECT_EQ(a.get("evictions"), 3u);
    EXPECT_EQ(a.get("writebacks"), 2u);
    // Appended in other's order, after a's originals.
    ASSERT_EQ(a.all().size(), 3u);
    EXPECT_EQ(a.all()[2].first, "writebacks");
}

} // anonymous namespace
} // namespace tfm
