/**
 * @file
 * Tests for the concurrent runtime (DESIGN.md §4k): shard-count=1
 * eviction-order equivalence with the seed CLOCK, epoch-based frame
 * reclamation, multi-shard single-thread correctness, a multi-thread
 * pointer-chase stress with eviction churn (run under tsan by
 * tools/check_build.sh), per-worker counter exactness against a
 * sequential replay of the same traces, and the concurrent serving
 * scheduler.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "runtime/far_mem_runtime.hh"
#include "runtime/frame_cache.hh"
#include "serve/scheduler.hh"
#include "sim/cost_params.hh"
#include "tfm/tfm_runtime.hh"

namespace tfm
{
namespace
{

/** splitmix64: deterministic per-index payload patterns. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * The 1-shard cache must reproduce the seed's CLOCK byte for byte: the
 * deterministic replay gates depend on sharding being invisible at
 * shard_count=1. Pin the canonical sweep (clear-and-skip referenced
 * frames, skip pinned frames, second sweep guaranteed to find a
 * victim) and drive the legacy and the shard-aware entry points in
 * lockstep on two caches, asserting identical victim sequences.
 */
TEST(FrameCacheClock, SingleShardMatchesSeedOrder)
{
    FrameCache legacy(8 * 64, 64, 1);
    FrameCache sharded(8 * 64, 64, 1);
    ASSERT_EQ(legacy.numFrames(), 8u);

    for (int i = 0; i < 8; i++) {
        const std::uint64_t a = legacy.allocFrame();
        const std::uint64_t b = sharded.allocFrameIn(0);
        ASSERT_EQ(a, b);
        // Descending free list: allocation hands out 0,1,2,... exactly
        // like the pre-sharding cache.
        ASSERT_EQ(a, static_cast<std::uint64_t>(i));
    }

    // All refbits start set; the first sweep clears them and the second
    // returns the frame under the (wrapped) hand: frame 0.
    std::uint64_t v = legacy.pickVictim();
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(sharded.pickVictimIn(0), v);
    legacy.releaseFrame(v);
    sharded.releaseFrame(v);
    EXPECT_EQ(legacy.allocFrame(), 0u);
    EXPECT_EQ(sharded.allocFrameIn(0), 0u);

    // Hand sits at 1. Re-referenced frames 1 and 2 get cleared and
    // skipped; frame 3 is the victim.
    for (FrameCache *c : {&legacy, &sharded}) {
        c->frame(1).refbit.store(true);
        c->frame(2).refbit.store(true);
    }
    v = legacy.pickVictim();
    EXPECT_EQ(v, 3u);
    EXPECT_EQ(sharded.pickVictimIn(0), v);
    legacy.releaseFrame(v);
    sharded.releaseFrame(v);

    // Hand sits at 4. A pinned frame is skipped without clearing its
    // refbit; frame 5 (refbit already cleared above) is the victim.
    for (FrameCache *c : {&legacy, &sharded})
        c->frame(4).pins.store(1);
    v = legacy.pickVictim();
    EXPECT_EQ(v, 5u);
    EXPECT_EQ(sharded.pickVictimIn(0), v);
}

/** Every frame pinned or in limbo: the sweep must give up, not spin. */
TEST(FrameCacheClock, AllPinnedReturnsNoFrame)
{
    FrameCache cache(4 * 64, 64, 1);
    for (int i = 0; i < 4; i++) {
        const std::uint64_t f = cache.allocFrame();
        cache.frame(f).pins.store(1);
    }
    EXPECT_EQ(cache.pickVictim(), FrameCache::noFrame);
}

/**
 * Epoch-based reclamation at the FrameCache level: a retired frame
 * parks in limbo, stays unavailable while any reader's epoch predates
 * its stamp, and returns to the free list once the minimum active
 * epoch reaches the stamp.
 */
TEST(FrameCacheEbr, RetireParksUntilQuiescence)
{
    FrameCache cache(4 * 64, 64, 1);
    const std::uint64_t f0 = cache.allocFrameIn(0);
    const std::uint64_t f1 = cache.allocFrameIn(0);
    ASSERT_NE(f0, FrameCache::noFrame);
    ASSERT_NE(f1, FrameCache::noFrame);
    EXPECT_EQ(cache.usedFrames(), 2u);

    cache.retireFrame(0, f0, /*epoch_stamp=*/5);
    EXPECT_EQ(cache.limboFrames(0), 1u);
    // Limbo frames are invisible to CLOCK and to the used count.
    EXPECT_EQ(cache.usedFrames(), 1u);

    // A reader entered its epoch section before the eviction: no
    // reclamation.
    EXPECT_EQ(cache.reclaimFrames(0, 4), 0u);
    EXPECT_EQ(cache.limboFrames(0), 1u);

    // Every reader has passed the eviction's epoch: the frame is free
    // again and allocatable.
    EXPECT_EQ(cache.reclaimFrames(0, 5), 1u);
    EXPECT_EQ(cache.limboFrames(0), 0u);
    const std::uint64_t free_before = cache.freeFrames();
    EXPECT_EQ(free_before, cache.numFrames() - 1);
    EXPECT_EQ(cache.allocFrameIn(0), f0);

    // Retire with distinct stamps; a partial quiescence reclaims only
    // the older frame.
    cache.retireFrame(0, f0, 7);
    cache.retireFrame(0, f1, 9);
    EXPECT_EQ(cache.limboFrames(0), 2u);
    EXPECT_EQ(cache.reclaimFrames(0, 8), 1u);
    EXPECT_EQ(cache.limboFrames(0), 1u);
    EXPECT_EQ(cache.reclaimFrames(0, 9), 1u);
    EXPECT_EQ(cache.limboFrames(0), 0u);
}

/** Multi-shard hashing: shardOf is stable, in range, and non-trivial. */
TEST(FrameCacheShards, ObjectHashCoversShards)
{
    FrameCache cache(64 * 64, 64, 4);
    EXPECT_EQ(cache.numShards(), 4u);
    std::vector<std::uint64_t> hits(4, 0);
    for (std::uint64_t id = 0; id < 4096; id++) {
        const std::uint32_t s = cache.shardOf(id);
        ASSERT_LT(s, 4u);
        EXPECT_EQ(cache.shardOf(id), s);
        hits[s]++;
    }
    // Fibonacci hashing spreads sequential ids near-uniformly; no
    // shard should be starved or hold the bulk.
    for (const std::uint64_t h : hits) {
        EXPECT_GT(h, 4096u / 8);
        EXPECT_LT(h, 4096u / 2);
    }
    // Frame ranges partition [0, numFrames).
    for (std::uint64_t f = 0; f < cache.numFrames(); f++)
        ASSERT_LT(cache.shardOfFrame(f), 4u);
}

/**
 * A sharded cache in the plain single-thread runtime: data stays
 * correct through heavy eviction churn even though victims are chosen
 * per shard instead of by one global sweep.
 */
TEST(ShardedRuntime, SingleThreadChurnKeepsDataIntact)
{
    RuntimeConfig rc;
    rc.farHeapBytes = 1ull << 20;
    rc.localMemBytes = 16ull << 10; // 256 frames for 4096 objects
    rc.objectSizeBytes = 64;
    rc.prefetchEnabled = false;
    rc.cacheShards = 4;
    const CostParams costs;
    TfmRuntime rt(rc, costs);

    const std::uint64_t n = 4096;
    const std::uint64_t base = rt.tfmCalloc(n, 8);
    ASSERT_NE(base, 0u);
    for (std::uint64_t i = 0; i < n; i++)
        rt.store<std::uint64_t>(base + i * 8, mix64(i));
    for (std::uint64_t i = 0; i < n; i++)
        EXPECT_EQ(rt.load<std::uint64_t>(base + i * 8), mix64(i));

    const RuntimeStats stats = rt.runtime().mergedStats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_EQ(rt.runtime().frameCache().numShards(), 4u);
    EXPECT_LE(rt.runtime().frameCache().usedFrames(),
              rt.runtime().frameCache().numFrames());
}

/**
 * The MT stress test check_build.sh runs under ThreadSanitizer: four
 * worker threads chase a shared permutation cycle through a cache an
 * order of magnitude smaller than the working set (constant eviction,
 * retirement, and reclamation churn) while each also writes a private
 * slice of a second array through the guarded write path. Every read
 * verifies the node's self-describing checksum, so a reader handed a
 * reused frame — use-after-eviction — fails loudly rather than
 * racily.
 */
TEST(ConcurrentRuntime, PointerChaseSurvivesEvictionChurn)
{
    constexpr std::uint64_t kNodes = 8192;
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kSteps = 8000;
    constexpr std::uint64_t kSlicePer = kNodes / kThreads;

    RuntimeConfig rc;
    rc.farHeapBytes = 4ull << 20;
    rc.localMemBytes = 64ull << 10; // 1024 frames vs 8192-node cycle
    rc.objectSizeBytes = 64;
    rc.prefetchEnabled = false;
    rc.concurrent = true;
    rc.cacheShards = 8;
    const CostParams costs;
    TfmRuntime rt(rc, costs);

    struct Node
    {
        std::uint64_t next;  ///< tagged pointer to the successor
        std::uint64_t idx;
        std::uint64_t check; ///< mix64(idx)
    };
    const std::uint64_t nodes = rt.tfmCalloc(kNodes, 64);
    const std::uint64_t slots = rt.tfmCalloc(kNodes, 8);
    ASSERT_NE(nodes, 0u);
    ASSERT_NE(slots, 0u);

    // One kNodes-cycle over a deterministic shuffle, installed with
    // raw writes (no cycle accounting, main thread only).
    std::vector<std::uint64_t> perm(kNodes);
    for (std::uint64_t i = 0; i < kNodes; i++)
        perm[i] = i;
    std::uint64_t rng = 0x5eed;
    for (std::uint64_t i = kNodes - 1; i > 0; i--) {
        rng = mix64(rng);
        std::swap(perm[i], perm[rng % (i + 1)]);
    }
    for (std::uint64_t k = 0; k < kNodes; k++) {
        const std::uint64_t from = perm[k];
        const std::uint64_t to = perm[(k + 1) % kNodes];
        Node node;
        node.next = nodes + to * 64;
        node.idx = from;
        node.check = mix64(from);
        rt.rawWrite(nodes + from * 64, &node, sizeof(node));
    }

    std::vector<TfmRuntime::Worker *> workers;
    for (unsigned t = 0; t < kThreads; t++)
        workers.push_back(rt.registerWorker());

    std::atomic<std::uint64_t> corrupt{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            rt.bindWorker(workers[t]);
            std::uint64_t cur = nodes + (t * kSlicePer) * 64;
            for (std::uint64_t step = 0; step < kSteps; step++) {
                Node node;
                rt.readGuarded(cur, &node, sizeof(node));
                if (node.idx >= kNodes || node.check != mix64(node.idx))
                    corrupt.fetch_add(1);
                cur = node.next;
                // Interleave guarded writes into this thread's private
                // slice so dirty eviction, writeback parking, and
                // steal-back all run under the read churn.
                const std::uint64_t slot =
                    t * kSlicePer + (step % kSlicePer);
                rt.store<std::uint64_t>(slots + slot * 8,
                                        mix64(slot ^ 0xabcd));
            }
            rt.unbindWorker();
        });
    }
    for (std::thread &th : threads)
        th.join();
    rt.runtime().drainWorkerWritebacks();

    EXPECT_EQ(corrupt.load(), 0u);
    // Every written slot holds its final pattern (each slot is written
    // kSteps/kSlicePer times with the same value).
    for (std::uint64_t slot = 0; slot < kNodes; slot++) {
        std::uint64_t got = 0;
        rt.rawRead(slots + slot * 8, &got, sizeof(got));
        EXPECT_EQ(got, mix64(slot ^ 0xabcd)) << "slot " << slot;
    }
    // The cache really was thrashing: evictions and epoch bumps ran
    // throughout.
    const RuntimeStats stats = rt.runtime().mergedStats();
    EXPECT_GT(stats.evictions, kNodes);
    EXPECT_GT(rt.runtime().evictionEpoch(), 0u);
    const GuardStats gs = rt.mergedGuardStats();
    EXPECT_GE(gs.guardTotal(), kThreads * kSteps);
}

/**
 * Per-worker counters are exact, not sampled: with disjoint per-worker
 * object sets and a cache large enough that nothing evicts, every
 * counter is interleaving-invariant, so a concurrent run must produce
 * the very same per-worker RuntimeStats/GuardStats as replaying each
 * worker's trace sequentially on a fresh runtime.
 */
TEST(ConcurrentRuntime, MergedCountersMatchSequentialReplay)
{
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPer = 256;

    RuntimeConfig rc;
    rc.farHeapBytes = 1ull << 20;
    rc.localMemBytes = 256ull << 10; // holds the whole working set
    rc.objectSizeBytes = 64;
    rc.prefetchEnabled = false;
    rc.concurrent = true;
    rc.cacheShards = 4;
    const CostParams costs;

    // Trace for worker t: two guarded reads and one guarded write over
    // each object of its private slice.
    const auto run_trace = [&](TfmRuntime &rt, std::uint64_t base,
                               unsigned t) {
        for (std::uint64_t i = 0; i < kPer; i++) {
            const std::uint64_t addr = base + (t * kPer + i) * 64;
            std::uint64_t v = rt.load<std::uint64_t>(addr);
            v += rt.load<std::uint64_t>(addr + 8);
            rt.store<std::uint64_t>(addr + 16, v + 1);
        }
    };
    const auto setup = [&](TfmRuntime &rt) {
        const std::uint64_t base = rt.tfmCalloc(kThreads * kPer, 64);
        EXPECT_NE(base, 0u);
        for (std::uint64_t o = 0; o < kThreads * kPer; o++) {
            const std::uint64_t v = mix64(o);
            rt.rawWrite(base + o * 64, &v, sizeof(v));
        }
        return base;
    };

    // Concurrent run.
    TfmRuntime conc(rc, costs);
    const std::uint64_t cbase = setup(conc);
    std::vector<TfmRuntime::Worker *> cworkers;
    for (unsigned t = 0; t < kThreads; t++)
        cworkers.push_back(conc.registerWorker());
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            conc.bindWorker(cworkers[t]);
            run_trace(conc, cbase, t);
            conc.unbindWorker();
        });
    }
    for (std::thread &th : threads)
        th.join();
    conc.runtime().drainWorkerWritebacks();
    EXPECT_EQ(conc.runtime().mergedStats().evictions, 0u);

    // Sequential replay of the identical traces, one bound worker at a
    // time on the main thread.
    TfmRuntime seq(rc, costs);
    const std::uint64_t sbase = setup(seq);
    std::vector<TfmRuntime::Worker *> sworkers;
    for (unsigned t = 0; t < kThreads; t++)
        sworkers.push_back(seq.registerWorker());
    for (unsigned t = 0; t < kThreads; t++) {
        seq.bindWorker(sworkers[t]);
        run_trace(seq, sbase, t);
        seq.unbindWorker();
    }
    seq.runtime().drainWorkerWritebacks();

    for (unsigned t = 0; t < kThreads; t++) {
        const RuntimeStats &c = cworkers[t]->rt->stats;
        const RuntimeStats &s = sworkers[t]->rt->stats;
        EXPECT_EQ(c.localizeCalls, s.localizeCalls) << "worker " << t;
        EXPECT_EQ(c.demandFetches, s.demandFetches) << "worker " << t;
        EXPECT_EQ(c.evictions, s.evictions) << "worker " << t;
        const GuardStats &cg = cworkers[t]->gstats;
        const GuardStats &sg = sworkers[t]->gstats;
        EXPECT_EQ(cg.fastReads, sg.fastReads) << "worker " << t;
        EXPECT_EQ(cg.fastWrites, sg.fastWrites) << "worker " << t;
        EXPECT_EQ(cg.slowTotal(), sg.slowTotal()) << "worker " << t;
        EXPECT_EQ(cg.cacheHitReads, sg.cacheHitReads) << "worker " << t;
    }

    // The merged views agree too (merge plumbing sums every worker).
    const RuntimeStats cm = conc.runtime().mergedStats();
    const RuntimeStats sm = seq.runtime().mergedStats();
    EXPECT_EQ(cm.localizeCalls, sm.localizeCalls);
    EXPECT_EQ(cm.demandFetches, sm.demandFetches);
    EXPECT_EQ(conc.mergedGuardStats().guardTotal(),
              seq.mergedGuardStats().guardTotal());
}

/**
 * Concurrent serving smoke: real worker threads over a shared runtime
 * complete every generated arrival, attribute each completion to
 * exactly one worker, and draw the same per-tenant arrival streams as
 * the deterministic event loop (the schedule is pre-generated with the
 * det loop's sampling order).
 */
TEST(ConcurrentScheduler, CompletesEverythingAcrossWorkers)
{
    const CostParams costs;
    ServeConfig sc;
    TenantConfig t;
    t.workload = TenantWorkloadKind::Memcached;
    t.numKeys = 512;
    t.farHeapBytes = 4ull << 20;
    t.localMemBytes = 128ull << 10;
    sc.tenants = {t, t};
    sc.tenants[1].workload = TenantWorkloadKind::Hashmap;
    sc.arrivals.ratePerCycle = 1e-4;
    sc.totalRequests = 400;
    sc.seed = 99;

    sc.workers = 1;
    Scheduler det(sc, costs);
    const ServeReport dr = det.run();

    sc.workers = 2;
    sc.concurrent = true;
    Scheduler sched(sc, costs);
    const ServeReport report = sched.run();

    EXPECT_EQ(report.aggregate.arrivals, 400u);
    EXPECT_EQ(report.aggregate.completions, 400u);
    EXPECT_GT(report.endCycle, 0u);
    ASSERT_EQ(report.workers.size(), 2u);
    std::uint64_t by_worker = 0;
    for (const WorkerReport &w : report.workers) {
        EXPECT_GT(w.completions, 0u);
        by_worker += w.completions;
    }
    EXPECT_EQ(by_worker, 400u);

    // Same seed, same arrival sampling: the per-tenant split matches
    // the deterministic loop exactly.
    ASSERT_EQ(report.tenants.size(), dr.tenants.size());
    for (std::size_t i = 0; i < report.tenants.size(); i++) {
        EXPECT_EQ(report.tenants[i].arrivals, dr.tenants[i].arrivals);
        EXPECT_EQ(report.tenants[i].completions,
                  dr.tenants[i].completions);
    }
}

} // anonymous namespace
} // namespace tfm
