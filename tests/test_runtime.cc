/**
 * @file
 * Unit tests for the far-memory object runtime: metadata, state table,
 * allocator, frame cache, localization, eviction, pinning, prefetch.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "runtime/far_mem_runtime.hh"
#include "sim/rng.hh"
#include "runtime/frame_cache.hh"
#include "runtime/object_meta.hh"
#include "runtime/object_state_table.hh"
#include "runtime/prefetcher.hh"
#include "runtime/region_allocator.hh"

namespace tfm
{
namespace
{

TEST(ObjectMeta, StartsRemote)
{
    ObjectMeta meta;
    EXPECT_FALSE(meta.present());
    EXPECT_FALSE(meta.dirty());
    EXPECT_FALSE(meta.safeForFastPath());
}

TEST(ObjectMeta, LocalFormatCarriesFrame)
{
    ObjectMeta meta;
    meta.makeLocal(12345);
    EXPECT_TRUE(meta.present());
    EXPECT_EQ(meta.frame(), 12345u);
    EXPECT_TRUE(meta.safeForFastPath());
}

TEST(ObjectMeta, InflightBlocksFastPath)
{
    ObjectMeta meta;
    meta.makeLocal(1);
    meta.setInflight();
    EXPECT_TRUE(meta.present());
    EXPECT_FALSE(meta.safeForFastPath());
    meta.clearInflight();
    EXPECT_TRUE(meta.safeForFastPath());
}

TEST(ObjectMeta, MakeRemoteClearsEverything)
{
    ObjectMeta meta;
    meta.makeLocal(7);
    meta.setDirty();
    meta.setHot();
    meta.makeRemote();
    EXPECT_FALSE(meta.present());
    EXPECT_FALSE(meta.dirty());
    EXPECT_FALSE(meta.hot());
}

TEST(ObjectStateTable, MapsOffsetsToObjects)
{
    ObjectStateTable table(1 << 20, 4096);
    EXPECT_EQ(table.numObjects(), (1u << 20) / 4096);
    EXPECT_EQ(table.objectOf(0), 0u);
    EXPECT_EQ(table.objectOf(4095), 0u);
    EXPECT_EQ(table.objectOf(4096), 1u);
    EXPECT_EQ(table.offsetInObject(4100), 4u);
}

TEST(ObjectStateTable, FootprintIsLikeAPageTable)
{
    // Paper's example: 32 GB heap, 4 KB objects -> 2^23 entries = 64 MB.
    ObjectStateTable table(32ull << 30, 4096);
    EXPECT_EQ(table.numObjects(), 1ull << 23);
    EXPECT_EQ(table.footprintBytes(), 64ull << 20);
}

TEST(RegionAllocator, SmallAllocationsNeverStraddleObjects)
{
    RegionAllocator alloc(1 << 20, 4096);
    for (int i = 0; i < 1000; i++) {
        const std::uint64_t off = alloc.allocate(48); // rounds to 64
        ASSERT_NE(off, RegionAllocator::badOffset);
        const std::uint64_t first_obj = off / 4096;
        const std::uint64_t last_obj = (off + 63) / 4096;
        EXPECT_EQ(first_obj, last_obj);
    }
}

TEST(RegionAllocator, LargeAllocationsAreObjectAligned)
{
    RegionAllocator alloc(1 << 22, 4096);
    alloc.allocate(10); // misalign the bump pointer
    const std::uint64_t off = alloc.allocate(8192);
    EXPECT_EQ(off % 4096, 0u);
}

TEST(RegionAllocator, FreedBlocksAreReused)
{
    RegionAllocator alloc(1 << 20, 4096);
    const std::uint64_t a = alloc.allocate(100);
    alloc.deallocate(a);
    const std::uint64_t b = alloc.allocate(100);
    EXPECT_EQ(a, b);
}

TEST(RegionAllocator, SizeOfReportsRoundedSize)
{
    RegionAllocator alloc(1 << 20, 4096);
    const std::uint64_t a = alloc.allocate(100);
    EXPECT_EQ(alloc.sizeOf(a), 128u);
    EXPECT_EQ(alloc.sizeOf(a + 1), 0u);
}

TEST(RegionAllocator, ExhaustionReturnsBadOffset)
{
    RegionAllocator alloc(8192, 4096);
    EXPECT_NE(alloc.allocate(4096), RegionAllocator::badOffset);
    EXPECT_NE(alloc.allocate(4096), RegionAllocator::badOffset);
    EXPECT_EQ(alloc.allocate(4096), RegionAllocator::badOffset);
}

TEST(RegionAllocator, BytesInUseTracksAllocations)
{
    RegionAllocator alloc(1 << 20, 4096);
    const std::uint64_t a = alloc.allocate(256);
    EXPECT_EQ(alloc.bytesInUse(), 256u);
    alloc.deallocate(a);
    EXPECT_EQ(alloc.bytesInUse(), 0u);
}

TEST(FrameCache, AllocatesUntilFull)
{
    FrameCache cache(4 * 4096, 4096);
    EXPECT_EQ(cache.numFrames(), 4u);
    for (int i = 0; i < 4; i++)
        EXPECT_NE(cache.allocFrame(), FrameCache::noFrame);
    EXPECT_EQ(cache.allocFrame(), FrameCache::noFrame);
}

TEST(FrameCache, ClockEvictsUnreferencedFirst)
{
    FrameCache cache(4 * 4096, 4096);
    std::uint64_t frames[4];
    for (int i = 0; i < 4; i++) {
        frames[i] = cache.allocFrame();
        cache.frame(frames[i]).objId = i;
    }
    // Clear one frame's reference bit; CLOCK must pick it eventually.
    cache.frame(frames[2]).refbit = false;
    const std::uint64_t victim = cache.pickVictim();
    EXPECT_EQ(victim, frames[2]);
}

TEST(FrameCache, PinnedFramesAreNeverVictims)
{
    FrameCache cache(2 * 4096, 4096);
    const std::uint64_t a = cache.allocFrame();
    const std::uint64_t b = cache.allocFrame();
    cache.frame(a).pins = 1;
    cache.frame(a).refbit = false;
    cache.frame(b).refbit = false;
    EXPECT_EQ(cache.pickVictim(), b);
    cache.frame(b).pins = 1;
    EXPECT_EQ(cache.pickVictim(), FrameCache::noFrame);
}

TEST(FrameCache, ReleaseReturnsFrameToFreeList)
{
    FrameCache cache(2 * 4096, 4096);
    const std::uint64_t a = cache.allocFrame();
    cache.allocFrame();
    EXPECT_EQ(cache.freeFrames(), 0u);
    cache.releaseFrame(a);
    EXPECT_EQ(cache.freeFrames(), 1u);
}

TEST(StridePrefetcher, DetectsUnitStride)
{
    StridePrefetcher prefetcher(8, 2);
    EXPECT_EQ(prefetcher.onDemandMiss(10), 0);
    EXPECT_EQ(prefetcher.onDemandMiss(11), 0); // confidence 1
    EXPECT_EQ(prefetcher.onDemandMiss(12), 1); // armed
    EXPECT_EQ(prefetcher.onDemandMiss(13), 1);
}

TEST(StridePrefetcher, DetectsNegativeStride)
{
    StridePrefetcher prefetcher(8, 2);
    prefetcher.onDemandMiss(100);
    prefetcher.onDemandMiss(98);
    EXPECT_EQ(prefetcher.onDemandMiss(96), -2);
}

TEST(StridePrefetcher, TracksInterleavedStreams)
{
    StridePrefetcher prefetcher(8, 2);
    // Two far-apart sequential streams, interleaved (STREAM copy).
    prefetcher.onDemandMiss(1000);
    prefetcher.onDemandMiss(9000);
    prefetcher.onDemandMiss(1001);
    prefetcher.onDemandMiss(9001);
    EXPECT_EQ(prefetcher.onDemandMiss(1002), 1);
    EXPECT_EQ(prefetcher.onDemandMiss(9002), 1);
}

TEST(StridePrefetcher, RandomMissesNeverArm)
{
    StridePrefetcher prefetcher(8, 2);
    Rng rng(3);
    int armed = 0;
    for (int i = 0; i < 1000; i++)
        armed += (prefetcher.onDemandMiss(rng.below(1 << 20)) != 0);
    EXPECT_LT(armed, 20);
}

class RuntimeTest : public ::testing::Test
{
  protected:
    RuntimeConfig
    smallConfig()
    {
        RuntimeConfig cfg;
        cfg.farHeapBytes = 1 << 20;    // 1 MB heap
        cfg.localMemBytes = 16 * 4096; // 16 frames
        cfg.objectSizeBytes = 4096;
        cfg.prefetchEnabled = false;
        return cfg;
    }
};

TEST_F(RuntimeTest, LocalizeRoundTripsData)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(8192);
    const std::uint32_t magic = 0xdeadbeef;
    rt.rawWrite(off + 100, &magic, sizeof(magic));

    std::byte *p = rt.localize(off + 100, false);
    std::uint32_t readback;
    std::memcpy(&readback, p, sizeof(readback));
    EXPECT_EQ(readback, magic);
    EXPECT_EQ(rt.stats().demandFetches, 1u);
}

TEST_F(RuntimeTest, SecondLocalizeIsAlreadyLocal)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4096);
    FarMemRuntime::Localized outcome;
    rt.localize(off, false, &outcome);
    EXPECT_EQ(outcome, FarMemRuntime::Localized::RemoteFetch);
    rt.localize(off, false, &outcome);
    EXPECT_EQ(outcome, FarMemRuntime::Localized::AlreadyLocal);
    EXPECT_EQ(rt.stats().demandFetches, 1u);
}

TEST_F(RuntimeTest, TryFastOnlyHitsLocalObjects)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4096);
    EXPECT_EQ(rt.tryFast(off, false), nullptr);
    rt.localize(off, false);
    EXPECT_NE(rt.tryFast(off, false), nullptr);
}

TEST_F(RuntimeTest, DirtyEvictionWritesBack)
{
    auto cfg = smallConfig();
    cfg.localMemBytes = 2 * 4096; // 2 frames only
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(16 * 4096);

    // Dirty object 0 through a localized write.
    std::byte *p = rt.localize(off, true);
    const std::uint64_t magic = 0x1122334455667788ull;
    std::memcpy(p, &magic, sizeof(magic));

    // Touch enough other objects to force object 0 out.
    for (int i = 1; i < 8; i++)
        rt.localize(off + i * 4096, false);
    EXPECT_FALSE(rt.isLocal(off));
    EXPECT_GE(rt.stats().dirtyWritebacks, 1u);

    // The write must have reached the remote node.
    std::uint64_t readback = 0;
    rt.rawRead(off, &readback, sizeof(readback));
    EXPECT_EQ(readback, magic);
}

TEST_F(RuntimeTest, CleanEvictionSkipsWriteback)
{
    auto cfg = smallConfig();
    cfg.localMemBytes = 2 * 4096;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(16 * 4096);
    for (int i = 0; i < 8; i++)
        rt.localize(off + i * 4096, false); // reads only
    EXPECT_GT(rt.stats().evictions, 0u);
    EXPECT_EQ(rt.stats().dirtyWritebacks, 0u);
    EXPECT_EQ(rt.net().stats().bytesWrittenBack, 0u);
}

TEST_F(RuntimeTest, PinnedObjectsSurviveEvictionPressure)
{
    auto cfg = smallConfig();
    cfg.localMemBytes = 4 * 4096;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(64 * 4096);

    rt.localize(off, false);
    const std::uint64_t obj0 = rt.stateTable().objectOf(off);
    rt.pinObject(obj0);
    for (int i = 1; i < 32; i++)
        rt.localize(off + i * 4096, false);
    EXPECT_TRUE(rt.isLocal(off));
    rt.unpinObject(obj0);
}

TEST_F(RuntimeTest, PrefetchMakesLaterAccessesHits)
{
    auto cfg = smallConfig();
    cfg.prefetchEnabled = true;
    cfg.prefetchDepth = 4;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(64 * 4096);

    // Sequential sweep: by the third object the prefetcher is armed.
    for (int i = 0; i < 16; i++)
        rt.localize(off + i * 4096, false);
    EXPECT_GT(rt.stats().prefetchIssued, 0u);
    EXPECT_GT(rt.stats().prefetchHits, 0u);
    // Prefetch hits replace demand fetches.
    EXPECT_LT(rt.stats().demandFetches, 16u);
}

TEST_F(RuntimeTest, RawWriteUpdatesLocalizedCopy)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4096);
    rt.localize(off, false);
    const std::uint32_t value = 42;
    rt.rawWrite(off, &value, sizeof(value));
    std::uint32_t readback = 0;
    std::memcpy(&readback, rt.tryFast(off, false), sizeof(readback));
    EXPECT_EQ(readback, value);
}

TEST_F(RuntimeTest, EvacuateAllFlushesDirtyData)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4096);
    std::byte *p = rt.localize(off, true);
    const std::uint32_t value = 77;
    std::memcpy(p, &value, sizeof(value));
    rt.evacuateAll();
    EXPECT_FALSE(rt.isLocal(off));
    std::uint32_t readback = 0;
    rt.rawRead(off, &readback, sizeof(readback));
    EXPECT_EQ(readback, value);
}

TEST_F(RuntimeTest, StatsExportContainsKeyCounters)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4096);
    rt.localize(off, false);
    StatSet set;
    rt.exportStats(set);
    EXPECT_EQ(set.get("runtime.demand_fetches"), 1u);
    EXPECT_GT(set.get("net.bytes_fetched"), 0u);
    EXPECT_GT(set.get("clock.cycles"), 0u);
}

TEST_F(RuntimeTest, SpansMultipleObjectsIndependently)
{
    // An allocation spanning several objects can be in "superposition":
    // some chunks local, others remote (section 3.2).
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4 * 4096);
    rt.localize(off, false);
    rt.localize(off + 2 * 4096, false);
    EXPECT_TRUE(rt.isLocal(off));
    EXPECT_FALSE(rt.isLocal(off + 4096));
    EXPECT_TRUE(rt.isLocal(off + 2 * 4096));
    EXPECT_FALSE(rt.isLocal(off + 3 * 4096));
}

} // namespace
} // namespace tfm
