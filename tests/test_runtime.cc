/**
 * @file
 * Unit tests for the far-memory object runtime: metadata, state table,
 * allocator, frame cache, localization, eviction, pinning, prefetch.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "runtime/far_mem_runtime.hh"
#include "sim/rng.hh"
#include "tfm/tfm_runtime.hh"
#include "runtime/frame_cache.hh"
#include "runtime/object_meta.hh"
#include "runtime/object_state_table.hh"
#include "runtime/prefetcher.hh"
#include "runtime/region_allocator.hh"

namespace tfm
{
namespace
{

TEST(ObjectMeta, StartsRemote)
{
    ObjectMeta meta;
    EXPECT_FALSE(meta.present());
    EXPECT_FALSE(meta.dirty());
    EXPECT_FALSE(meta.safeForFastPath());
}

TEST(ObjectMeta, LocalFormatCarriesFrame)
{
    ObjectMeta meta;
    meta.makeLocal(12345);
    EXPECT_TRUE(meta.present());
    EXPECT_EQ(meta.frame(), 12345u);
    EXPECT_TRUE(meta.safeForFastPath());
}

TEST(ObjectMeta, InflightBlocksFastPath)
{
    ObjectMeta meta;
    meta.makeLocal(1);
    meta.setInflight();
    EXPECT_TRUE(meta.present());
    EXPECT_FALSE(meta.safeForFastPath());
    meta.clearInflight();
    EXPECT_TRUE(meta.safeForFastPath());
}

TEST(ObjectMeta, MakeRemoteClearsEverything)
{
    ObjectMeta meta;
    meta.makeLocal(7);
    meta.setDirty();
    meta.setHot();
    meta.makeRemote();
    EXPECT_FALSE(meta.present());
    EXPECT_FALSE(meta.dirty());
    EXPECT_FALSE(meta.hot());
}

TEST(ObjectStateTable, MapsOffsetsToObjects)
{
    ObjectStateTable table(1 << 20, 4096);
    EXPECT_EQ(table.numObjects(), (1u << 20) / 4096);
    EXPECT_EQ(table.objectOf(0), 0u);
    EXPECT_EQ(table.objectOf(4095), 0u);
    EXPECT_EQ(table.objectOf(4096), 1u);
    EXPECT_EQ(table.offsetInObject(4100), 4u);
}

TEST(ObjectStateTable, FootprintIsLikeAPageTable)
{
    // Paper's example: 32 GB heap, 4 KB objects -> 2^23 entries = 64 MB.
    ObjectStateTable table(32ull << 30, 4096);
    EXPECT_EQ(table.numObjects(), 1ull << 23);
    EXPECT_EQ(table.footprintBytes(), 64ull << 20);
}

TEST(RegionAllocator, SmallAllocationsNeverStraddleObjects)
{
    RegionAllocator alloc(1 << 20, 4096);
    for (int i = 0; i < 1000; i++) {
        const std::uint64_t off = alloc.allocate(48); // rounds to 64
        ASSERT_NE(off, RegionAllocator::badOffset);
        const std::uint64_t first_obj = off / 4096;
        const std::uint64_t last_obj = (off + 63) / 4096;
        EXPECT_EQ(first_obj, last_obj);
    }
}

TEST(RegionAllocator, LargeAllocationsAreObjectAligned)
{
    RegionAllocator alloc(1 << 22, 4096);
    alloc.allocate(10); // misalign the bump pointer
    const std::uint64_t off = alloc.allocate(8192);
    EXPECT_EQ(off % 4096, 0u);
}

TEST(RegionAllocator, FreedBlocksAreReused)
{
    RegionAllocator alloc(1 << 20, 4096);
    const std::uint64_t a = alloc.allocate(100);
    alloc.deallocate(a);
    const std::uint64_t b = alloc.allocate(100);
    EXPECT_EQ(a, b);
}

TEST(RegionAllocator, SizeOfReportsRoundedSize)
{
    RegionAllocator alloc(1 << 20, 4096);
    const std::uint64_t a = alloc.allocate(100);
    EXPECT_EQ(alloc.sizeOf(a), 128u);
    EXPECT_EQ(alloc.sizeOf(a + 1), 0u);
}

TEST(RegionAllocator, ExhaustionReturnsBadOffset)
{
    RegionAllocator alloc(8192, 4096);
    EXPECT_NE(alloc.allocate(4096), RegionAllocator::badOffset);
    EXPECT_NE(alloc.allocate(4096), RegionAllocator::badOffset);
    EXPECT_EQ(alloc.allocate(4096), RegionAllocator::badOffset);
}

TEST(RegionAllocator, BytesInUseTracksAllocations)
{
    RegionAllocator alloc(1 << 20, 4096);
    const std::uint64_t a = alloc.allocate(256);
    EXPECT_EQ(alloc.bytesInUse(), 256u);
    alloc.deallocate(a);
    EXPECT_EQ(alloc.bytesInUse(), 0u);
}

TEST(FrameCache, AllocatesUntilFull)
{
    FrameCache cache(4 * 4096, 4096);
    EXPECT_EQ(cache.numFrames(), 4u);
    for (int i = 0; i < 4; i++)
        EXPECT_NE(cache.allocFrame(), FrameCache::noFrame);
    EXPECT_EQ(cache.allocFrame(), FrameCache::noFrame);
}

TEST(FrameCache, ClockEvictsUnreferencedFirst)
{
    FrameCache cache(4 * 4096, 4096);
    std::uint64_t frames[4];
    for (int i = 0; i < 4; i++) {
        frames[i] = cache.allocFrame();
        cache.frame(frames[i]).objId = i;
    }
    // Clear one frame's reference bit; CLOCK must pick it eventually.
    cache.frame(frames[2]).refbit = false;
    const std::uint64_t victim = cache.pickVictim();
    EXPECT_EQ(victim, frames[2]);
}

TEST(FrameCache, PinnedFramesAreNeverVictims)
{
    FrameCache cache(2 * 4096, 4096);
    const std::uint64_t a = cache.allocFrame();
    const std::uint64_t b = cache.allocFrame();
    cache.frame(a).pins = 1;
    cache.frame(a).refbit = false;
    cache.frame(b).refbit = false;
    EXPECT_EQ(cache.pickVictim(), b);
    cache.frame(b).pins = 1;
    EXPECT_EQ(cache.pickVictim(), FrameCache::noFrame);
}

TEST(FrameCache, ReleaseReturnsFrameToFreeList)
{
    FrameCache cache(2 * 4096, 4096);
    const std::uint64_t a = cache.allocFrame();
    cache.allocFrame();
    EXPECT_EQ(cache.freeFrames(), 0u);
    cache.releaseFrame(a);
    EXPECT_EQ(cache.freeFrames(), 1u);
}

TEST(StridePrefetcher, DetectsUnitStride)
{
    StridePrefetcher prefetcher(8, 2);
    EXPECT_EQ(prefetcher.onDemandMiss(10), 0);
    EXPECT_EQ(prefetcher.onDemandMiss(11), 0); // confidence 1
    EXPECT_EQ(prefetcher.onDemandMiss(12), 1); // armed
    EXPECT_EQ(prefetcher.onDemandMiss(13), 1);
}

TEST(StridePrefetcher, DetectsNegativeStride)
{
    StridePrefetcher prefetcher(8, 2);
    prefetcher.onDemandMiss(100);
    prefetcher.onDemandMiss(98);
    EXPECT_EQ(prefetcher.onDemandMiss(96), -2);
}

TEST(StridePrefetcher, TracksInterleavedStreams)
{
    StridePrefetcher prefetcher(8, 2);
    // Two far-apart sequential streams, interleaved (STREAM copy).
    prefetcher.onDemandMiss(1000);
    prefetcher.onDemandMiss(9000);
    prefetcher.onDemandMiss(1001);
    prefetcher.onDemandMiss(9001);
    EXPECT_EQ(prefetcher.onDemandMiss(1002), 1);
    EXPECT_EQ(prefetcher.onDemandMiss(9002), 1);
}

TEST(StridePrefetcher, InterleavedStreamsKeepSeparateTrackers)
{
    StridePrefetcher prefetcher(8, 2);
    // Four interleaved sweeps (two forward, one backward, one wide
    // stride), all far enough apart to never share a tracker.
    const std::int64_t bases[4] = {1000, 9000, 20000, 40000};
    const std::int64_t strides[4] = {1, 1, -1, 4};
    for (int step = 0; step < 8; step++) {
        for (int s = 0; s < 4; s++) {
            const std::int64_t obj = bases[s] + strides[s] * step;
            const std::int64_t got = prefetcher.onDemandMiss(
                static_cast<std::uint64_t>(obj));
            // Once trained, every stream reports its own stride.
            if (step >= 2)
                EXPECT_EQ(got, strides[s]) << "stream " << s;
        }
    }
    const PrefetcherStats &stats = prefetcher.stats();
    EXPECT_EQ(stats.trackerAllocs, 4u);     // one per stream
    EXPECT_EQ(stats.trackerEvictions, 0u);  // 4 streams, 8 trackers
    // 4 streams * 6 armed misses each (steps 2..7).
    EXPECT_EQ(stats.armedMisses, 24u);
}

TEST(StridePrefetcher, RepeatedObjectMatchesItsOwnTracker)
{
    StridePrefetcher prefetcher(8, 2);
    // A hot object re-missed repeatedly must keep matching its own
    // tracker (exact-match early exit), not allocate new streams or
    // perturb a neighbour within the match window.
    prefetcher.onDemandMiss(100);
    prefetcher.onDemandMiss(101);
    prefetcher.onDemandMiss(102); // armed, stride 1
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(prefetcher.onDemandMiss(102), 0); // zero stride
    EXPECT_EQ(prefetcher.stats().trackerAllocs, 1u);
    // The zero-stride run clobbered the stride history, so the resumed
    // sweep retrains (one miss) and then re-arms — still in the same
    // tracker, without a fresh allocation.
    EXPECT_EQ(prefetcher.onDemandMiss(103), 0);
    EXPECT_EQ(prefetcher.onDemandMiss(104), 1);
    EXPECT_EQ(prefetcher.stats().trackerAllocs, 1u);
}

TEST(StridePrefetcher, MoreStreamsThanTrackersEvicts)
{
    StridePrefetcher prefetcher(8, 2);
    // 12 far-apart streams into 8 trackers: 4 must displace others.
    for (int s = 0; s < 12; s++)
        prefetcher.onDemandMiss(static_cast<std::uint64_t>(s) * 100000);
    EXPECT_EQ(prefetcher.stats().trackerAllocs, 12u);
    EXPECT_EQ(prefetcher.stats().trackerEvictions, 4u);
}

TEST(StridePrefetcher, RandomMissesNeverArm)
{
    StridePrefetcher prefetcher(8, 2);
    Rng rng(3);
    int armed = 0;
    for (int i = 0; i < 1000; i++)
        armed += (prefetcher.onDemandMiss(rng.below(1 << 20)) != 0);
    EXPECT_LT(armed, 20);
}

class RuntimeTest : public ::testing::Test
{
  protected:
    RuntimeConfig
    smallConfig()
    {
        RuntimeConfig cfg;
        cfg.farHeapBytes = 1 << 20;    // 1 MB heap
        cfg.localMemBytes = 16 * 4096; // 16 frames
        cfg.objectSizeBytes = 4096;
        cfg.prefetchEnabled = false;
        return cfg;
    }
};

TEST_F(RuntimeTest, LocalizeRoundTripsData)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(8192);
    const std::uint32_t magic = 0xdeadbeef;
    rt.rawWrite(off + 100, &magic, sizeof(magic));

    std::byte *p = rt.localize(off + 100, false);
    std::uint32_t readback;
    std::memcpy(&readback, p, sizeof(readback));
    EXPECT_EQ(readback, magic);
    EXPECT_EQ(rt.stats().demandFetches, 1u);
}

TEST_F(RuntimeTest, SecondLocalizeIsAlreadyLocal)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4096);
    FarMemRuntime::Localized outcome;
    rt.localize(off, false, &outcome);
    EXPECT_EQ(outcome, FarMemRuntime::Localized::RemoteFetch);
    rt.localize(off, false, &outcome);
    EXPECT_EQ(outcome, FarMemRuntime::Localized::AlreadyLocal);
    EXPECT_EQ(rt.stats().demandFetches, 1u);
}

TEST_F(RuntimeTest, TryFastOnlyHitsLocalObjects)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4096);
    EXPECT_EQ(rt.tryFast(off, false), nullptr);
    rt.localize(off, false);
    EXPECT_NE(rt.tryFast(off, false), nullptr);
}

TEST_F(RuntimeTest, DirtyEvictionWritesBack)
{
    auto cfg = smallConfig();
    cfg.localMemBytes = 2 * 4096; // 2 frames only
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(16 * 4096);

    // Dirty object 0 through a localized write.
    std::byte *p = rt.localize(off, true);
    const std::uint64_t magic = 0x1122334455667788ull;
    std::memcpy(p, &magic, sizeof(magic));

    // Touch enough other objects to force object 0 out.
    for (int i = 1; i < 8; i++)
        rt.localize(off + i * 4096, false);
    EXPECT_FALSE(rt.isLocal(off));
    EXPECT_GE(rt.stats().dirtyWritebacks, 1u);

    // The write must have reached the remote node.
    std::uint64_t readback = 0;
    rt.rawRead(off, &readback, sizeof(readback));
    EXPECT_EQ(readback, magic);
}

TEST_F(RuntimeTest, CleanEvictionSkipsWriteback)
{
    auto cfg = smallConfig();
    cfg.localMemBytes = 2 * 4096;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(16 * 4096);
    for (int i = 0; i < 8; i++)
        rt.localize(off + i * 4096, false); // reads only
    EXPECT_GT(rt.stats().evictions, 0u);
    EXPECT_EQ(rt.stats().dirtyWritebacks, 0u);
    EXPECT_EQ(rt.net().stats().bytesWrittenBack, 0u);
}

TEST_F(RuntimeTest, PinnedObjectsSurviveEvictionPressure)
{
    auto cfg = smallConfig();
    cfg.localMemBytes = 4 * 4096;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(64 * 4096);

    rt.localize(off, false);
    const std::uint64_t obj0 = rt.stateTable().objectOf(off);
    rt.pinObject(obj0);
    for (int i = 1; i < 32; i++)
        rt.localize(off + i * 4096, false);
    EXPECT_TRUE(rt.isLocal(off));
    rt.unpinObject(obj0);
}

TEST_F(RuntimeTest, PrefetchMakesLaterAccessesHits)
{
    auto cfg = smallConfig();
    cfg.prefetchEnabled = true;
    cfg.prefetchDepth = 4;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(64 * 4096);

    // Sequential sweep: by the third object the prefetcher is armed.
    for (int i = 0; i < 16; i++)
        rt.localize(off + i * 4096, false);
    EXPECT_GT(rt.stats().prefetchIssued, 0u);
    EXPECT_GT(rt.stats().prefetchHits, 0u);
    // Prefetch hits replace demand fetches.
    EXPECT_LT(rt.stats().demandFetches, 16u);
}

TEST_F(RuntimeTest, RawWriteUpdatesLocalizedCopy)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4096);
    rt.localize(off, false);
    const std::uint32_t value = 42;
    rt.rawWrite(off, &value, sizeof(value));
    std::uint32_t readback = 0;
    std::memcpy(&readback, rt.tryFast(off, false), sizeof(readback));
    EXPECT_EQ(readback, value);
}

TEST_F(RuntimeTest, EvacuateAllFlushesDirtyData)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4096);
    std::byte *p = rt.localize(off, true);
    const std::uint32_t value = 77;
    std::memcpy(p, &value, sizeof(value));
    rt.evacuateAll();
    EXPECT_FALSE(rt.isLocal(off));
    std::uint32_t readback = 0;
    rt.rawRead(off, &readback, sizeof(readback));
    EXPECT_EQ(readback, value);
}

TEST_F(RuntimeTest, StatsExportContainsKeyCounters)
{
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4096);
    rt.localize(off, false);
    StatSet set;
    rt.exportStats(set);
    EXPECT_EQ(set.get("runtime.demand_fetches"), 1u);
    EXPECT_GT(set.get("net.bytes_fetched"), 0u);
    EXPECT_GT(set.get("clock.cycles"), 0u);
}

TEST_F(RuntimeTest, SpansMultipleObjectsIndependently)
{
    // An allocation spanning several objects can be in "superposition":
    // some chunks local, others remote (section 3.2).
    FarMemRuntime rt(smallConfig(), CostParams{});
    const std::uint64_t off = rt.allocate(4 * 4096);
    rt.localize(off, false);
    rt.localize(off + 2 * 4096, false);
    EXPECT_TRUE(rt.isLocal(off));
    EXPECT_FALSE(rt.isLocal(off + 4096));
    EXPECT_TRUE(rt.isLocal(off + 2 * 4096));
    EXPECT_FALSE(rt.isLocal(off + 3 * 4096));
}

// ---------------------------------------------------------------------
// Batched data plane: fetch coalescing and writeback batching.
// ---------------------------------------------------------------------

TEST_F(RuntimeTest, BatchedPrefetchCoalescesMessages)
{
    auto sweep = [&](bool batching) {
        auto cfg = smallConfig();
        cfg.localMemBytes = 32 * 4096;
        cfg.prefetchEnabled = true;
        cfg.prefetchDepth = 16;
        cfg.batchingEnabled = batching;
        cfg.fetchBatchMax = 16;
        // Heap-allocated: the runtime is pinned in place (mutexes,
        // atomics) and cannot be returned by value.
        auto rt = std::make_unique<FarMemRuntime>(cfg, CostParams{});
        const std::uint64_t off = rt->allocate(128 * 4096);
        for (int i = 0; i < 128; i++)
            rt->localize(off + i * 4096, false);
        return rt;
    };
    auto unbatched = sweep(false);
    auto batched = sweep(true);

    // Same bytes on the wire (every object fetched exactly once)...
    EXPECT_EQ(unbatched->net().stats().bytesFetched,
              batched->net().stats().bytesFetched);
    // ...but the batched sweep coalesces each prefetch window into one
    // message instead of one message per object.
    EXPECT_GT(batched->stats().prefetchBatches, 0u);
    EXPECT_GT(batched->net().stats().fetchBatches, 0u);
    EXPECT_LE(batched->net().stats().fetchMessages * 4,
              unbatched->net().stats().fetchMessages);
}

TEST_F(RuntimeTest, LocalizeJoinsInflightBatchedFetch)
{
    auto cfg = smallConfig();
    cfg.batchingEnabled = true;
    cfg.fetchBatchMax = 8;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(8 * 4096);

    // One coalesced message covering objects 1..4.
    rt.prefetchObjects(0, 1, 4);
    EXPECT_EQ(rt.net().stats().fetchMessages, 1u);
    EXPECT_EQ(rt.net().stats().fetchPayloads, 4u);

    // A localize of an in-flight member joins the batch: it waits for
    // the arrival instead of issuing a duplicate fetch.
    FarMemRuntime::Localized outcome;
    rt.localize(off + 2 * 4096, false, &outcome);
    EXPECT_EQ(outcome, FarMemRuntime::Localized::PrefetchWait);
    EXPECT_GE(rt.stats().inflightJoins, 1u);
    EXPECT_EQ(rt.stats().demandFetches, 0u);
    EXPECT_EQ(rt.net().stats().fetchMessages, 1u);
}

TEST_F(RuntimeTest, WritebackBufferFlushesOnSizeThreshold)
{
    auto cfg = smallConfig();
    cfg.localMemBytes = 2 * 4096;
    cfg.batchingEnabled = true;
    cfg.writebackBatchMax = 4;
    cfg.writebackFlushCycles = ~0ull; // isolate the size trigger
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(16 * 4096);

    // Dirty eight objects under two-frame pressure: six dirty evictions
    // park in the buffer, and the fourth parked entry triggers a flush.
    for (int i = 0; i < 8; i++)
        rt.localize(off + i * 4096, true);
    EXPECT_EQ(rt.stats().dirtyWritebacks, 6u);
    EXPECT_EQ(rt.stats().writebackFlushes, 1u);
    EXPECT_EQ(rt.net().stats().writebackMessages, 1u);
    EXPECT_EQ(rt.net().stats().writebackPayloads, 4u);
    EXPECT_EQ(rt.pendingWritebacks(), 2u);

    rt.flushWritebacks();
    EXPECT_EQ(rt.pendingWritebacks(), 0u);
    EXPECT_EQ(rt.net().stats().writebackMessages, 2u);
    EXPECT_EQ(rt.net().stats().writebackPayloads, 6u);
}

TEST_F(RuntimeTest, BufferedWritebackIsVisibleBeforeFlush)
{
    auto cfg = smallConfig();
    cfg.localMemBytes = 2 * 4096;
    cfg.batchingEnabled = true;
    cfg.writebackBatchMax = 8;
    cfg.writebackFlushCycles = ~0ull;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(16 * 4096);

    std::byte *p = rt.localize(off, true);
    const std::uint64_t magic = 0xabcdef0123456789ull;
    std::memcpy(p, &magic, sizeof(magic));
    for (int i = 1; i < 6; i++)
        rt.localize(off + i * 4096, false);
    ASSERT_FALSE(rt.isLocal(off));
    EXPECT_GE(rt.pendingWritebacks(), 1u);

    // The dirty payload is parked, not yet on the wire, but reads must
    // still observe it (store-buffer coherence).
    std::uint64_t readback = 0;
    rt.rawRead(off, &readback, sizeof(readback));
    EXPECT_EQ(readback, magic);
}

TEST_F(RuntimeTest, EvacuateAllDrainsWritebackBuffer)
{
    auto cfg = smallConfig();
    cfg.localMemBytes = 2 * 4096;
    cfg.batchingEnabled = true;
    cfg.writebackBatchMax = 8;
    cfg.writebackFlushCycles = ~0ull;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(16 * 4096);

    for (int i = 0; i < 4; i++) {
        std::byte *p = rt.localize(off + i * 4096, true);
        const std::uint64_t value = 0x1000u + static_cast<std::uint64_t>(i);
        std::memcpy(p, &value, sizeof(value));
    }
    ASSERT_GE(rt.pendingWritebacks(), 1u);
    rt.evacuateAll();
    EXPECT_EQ(rt.pendingWritebacks(), 0u);
    for (int i = 0; i < 4; i++) {
        std::uint64_t readback = 0;
        rt.rawRead(off + i * 4096, &readback, sizeof(readback));
        EXPECT_EQ(readback, 0x1000u + static_cast<std::uint64_t>(i));
    }
}

TEST_F(RuntimeTest, WritebackBufferHitResurrectsDirtyObject)
{
    auto cfg = smallConfig();
    cfg.localMemBytes = 2 * 4096;
    cfg.batchingEnabled = true;
    cfg.writebackBatchMax = 8;
    cfg.writebackFlushCycles = ~0ull;
    FarMemRuntime rt(cfg, CostParams{});
    const std::uint64_t off = rt.allocate(16 * 4096);

    std::byte *p = rt.localize(off, true);
    const std::uint64_t magic = 0x5ca1ab1e0ddba11ull;
    std::memcpy(p, &magic, sizeof(magic));
    for (int i = 1; i < 6; i++)
        rt.localize(off + i * 4096, false);
    ASSERT_FALSE(rt.isLocal(off));
    ASSERT_GE(rt.pendingWritebacks(), 1u);

    // Re-localizing the parked object restores it from the buffer: no
    // new fetch message, and the dirty payload is intact.
    const std::uint64_t fetches_before = rt.net().stats().fetchMessages;
    const std::uint64_t demand_before = rt.stats().demandFetches;
    std::byte *again = rt.localize(off, false);
    std::uint64_t readback = 0;
    std::memcpy(&readback, again, sizeof(readback));
    EXPECT_EQ(readback, magic);
    EXPECT_EQ(rt.stats().writebackBufferHits, 1u);
    EXPECT_EQ(rt.net().stats().fetchMessages, fetches_before);
    EXPECT_EQ(rt.stats().demandFetches, demand_before);

    // Dirtiness survived the round trip through the buffer: a later
    // evacuation still persists the value remotely.
    rt.evacuateAll();
    readback = 0;
    rt.rawRead(off, &readback, sizeof(readback));
    EXPECT_EQ(readback, magic);
}

// ---------------------------------------------------------------------
// Guard-level last-object inline cache (TfmRuntime).
// ---------------------------------------------------------------------

RuntimeConfig
guardCacheConfig(std::uint64_t frames)
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 1 << 20;
    cfg.localMemBytes = frames * 4096;
    cfg.objectSizeBytes = 4096;
    cfg.prefetchEnabled = false;
    cfg.guardCacheEnabled = true;
    return cfg;
}

TEST(GuardCache, RepeatAccessesHitAtReducedCost)
{
    const CostParams c;
    TfmRuntime rt(guardCacheConfig(16), c);
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.store<std::uint64_t>(addr, 7); // localize + fill the cache
    rt.load<std::uint64_t>(addr);

    std::uint64_t before = rt.clock().now();
    EXPECT_EQ(rt.load<std::uint64_t>(addr), 7u);
    EXPECT_EQ(rt.clock().now() - before, c.guardCacheHitReadCycles);

    before = rt.clock().now();
    rt.store<std::uint64_t>(addr, 8);
    EXPECT_EQ(rt.clock().now() - before, c.guardCacheHitWriteCycles);

    EXPECT_GE(rt.guardStats().cacheHitReads, 1u);
    EXPECT_GE(rt.guardStats().cacheHitWrites, 1u);
    // Cache hits are a subset of fast-path guards.
    EXPECT_GE(rt.guardStats().fastReads, rt.guardStats().cacheHitReads);
}

TEST(GuardCache, EvictionNeverYieldsStalePointer)
{
    TfmRuntime rt(guardCacheConfig(2), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(8 * 4096);
    const std::uint64_t magic = 0xfeedbead12345678ull;
    rt.store<std::uint64_t>(addr, magic); // object 0 cached

    // Force object 0 out; its frame is recycled for other objects whose
    // contents differ, so a stale cached frame pointer would be visible
    // as wrong data.
    for (int i = 1; i < 7; i++)
        rt.store<std::uint64_t>(addr + i * 4096,
                                0xb000u + static_cast<std::uint64_t>(i));
    ASSERT_FALSE(rt.runtime().isLocal(tfmOffsetOf(addr)));
    ASSERT_GT(rt.runtime().evictionEpoch(), 0u);

    const std::uint64_t hits_before = rt.guardStats().cacheHitReads;
    EXPECT_EQ(rt.load<std::uint64_t>(addr), magic);
    // The re-access missed the inline cache (epoch moved on).
    EXPECT_EQ(rt.guardStats().cacheHitReads, hits_before);
}

TEST(GuardCache, EvacuationInvalidatesCachedTranslation)
{
    TfmRuntime rt(guardCacheConfig(16), CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4096);
    rt.store<std::uint64_t>(addr, 111);
    rt.load<std::uint64_t>(addr); // cache is hot

    rt.runtime().evacuateAll();
    // Mutate the remote copy directly; a stale cache hit would still
    // see the old frame contents instead of refetching.
    const std::uint64_t fresh = 222;
    rt.runtime().rawWrite(tfmOffsetOf(addr), &fresh, sizeof(fresh));
    EXPECT_EQ(rt.load<std::uint64_t>(addr), fresh);
}

TEST(GuardCache, DisabledByConfigNeverHits)
{
    auto cfg = guardCacheConfig(16);
    cfg.guardCacheEnabled = false;
    TfmRuntime rt(cfg, CostParams{});
    const std::uint64_t addr = rt.tfmMalloc(4096);
    for (int i = 0; i < 10; i++)
        rt.load<std::uint64_t>(addr);
    EXPECT_EQ(rt.guardStats().cacheHitReads, 0u);
    EXPECT_EQ(rt.guardStats().cacheHitWrites, 0u);
}

} // namespace
} // namespace tfm
