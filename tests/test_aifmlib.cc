/**
 * @file
 * Unit tests for the AIFM library-mode baseline: runtime, scopes, and
 * the remote data structures.
 */

#include <gtest/gtest.h>

#include "aifmlib/aifm_runtime.hh"
#include "aifmlib/remote_array.hh"
#include "aifmlib/remote_hashmap.hh"
#include "aifmlib/remote_vector.hh"

namespace tfm
{
namespace
{

RuntimeConfig
smallConfig(std::uint32_t object_size = 4096, std::uint64_t frames = 16)
{
    RuntimeConfig cfg;
    cfg.farHeapBytes = 4 << 20;
    cfg.localMemBytes = frames * object_size;
    cfg.objectSizeBytes = object_size;
    cfg.prefetchEnabled = false;
    return cfg;
}

TEST(AifmRuntime, DerefHitIsCheap)
{
    const CostParams c;
    AifmRuntime rt(smallConfig(), c);
    const std::uint64_t off = rt.runtime().allocate(4096);
    rt.deref(off, false); // miss, localizes

    const std::uint64_t before = rt.clock().now();
    rt.deref(off, false);
    EXPECT_EQ(rt.clock().now() - before, c.smartPtrDerefCycles);
    EXPECT_EQ(rt.stats().derefs, 1u);
    EXPECT_EQ(rt.stats().misses, 1u);
}

TEST(AifmRuntime, ScopeChargesEntry)
{
    const CostParams c;
    AifmRuntime rt(smallConfig(), c);
    const std::uint64_t before = rt.clock().now();
    {
        DerefScope scope(rt);
    }
    EXPECT_EQ(rt.clock().now() - before, c.derefScopeCycles);
    EXPECT_EQ(rt.stats().scopeEnters, 1u);
}

TEST(RemoteArray, ScopedReadWrite)
{
    AifmRuntime rt(smallConfig(), CostParams{});
    RemoteArray<std::int64_t> array(rt, 1000);
    {
        DerefScope scope(rt);
        for (int i = 0; i < 1000; i++)
            array.set(scope, i, i * 7);
        for (int i = 0; i < 1000; i += 13)
            EXPECT_EQ(array.at(scope, i), i * 7);
    }
}

TEST(RemoteArray, IteratorSumMatches)
{
    AifmRuntime rt(smallConfig(256, 8), CostParams{});
    const int n = 4096;
    RemoteArray<std::int32_t> array(rt, n);
    for (int i = 0; i < n; i++)
        array.init(i, 1);
    rt.runtime().evacuateAll();

    DerefScope scope(rt);
    auto it = array.begin(scope);
    std::int64_t sum = 0;
    for (int i = 0; i < n; i++)
        sum += it.read();
    EXPECT_EQ(sum, n);
}

TEST(RemoteArray, IteratorIsCheaperThanScopedAt)
{
    AifmRuntime rt_at(smallConfig(256, 8), CostParams{});
    AifmRuntime rt_it(smallConfig(256, 8), CostParams{});
    const int n = 4096;
    RemoteArray<std::int32_t> a1(rt_at, n);
    RemoteArray<std::int32_t> a2(rt_it, n);
    for (int i = 0; i < n; i++) {
        a1.init(i, i);
        a2.init(i, i);
    }
    rt_at.runtime().evacuateAll();
    rt_it.runtime().evacuateAll();

    {
        DerefScope scope(rt_at);
        for (int i = 0; i < n; i++)
            a1.at(scope, i);
    }
    {
        DerefScope scope(rt_it);
        auto it = a2.begin(scope);
        for (int i = 0; i < n; i++)
            it.read();
    }
    EXPECT_LT(rt_it.clock().now(), rt_at.clock().now());
}

TEST(RemoteArray, SurvivesEvictionPressure)
{
    AifmRuntime rt(smallConfig(4096, 2), CostParams{});
    const int n = 8192; // 64 KB = 16 objects, only 2 frames
    RemoteArray<std::int64_t> array(rt, n);
    {
        DerefScope scope(rt);
        for (int i = 0; i < n; i++)
            array.set(scope, i, i);
        std::int64_t sum = 0;
        for (int i = 0; i < n; i++)
            sum += array.at(scope, i);
        EXPECT_EQ(sum, static_cast<std::int64_t>(n) * (n - 1) / 2);
    }
}

TEST(RemoteVector, PushAndRead)
{
    AifmRuntime rt(smallConfig(), CostParams{});
    RemoteVector<std::int32_t> vec(rt, 4);
    DerefScope scope(rt);
    for (int i = 0; i < 1000; i++)
        vec.pushBack(scope, i);
    EXPECT_EQ(vec.size(), 1000u);
    EXPECT_GE(vec.capacity(), 1000u);
    for (int i = 0; i < 1000; i += 111)
        EXPECT_EQ(vec.at(scope, i), i);
}

TEST(RemoteVector, GrowthPreservesContents)
{
    AifmRuntime rt(smallConfig(), CostParams{});
    RemoteVector<std::int64_t> vec(rt, 2);
    DerefScope scope(rt);
    for (int i = 0; i < 100; i++)
        vec.pushBack(scope, i * 5);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(vec.at(scope, i), i * 5);
}

TEST(RemoteHashMap, PutGetErase)
{
    AifmRuntime rt(smallConfig(), CostParams{});
    RemoteHashMap<std::uint64_t, std::uint64_t> map(rt, 1024);
    DerefScope scope(rt);

    for (std::uint64_t k = 0; k < 500; k++)
        map.put(scope, k, k * k);
    EXPECT_EQ(map.size(), 500u);

    for (std::uint64_t k = 0; k < 500; k += 37) {
        const auto v = map.get(scope, k);
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, k * k);
    }
    EXPECT_FALSE(map.get(scope, 9999).has_value());

    EXPECT_TRUE(map.erase(scope, 42));
    EXPECT_FALSE(map.get(scope, 42).has_value());
    EXPECT_FALSE(map.erase(scope, 42));
}

TEST(RemoteHashMap, UpdateOverwrites)
{
    AifmRuntime rt(smallConfig(), CostParams{});
    RemoteHashMap<std::uint32_t, std::uint32_t> map(rt, 64);
    DerefScope scope(rt);
    map.put(scope, 1, 10);
    map.put(scope, 1, 20);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(*map.get(scope, 1), 20u);
}

TEST(RemoteHashMap, WorksUnderMemoryPressure)
{
    AifmRuntime rt(smallConfig(256, 4), CostParams{});
    RemoteHashMap<std::uint64_t, std::uint64_t> map(rt, 4096);
    DerefScope scope(rt);
    for (std::uint64_t k = 0; k < 2000; k++)
        map.put(scope, k, k + 1);
    for (std::uint64_t k = 0; k < 2000; k += 97)
        EXPECT_EQ(*map.get(scope, k), k + 1);
    EXPECT_GT(rt.runtime().stats().evictions, 0u);
}

TEST(RemoteHashMap, InitPutIsUnmetered)
{
    AifmRuntime rt(smallConfig(), CostParams{});
    RemoteHashMap<std::uint32_t, std::uint32_t> map(rt, 64);
    const std::uint64_t before = rt.clock().now();
    map.initPut(5, 50);
    EXPECT_EQ(rt.clock().now(), before);
    DerefScope scope(rt);
    EXPECT_EQ(*map.get(scope, 5), 50u);
}

} // namespace
} // namespace tfm
